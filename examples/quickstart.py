"""Quickstart: the whole pipeline in one script.

1. Analyse the Table 1 power-distribution network (resonance, band, Q).
2. Stimulate it with a square wave at the resonant frequency and watch the
   resonant event count climb to a noise-margin violation (Figure 3).
3. Run a violating SPEC2K-like workload on the out-of-order processor with
   and without resonance tuning and compare.

Run:  python examples/quickstart.py
"""

from repro.config import TABLE1_PROCESSOR, TABLE1_SUPPLY, TABLE1_TUNING
from repro.core import CurrentSensor, ResonanceDetector, ResonanceTuningController
from repro.power import PowerSupply, RLCAnalysis, waveforms
from repro.sim import BenchmarkRunner, SweepConfig


def analyse_supply():
    print("== 1. Power-supply resonance (Table 1 circuit) ==")
    analysis = RLCAnalysis(TABLE1_SUPPLY)
    band = analysis.band
    print(f"  resonant frequency : {analysis.resonant_frequency_hz / 1e6:.1f} MHz"
          f" ({analysis.resonant_period_cycles} cycles at 10 GHz)")
    print(f"  quality factor Q   : {analysis.quality_factor:.2f}")
    print(f"  resonance band     : {band.min_period_cycles}-"
          f"{band.max_period_cycles} cycles"
          f" ({band.low_hz / 1e6:.1f}-{band.high_hz / 1e6:.1f} MHz)")
    print(f"  ringing dissipation: {analysis.dissipation_per_period:.0%}"
          " per period")
    print()


def stimulate_at_resonance():
    print("== 2. Square-wave stimulation at the resonant frequency ==")
    analysis = RLCAnalysis(TABLE1_SUPPLY)
    wave = waveforms.square_wave(
        n_cycles=700,
        period_cycles=analysis.resonant_period_cycles,
        amplitude_pp=34.0,
        mean=70.0,
        start=100,
        end=500,
    )
    supply = PowerSupply(TABLE1_SUPPLY, initial_current=70.0)
    detector = ResonanceDetector(
        analysis.band.half_periods,
        TABLE1_TUNING.resonant_current_threshold_amps,
        TABLE1_TUNING.max_repetition_tolerance,
    )
    sensor = CurrentSensor()
    count_at_violation = None
    for cycle, current in enumerate(wave):
        supply.step(current)
        detector.observe(cycle, sensor.read(current))
        if count_at_violation is None and supply.first_violation_cycle is not None:
            count_at_violation = detector.current_count(cycle)
    print(f"  34 A square wave, cycles 100-500")
    print(f"  first violation at cycle {supply.first_violation_cycle}"
          f" with event count {count_at_violation}"
          f" (max repetition tolerance is"
          f" {TABLE1_TUNING.max_repetition_tolerance})")
    print(f"  violation cycles: {supply.violation_cycles}")
    print()


def tune_a_workload():
    print("== 3. Resonance tuning on the 'swim' workload ==")
    runner = BenchmarkRunner(SweepConfig(n_cycles=40_000))
    base = runner.run_base("swim")
    metrics = runner.compare(
        "swim",
        lambda supply, processor: ResonanceTuningController(
            supply, processor, TABLE1_TUNING
        ),
    )
    print(f"  base: IPC {base.ipc:.2f}, violation fraction"
          f" {base.violation_fraction:.2e}")
    print(f"  tuned: violation fraction {metrics.violation_fraction:.2e},"
          f" slowdown {metrics.slowdown:.3f},"
          f" relative energy-delay {metrics.energy_delay:.3f}")
    print(f"  cycles in first-level response : {metrics.first_level_fraction:.1%}")
    print(f"  cycles in second-level response: {metrics.second_level_fraction:.2%}")


if __name__ == "__main__":
    analyse_supply()
    stimulate_at_resonance()
    tune_a_workload()
