"""Power-supply design-space exploration.

A packaging engineer's view of Section 2: sweep the on-die decoupling
capacitance and supply impedance, and for each design point compute the
resonant frequency, resonance band, quality factor and -- via the circuit
calibration of Section 2.1.3 -- the resonant current variation threshold and
maximum repetition tolerance.  Shows how more capacitance lowers the
resonant frequency (more cycles per period: easier for resonance tuning)
while lower impedance raises Q (slower dissipation: more repetitions reach
the margin).

Run:  python examples/power_supply_design.py
"""

from dataclasses import replace

from repro.config import TABLE1_SUPPLY
from repro.errors import CalibrationError
from repro.power import RLCAnalysis, calibrate


def explore():
    print(f"{'C (nF)':>7s} {'R (uOhm)':>9s} {'f0 (MHz)':>9s} {'Q':>5s}"
          f" {'band (cycles)':>14s} {'M (A)':>6s} {'tolerance':>9s}")
    for capacitance_nf in (750, 1500, 3000):
        for resistance_uohm in (250, 375, 500):
            config = replace(
                TABLE1_SUPPLY,
                capacitance_farads=capacitance_nf * 1e-9,
                resistance_ohms=resistance_uohm * 1e-6,
            )
            analysis = RLCAnalysis(config)
            if not analysis.is_underdamped:
                print(f"{capacitance_nf:7d} {resistance_uohm:9d}"
                      "  (overdamped: no resonance problem)")
                continue
            band = analysis.band
            try:
                result = calibrate(config)
                threshold = f"{result.threshold_amps:.0f}"
                tolerance = str(result.max_repetition_tolerance)
            except CalibrationError:
                threshold, tolerance = "inf", "-"
            print(f"{capacitance_nf:7d} {resistance_uohm:9d}"
                  f" {analysis.resonant_frequency_hz / 1e6:9.1f}"
                  f" {analysis.quality_factor:5.2f}"
                  f" {band.min_period_cycles:6d}-{band.max_period_cycles:<6d}"
                  f" {threshold:>6s} {tolerance:>9s}")


if __name__ == "__main__":
    explore()
