"""Technology-scaling study (Section 3.2's closing argument).

Technology scaling grows the on-die decoupling capacitance while the
package inductance stays put, so the resonant frequency falls; clock
frequencies rise at the same time.  Both trends stretch the resonant
period *in processor cycles*, giving resonance tuning ever more slack to
sense, detect and react -- while the voltage-threshold technique [10]
still has to chase voltage spikes within a few cycles.

Run:  python examples/scaling_study.py
"""

from dataclasses import replace

from repro.config import TABLE1_SUPPLY
from repro.power import RLCAnalysis

# (label, clock GHz, capacitance scale, resistance scale)
GENERATIONS = [
    ("today:   5 GHz, C x0.5, R x2", 5e9, 0.5, 2.0),
    ("Table 1: 10 GHz, C x1, R x1", 10e9, 1.0, 1.0),
    ("next:    13 GHz, C x2, R x0.8", 13e9, 2.0, 0.8),
    ("future:  16 GHz, C x4, R x0.6", 16e9, 4.0, 0.6),
]


def main():
    print(f"{'generation':32s} {'f0 (MHz)':>9s} {'Q':>5s}"
          f" {'period (cyc)':>12s} {'band (cyc)':>12s}"
          f" {'quarter period':>14s}")
    for label, clock_hz, c_scale, r_scale in GENERATIONS:
        config = replace(
            TABLE1_SUPPLY,
            clock_hz=clock_hz,
            capacitance_farads=TABLE1_SUPPLY.capacitance_farads * c_scale,
            resistance_ohms=TABLE1_SUPPLY.resistance_ohms * r_scale,
        )
        analysis = RLCAnalysis(config)
        band = analysis.band
        period = analysis.resonant_period_cycles
        print(f"{label:32s} {analysis.resonant_frequency_hz / 1e6:9.1f}"
              f" {analysis.quality_factor:5.2f} {period:12d}"
              f" {band.min_period_cycles:5d}-{band.max_period_cycles:<6d}"
              f" {period // 4:14d}")
    print("\nThe quarter period is the reaction slack resonance tuning has"
          " (Section 3.2);\nit grows every generation, while [10]'s"
          " voltage-spike deadlines do not.")


if __name__ == "__main__":
    main()
