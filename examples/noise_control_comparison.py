"""Compare the three inductive-noise control techniques head to head.

Runs resonance tuning, the voltage-threshold technique of [10] (ideal and
realistic sensor models) and pipeline damping [14] (loose and tight delta)
on a mix of violating and well-behaved workloads, and prints the paper's
headline metrics: violations remaining, slowdown and relative energy-delay.

Run:  python examples/noise_control_comparison.py [benchmark ...]
"""

import sys

from repro.baselines import PipelineDampingController, VoltageThresholdController
from repro.config import TABLE1_TUNING, TuningConfig
from repro.core import ResonanceTuningController
from repro.sim import BenchmarkRunner, SweepConfig

DEFAULT_BENCHMARKS = ("swim", "parser", "mcf", "fma3d", "gzip")

TECHNIQUES = [
    ("resonance tuning (75)", lambda s, p: ResonanceTuningController(
        s, p, TuningConfig(initial_response_time=75))),
    ("resonance tuning (100)", lambda s, p: ResonanceTuningController(
        s, p, TABLE1_TUNING)),
    ("[10] ideal 30mV", lambda s, p: VoltageThresholdController(
        s, p, target_threshold_volts=0.030)),
    ("[10] noisy 20/15/3", lambda s, p: VoltageThresholdController(
        s, p, 0.020, 0.015, 3)),
    ("damping delta=1.0x", lambda s, p: PipelineDampingController(
        s, p, delta_amps=TABLE1_TUNING.resonant_current_threshold_amps)),
    ("damping delta=0.25x", lambda s, p: PipelineDampingController(
        s, p, delta_amps=0.25 * TABLE1_TUNING.resonant_current_threshold_amps)),
]


def main(benchmarks) -> None:
    runner = BenchmarkRunner(SweepConfig(n_cycles=40_000))
    print(f"benchmarks: {', '.join(benchmarks)}")
    print(f"{'technique':24s} {'viol.frac':>10s} {'avg slowdown':>13s}"
          f" {'avg E*D':>8s}")
    for name in benchmarks:
        base = runner.run_base(name)
        print(f"  base {name}: IPC {base.ipc:.2f},"
              f" violations {base.violation_fraction:.2e}")
    for label, factory in TECHNIQUES:
        rows = [runner.compare(name, factory) for name in benchmarks]
        violations = sum(r.violation_fraction for r in rows)
        slowdown = sum(r.slowdown for r in rows) / len(rows)
        energy_delay = sum(r.energy_delay for r in rows) / len(rows)
        print(f"{label:24s} {violations:10.2e} {slowdown:13.3f}"
              f" {energy_delay:8.3f}")


if __name__ == "__main__":
    main(tuple(sys.argv[1:]) or DEFAULT_BENCHMARKS)
