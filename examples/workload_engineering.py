"""Workload engineering: characterize, persist and stress a custom design.

A tour of the library's tooling around the core simulation:

1. calibrate an alternative power-supply design (more decoupling
   capacitance, so a lower resonant frequency and its own threshold);
2. engineer a workload whose oscillation lands in *that* design's band,
   using the diagnostics to check the emergent period and amplitude;
3. save the trace to disk and reload it (byte-identical simulation);
4. protect the design with a resonance-tuning controller calibrated from
   its own circuit, and report seed-robust statistics.

Run:  python examples/workload_engineering.py
"""

import os
import tempfile
from dataclasses import replace

from repro.config import TABLE1_PROCESSOR, TABLE1_SUPPLY, TuningConfig
from repro.core import ResonanceTuningController
from repro.power import PowerSupply, RLCAnalysis, calibrate
from repro.sim import Simulation
from repro.uarch import (
    Pipeline,
    Processor,
    WorkloadProfile,
    characterize,
    generate_trace,
    load_trace,
    save_trace,
)

DESIGN = replace(
    TABLE1_SUPPLY,
    capacitance_farads=TABLE1_SUPPLY.capacitance_farads * 1.25,
)


def main():
    # -- 1. analyse and calibrate the design ---------------------------
    analysis = RLCAnalysis(DESIGN)
    calibration = calibrate(DESIGN)
    band = analysis.band
    print("== design ==")
    print(f"  resonant period : {analysis.resonant_period_cycles} cycles"
          f" (band {band.min_period_cycles}-{band.max_period_cycles})")
    print(f"  threshold       : {calibration.threshold_amps:.0f} A,"
          f" tolerance {calibration.max_repetition_tolerance} half-waves")

    # -- 2. engineer a workload into this band -------------------------
    period = analysis.resonant_period_cycles
    profile = WorkloadProfile(
        name="engineered",
        frac_fp=0.4, frac_load=0.28, frac_store=0.10, frac_branch=0.08,
        mean_dep_distance=6.0, l1_miss_rate=0.02,
        osc_kind="serial",
        osc_period_instrs=period // 2 + int(7 * period / 2),
        osc_low_instrs=period // 2,
        osc_jitter_instrs=3,
        osc_boost_ilp=True,
        osc_episode_periods=calibration.max_repetition_tolerance + 3,
        osc_gap_instrs=8_000,
        seed=5,
    )
    character = characterize(profile, n_cycles=20_000, supply_config=DESIGN)
    print("\n== engineered workload ==")
    print(f"  IPC {character.ipc:.2f}, current"
          f" {character.current_low_amps:.0f}-"
          f"{character.current_high_amps:.0f} A,"
          f" dominant period {character.dominant_period_cycles:.0f} cycles"
          f" (in band: {character.period_in_band})")
    print(f"  base violation fraction: {character.violation_fraction:.2e}")

    # -- 3. persist the trace -------------------------------------------
    trace = generate_trace(profile, 120_000)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "engineered.npz")
        save_trace(trace, path)
        reloaded = load_trace(path)
        a = Pipeline(trace, TABLE1_PROCESSOR)
        b = Pipeline(reloaded, TABLE1_PROCESSOR)
        drift = sum(
            abs(a.step().current_amps - b.step().current_amps)
            for _ in range(2_000)
        )
        print(f"\n== persistence ==\n  saved {os.path.basename(path)},"
              f" replay drift over 2000 cycles: {drift:.1e} A")

    # -- 4. protect it with design-calibrated tuning --------------------
    tuning = TuningConfig(
        resonant_current_threshold_amps=max(5.0, calibration.threshold_amps - 1),
        max_repetition_tolerance=max(3, min(6, calibration.max_repetition_tolerance)),
    )
    print("\n== protection (2 trace seeds) ==")
    for seed in (None, 1005):
        results = {}
        for label, controller in (
            ("base", None),
            ("tuned", ResonanceTuningController(DESIGN, TABLE1_PROCESSOR, tuning)),
        ):
            processor = Processor.from_profile(
                profile, n_instructions=150_000,
                config=TABLE1_PROCESSOR, supply_config=DESIGN, seed=seed,
            )
            supply = PowerSupply(DESIGN, initial_current=35.0)
            results[label] = Simulation(
                processor, supply, controller,
                benchmark=profile.name, warmup_cycles=2_000,
            ).run(25_000)
        relative = results["tuned"].relative_to(results["base"])
        print(f"  seed={seed}: base viol"
              f" {results['base'].violation_fraction:.2e} ->"
              f" tuned {relative.violation_fraction:.2e},"
              f" slowdown {relative.slowdown:.3f}")


if __name__ == "__main__":
    main()
