"""Bring your own workload: define a profile, check it, protect it.

Shows the library's workload API: build a custom statistical profile whose
activity oscillates inside the resonance band, confirm on the base
processor that it causes noise-margin violations, then enable resonance
tuning and confirm the violations are gone -- and what the protection cost.

Run:  python examples/custom_workload.py
"""

from repro.config import TABLE1_PROCESSOR, TABLE1_SUPPLY
from repro.core import ResonanceTuningController
from repro.power import PowerSupply, RLCAnalysis
from repro.sim import Simulation
from repro.uarch import Processor, WorkloadProfile

# A synthetic "video encoder": FP-heavy inner loops with a macroblock
# boundary stall roughly every hundred cycles -- squarely in the band.
ENCODER = WorkloadProfile(
    name="encoder",
    description="FP kernel with ~100-cycle macroblock phases",
    frac_fp=0.55,
    frac_load=0.27,
    frac_store=0.10,
    frac_branch=0.05,
    mean_dep_distance=7.0,
    dep2_probability=0.55,
    l1_miss_rate=0.02,
    osc_kind="serial",
    osc_period_instrs=420,
    osc_low_instrs=50,
    osc_jitter_instrs=3,
    osc_boost_ilp=True,
    osc_boost_dep=16,
    # Macroblock phases come in episodes: a burst of band-period activity
    # per macroblock row, then a quieter stretch.
    osc_episode_periods=6,
    osc_gap_instrs=9_000,
    seed=7,
)

N_CYCLES = 40_000


def run(controller=None):
    processor = Processor.from_profile(
        ENCODER,
        n_instructions=int(N_CYCLES * 4.5),
        config=TABLE1_PROCESSOR,
        supply_config=TABLE1_SUPPLY,
    )
    supply = PowerSupply(
        TABLE1_SUPPLY, initial_current=TABLE1_PROCESSOR.min_current_amps
    )
    simulation = Simulation(
        processor, supply, controller, benchmark=ENCODER.name,
        warmup_cycles=2_000,
    )
    return simulation.run(N_CYCLES)


def main():
    band = RLCAnalysis(TABLE1_SUPPLY).band
    print(f"resonance band: {band.min_period_cycles}-"
          f"{band.max_period_cycles} cycles\n")

    base = run()
    print(f"base     : IPC {base.ipc:.2f},"
          f" violation fraction {base.violation_fraction:.2e}"
          f" ({base.violation_cycles} cycles)")

    tuned = run(ResonanceTuningController(TABLE1_SUPPLY, TABLE1_PROCESSOR))
    relative = tuned.relative_to(base)
    print(f"tuned    : violation fraction {relative.violation_fraction:.2e},"
          f" slowdown {relative.slowdown:.3f},"
          f" relative energy-delay {relative.energy_delay:.3f}")
    print(f"responses: first-level {relative.first_level_fraction:.1%}"
          f" of cycles, second-level {relative.second_level_fraction:.2%}")

    if base.violation_cycles:
        reduction = 1.0 - tuned.violation_cycles / base.violation_cycles
        if tuned.violation_cycles == 0:
            print("\nresonance tuning eliminated every violation.")
        else:
            print(f"\nresonance tuning removed {reduction:.1%} of the"
                  " violations.  (This encoder resonates an order of"
                  " magnitude harder than the SPEC2K-like workloads; see"
                  " EXPERIMENTS.md on the residual.)")


if __name__ == "__main__":
    main()
