"""Bench: regenerate Figure 1(c) (power-supply impedance vs frequency)."""

import pytest

from repro.experiments import figure1

from conftest import run_once


def test_bench_figure1_impedance(benchmark):
    result = run_once(benchmark, figure1.run)
    print()
    print(result.render())
    # Shape checks against the Section 2 example.
    assert result.resonant_frequency_hz == pytest.approx(100e6, rel=0.02)
    assert result.band_low_hz == pytest.approx(92e6, rel=0.02)
    assert result.band_high_hz == pytest.approx(108e6, rel=0.02)
    assert result.peak_impedance_ohms > 5 * result.impedance_ohms[0]
