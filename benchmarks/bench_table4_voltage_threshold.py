"""Bench: regenerate Table 4 (the voltage-threshold technique of [10])."""

from repro.experiments import table4

from conftest import BENCHMARKS, BENCH_CYCLES, FULL, run_once


def test_bench_table4_voltage_threshold(benchmark):
    configs = table4.PAPER_CONFIGS if FULL else (
        table4.VTConfig(30, 0, 0),
        table4.VTConfig(20, 10, 5),
        table4.VTConfig(20, 15, 3),
    )
    result = run_once(
        benchmark,
        table4.run,
        configs=configs,
        n_cycles=BENCH_CYCLES,
        benchmarks=BENCHMARKS,
    )
    print()
    print(result.render())
    ideal = result.summary_for("30/0/0")
    noisy = result.summary_for("20/15/3")
    # Paper trend: ideal sensors are cheap; noise + delay degrade sharply.
    assert ideal.avg_slowdown < 1.05
    assert noisy.avg_slowdown > ideal.avg_slowdown + 0.05
    assert noisy.avg_energy_delay > ideal.avg_energy_delay + 0.10
    # More responses at the degraded threshold.
    assert noisy.avg_second_level_fraction > ideal.avg_second_level_fraction
