"""Bench: observability overhead, disabled and enabled.

The obs layer's contract is "free when off": with no ``--trace-out``,
``--metrics-out`` or ``--profile-out`` every instrumented seam is one
module-attribute read.  This bench times the same sequential sweep four
ways -- baseline (obs never imported into the hot path beyond the None
checks), obs explicitly disabled, obs fully enabled (trace + metrics),
and the sampling profiler on top -- and asserts the disabled path stays
within the 2% budget of the baseline (noise-floored by taking the best
of several repeats), while also reporting what full instrumentation
actually costs.

When ``BENCH_OBS_OUT`` is set, the measurements are written there as a
``BENCH_obs.json`` artifact (same schema as ``BENCH_sweep.json``, with
the baseline leg labelled ``sequential``) so ``tools/bench_gate.py`` and
``tools/bench_history.py`` can gate and trend the obs overhead like any
other benchmark.
"""

import functools
import json
import os
import platform
import time

from repro import obs
from repro.cli import _build_tuning
from repro.config import TuningConfig
from repro.sim import BenchmarkRunner, SweepConfig

from conftest import FULL, run_once

BENCH_BENCHMARKS = ("swim", "parser", "gzip")
BENCH_CYCLES = 20_000 if FULL else 8_000
REPEATS = 3
#: Disabled-path budget from docs/observability.md: within 2%, plus a
#: small absolute floor so sub-second sweeps don't fail on timer jitter.
OVERHEAD_BUDGET = 0.02
ABSOLUTE_FLOOR_S = 0.05

FACTORY = functools.partial(_build_tuning, tuning=TuningConfig())


def _sweep_once():
    with BenchmarkRunner(SweepConfig(n_cycles=BENCH_CYCLES)) as runner:
        return runner.sweep(FACTORY, benchmarks=BENCH_BENCHMARKS)


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _interleaved_best(repeats, first, second):
    """Alternate two workloads; return each one's minimum wall clock.

    Interleaving keeps slow drift (thermal throttling, a noisy
    neighbour) from loading one side of the comparison, which
    back-to-back batches are badly exposed to.
    """
    best_first = best_second = float("inf")
    for _ in range(repeats):
        best_first = min(best_first, _timed(first))
        best_second = min(best_second, _timed(second))
    return best_first, best_second


def _write_artifact(path, cells, timings):
    """BENCH_obs.json in the BENCH_sweep schema (gate/history ready)."""
    payload = {
        "schema": 1,
        "grid": {
            "benchmarks": list(BENCH_BENCHMARKS),
            "cells": cells,
            "n_cycles": BENCH_CYCLES,
        },
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "backends": {
            label: {
                "wall_s": round(wall, 4),
                "cells_per_s": round(cells / wall, 3) if wall > 0 else None,
            }
            for label, wall in timings.items()
        },
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"bench artifact written: {path}")


def test_bench_obs_overhead(benchmark, tmp_path):
    def enabled_sweep():
        obs.configure(
            trace_out=str(tmp_path / "trace.json"),
            metrics_out=str(tmp_path / "metrics.json"),
        )
        try:
            _sweep_once()
        finally:
            obs.finalize()

    def profiled_sweep():
        obs.configure(
            trace_out=str(tmp_path / "trace.json"),
            metrics_out=str(tmp_path / "metrics.json"),
            profile_out=str(tmp_path / "profile.json"),
        )
        try:
            _sweep_once()
        finally:
            obs.finalize()

    baseline, disabled = run_once(
        benchmark,
        lambda: _interleaved_best(REPEATS, _sweep_once, _sweep_once),
    )
    enabled = min(_timed(enabled_sweep) for _ in range(2))
    profiled = min(_timed(profiled_sweep) for _ in range(2))

    overhead = disabled - baseline
    relative = overhead / baseline
    print()
    print(f"sweep: {len(BENCH_BENCHMARKS)} benchmarks at {BENCH_CYCLES} cycles"
          f" (best of {REPEATS})")
    print(f"baseline (obs off)  : {baseline:8.3f} s")
    print(f"obs off, re-timed   : {disabled:8.3f} s"
          f"  ({relative:+.2%} vs baseline)")
    print(f"obs fully enabled   : {enabled:8.3f} s"
          f"  ({(enabled - baseline) / baseline:+.2%} vs baseline)")
    print(f"obs + profiler      : {profiled:8.3f} s"
          f"  ({(profiled - baseline) / baseline:+.2%} vs baseline)")

    artifact = os.environ.get("BENCH_OBS_OUT")
    if artifact:
        _write_artifact(artifact, len(BENCH_BENCHMARKS), {
            "sequential": baseline,
            "obs_disabled": disabled,
            "obs_enabled": enabled,
            "obs_profiled": profiled,
        })

    # Two timings of the *same* disabled path must agree within the
    # budget -- this is the "no-op by default" contract.  The absolute
    # floor keeps sub-100ms jitter from failing a bench that measures
    # a percentage.
    assert overhead <= max(OVERHEAD_BUDGET * baseline, ABSOLUTE_FLOOR_S), (
        f"disabled-path overhead {relative:.2%} exceeds"
        f" {OVERHEAD_BUDGET:.0%} budget"
    )
    # Enabled instrumentation is allowed to cost something, but an
    # explosion here means a per-cycle call sneaked into the hot loop.
    assert enabled <= 1.5 * baseline + ABSOLUTE_FLOOR_S, (
        f"enabled-path cost {(enabled - baseline) / baseline:.2%}"
        f" suggests per-cycle instrumentation leaked into the hot loop"
    )
    # The sampler only *reads* frames every few ms; if profiling blows
    # past this bound it has started interfering with the sweep itself.
    assert profiled <= 1.5 * baseline + ABSOLUTE_FLOOR_S, (
        f"profiled-path cost {(profiled - baseline) / baseline:.2%}"
        f" suggests the sampler is perturbing the hot loop"
    )
