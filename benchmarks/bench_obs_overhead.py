"""Bench: observability overhead, disabled and enabled.

The obs layer's contract is "free when off": with no ``--trace-out`` or
``--metrics-out`` every instrumented seam is one module-attribute read.
This bench times the same sequential sweep three ways -- baseline
(obs never imported into the hot path beyond the None checks), obs
explicitly disabled, and obs fully enabled (trace + metrics) -- and
asserts the disabled path stays within the 2% budget of the baseline
(noise-floored by taking the best of several repeats), while also
reporting what full instrumentation actually costs.
"""

import functools
import time

from repro import obs
from repro.cli import _build_tuning
from repro.config import TuningConfig
from repro.sim import BenchmarkRunner, SweepConfig

from conftest import FULL, run_once

BENCH_BENCHMARKS = ("swim", "parser", "gzip")
BENCH_CYCLES = 20_000 if FULL else 8_000
REPEATS = 3
#: Disabled-path budget from docs/observability.md: within 2%, plus a
#: small absolute floor so sub-second sweeps don't fail on timer jitter.
OVERHEAD_BUDGET = 0.02
ABSOLUTE_FLOOR_S = 0.05

FACTORY = functools.partial(_build_tuning, tuning=TuningConfig())


def _sweep_once():
    with BenchmarkRunner(SweepConfig(n_cycles=BENCH_CYCLES)) as runner:
        return runner.sweep(FACTORY, benchmarks=BENCH_BENCHMARKS)


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _interleaved_best(repeats, first, second):
    """Alternate two workloads; return each one's minimum wall clock.

    Interleaving keeps slow drift (thermal throttling, a noisy
    neighbour) from loading one side of the comparison, which
    back-to-back batches are badly exposed to.
    """
    best_first = best_second = float("inf")
    for _ in range(repeats):
        best_first = min(best_first, _timed(first))
        best_second = min(best_second, _timed(second))
    return best_first, best_second


def test_bench_obs_overhead(benchmark, tmp_path):
    def enabled_sweep():
        obs.configure(
            trace_out=str(tmp_path / "trace.json"),
            metrics_out=str(tmp_path / "metrics.json"),
        )
        try:
            _sweep_once()
        finally:
            obs.finalize()

    baseline, disabled = run_once(
        benchmark,
        lambda: _interleaved_best(REPEATS, _sweep_once, _sweep_once),
    )
    enabled = min(_timed(enabled_sweep) for _ in range(2))

    overhead = disabled - baseline
    relative = overhead / baseline
    print()
    print(f"sweep: {len(BENCH_BENCHMARKS)} benchmarks at {BENCH_CYCLES} cycles"
          f" (best of {REPEATS})")
    print(f"baseline (obs off)  : {baseline:8.3f} s")
    print(f"obs off, re-timed   : {disabled:8.3f} s"
          f"  ({relative:+.2%} vs baseline)")
    print(f"obs fully enabled   : {enabled:8.3f} s"
          f"  ({(enabled - baseline) / baseline:+.2%} vs baseline)")

    # Two timings of the *same* disabled path must agree within the
    # budget -- this is the "no-op by default" contract.  The absolute
    # floor keeps sub-100ms jitter from failing a bench that measures
    # a percentage.
    assert overhead <= max(OVERHEAD_BUDGET * baseline, ABSOLUTE_FLOOR_S), (
        f"disabled-path overhead {relative:.2%} exceeds"
        f" {OVERHEAD_BUDGET:.0%} budget"
    )
    # Enabled instrumentation is allowed to cost something, but an
    # explosion here means a per-cycle call sneaked into the hot loop.
    assert enabled <= 1.5 * baseline + ABSOLUTE_FLOOR_S, (
        f"enabled-path cost {(enabled - baseline) / baseline:.2%}"
        f" suggests per-cycle instrumentation leaked into the hot loop"
    )
