"""Bench: regenerate Table 5 (pipeline damping as delta tightens)."""

from repro.experiments import table5

from conftest import BENCHMARKS, BENCH_CYCLES, run_once


def test_bench_table5_damping(benchmark):
    result = run_once(
        benchmark,
        table5.run,
        n_cycles=BENCH_CYCLES,
        benchmarks=BENCHMARKS,
    )
    print()
    print(result.render())
    loose = result.summary_for(1.0)
    mid = result.summary_for(0.5)
    tight = result.summary_for(0.25)
    # Paper trend: costs rise steeply as delta tightens.
    assert loose.avg_slowdown <= mid.avg_slowdown <= tight.avg_slowdown
    assert tight.avg_energy_delay > loose.avg_energy_delay
    # Our extra column: damping at the resonant frequency only (delta = 1x)
    # does not cover the band, so violations survive (the paper's critique).
    assert loose.total_violation_cycles > 0
    assert tight.total_violation_cycles == 0
