"""Bench: regenerate Table 3 (resonance tuning vs initial response time)."""

from repro.experiments import table3

from conftest import BENCHMARKS, BENCH_CYCLES, FULL, run_once


def test_bench_table3_tuning(benchmark):
    times = (75, 100, 125, 150, 200) if FULL else (75, 100, 200)
    result = run_once(
        benchmark,
        table3.run,
        initial_response_times=times,
        n_cycles=BENCH_CYCLES,
        benchmarks=BENCHMARKS,
    )
    print()
    print(result.render())
    total_cycles = result.n_cycles * len(result.summaries[0][1].per_benchmark)
    for _, summary in result.summaries:
        # The guarantee: violations are (almost) eliminated.  A residual
        # below 1e-5 of cycles can survive from sub-threshold ring
        # precharge plus an aligned isolated variation -- a blind spot of
        # any threshold-based detector (see EXPERIMENTS.md); the default
        # 100-cycle response time measures exactly zero.
        assert summary.total_violation_cycles <= max(1, round(1e-5 * total_cycles))
        # The gentle first level dominates the harsh second level.
        assert (
            summary.avg_first_level_fraction
            > summary.avg_second_level_fraction
        )
        # Costs stay in a modest range (paper: 4-8 % slowdown).
        assert summary.avg_slowdown < 1.15
    # Longer initial response time => more first-level cycles (paper trend).
    first = result.summaries[0][1].avg_first_level_fraction
    last = result.summaries[-1][1].avg_first_level_fraction
    assert last > first
