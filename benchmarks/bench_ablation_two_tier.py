"""Ablation: why resonance tuning needs *both* response tiers.

Three variants on the violating benchmarks:

* both tiers (the paper's design),
* first level only (gentle throttling, no guarantee backstop),
* second level only (no gentle tier to tame nascent resonance early).

Measured shape: only the two-tier design eliminates every violation.
First-only leaks when the gentle throttle loses the race against a fast
build-up (bzip); second-only leaks too -- without the first tier, episodes
run at full amplitude until the count reaches the second-level threshold,
and occasionally violate just before the stall lands -- while also burning
more cycles in the expensive full stall.
"""

from repro.core import ResonanceTuningController
from repro.sim import BenchmarkRunner, SweepConfig

from conftest import run_once

VIOLATORS = ("swim", "bzip", "parser", "lucas")
CYCLES = 60_000  # long enough for the rare single-tier leaks to show


def _sweep():
    runner = BenchmarkRunner(SweepConfig(n_cycles=CYCLES))
    variants = {
        "both": dict(enable_first_level=True, enable_second_level=True),
        "first-only": dict(enable_first_level=True, enable_second_level=False),
        "second-only": dict(enable_first_level=False, enable_second_level=True),
    }
    summaries = {}
    for label, switches in variants.items():
        summaries[label] = runner.sweep(
            lambda s, p, _sw=switches: ResonanceTuningController(s, p, **_sw),
            benchmarks=VIOLATORS,
        )
    return summaries


def test_bench_ablation_two_tier(benchmark):
    summaries = run_once(benchmark, _sweep)
    print()
    print(f"{'variant':12s} {'violations':>10s} {'avg slowdown':>13s}"
          f" {'avg E*D':>8s} {'frac 2nd':>9s}")
    for label, summary in summaries.items():
        print(f"{label:12s} {summary.total_violation_cycles:10d}"
              f" {summary.avg_slowdown:13.3f} {summary.avg_energy_delay:8.3f}"
              f" {summary.avg_second_level_fraction:9.4f}")
    both = summaries["both"]
    first_only = summaries["first-only"]
    second_only = summaries["second-only"]
    # Only the two-tier design upholds the guarantee.
    assert both.total_violation_cycles == 0
    assert first_only.total_violation_cycles > 0
    # Without the gentle tier, the brute-force stall fires more often.
    assert (
        second_only.avg_second_level_fraction
        > both.avg_second_level_fraction
    )
    # The single-tier variants together do not dominate the combination:
    # first-only is cheaper but unsafe; second-only is both costlier in
    # stalls and still not safer than the two-tier design.
    assert both.total_violation_cycles <= second_only.total_violation_cycles
