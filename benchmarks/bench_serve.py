"""Bench: sweep-as-a-service HTTP round trip vs a direct in-process sweep.

The serving tier must not tax the simulation it fronts: a job submitted
over HTTP, streamed over SSE and fetched from ``/jobs/<id>/result``
should cost barely more wall clock than calling ``BenchmarkRunner.sweep``
directly, because the sweep runs on a worker thread while the asyncio
loop only relays progress events.

* **sequential** -- direct ``BenchmarkRunner.sweep`` over the grid;
* **serve_http** -- the same grid through a real ``repro serve``
  subprocess: POST the spec, consume the SSE stream to its ``end``
  frame, then GET the result (server boot/teardown is untimed).

The served aggregates must be byte-identical to the direct run, and the
HTTP leg must stay within ``MAX_OVERHEAD`` of the sequential wall.
Figures land in a ``BENCH_serve.json`` perf-trajectory artifact (path
overridable via ``BENCH_SERVE_OUT``) which CI gates against the
committed baseline with ``tools/bench_gate.py --tolerance 0.5``.
"""

import dataclasses
import json
import os
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tools"))

from chaos import ServeHarness  # noqa: E402  (needs the tools/ dir on sys.path)

from repro.serve import JobSpec, controller_factory  # noqa: E402
from repro.sim import BenchmarkRunner, SweepConfig  # noqa: E402

from conftest import run_once  # noqa: E402

WORKLOADS = ("swim", "bzip", "parser", "mcf", "lucas", "gzip")
CYCLES = 4_000
WARMUP = 400
#: The HTTP leg may cost at most this multiple of the direct sweep.
MAX_OVERHEAD = 1.8

SPEC = {
    "technique": "tuning",
    "benchmarks": list(WORKLOADS),
    "n_cycles": CYCLES,
    "warmup_cycles": WARMUP,
}


def _direct_sweep():
    spec = JobSpec.from_dict(SPEC)
    runner = BenchmarkRunner(
        SweepConfig(n_cycles=spec.n_cycles, warmup_cycles=spec.warmup_cycles)
    )
    return runner.sweep(controller_factory(spec), benchmarks=list(spec.benchmarks))


def _served_sweep(server):
    """Submit SPEC, stream SSE to the end frame, return the result record."""
    status, _, record = server.request("POST", "/jobs", SPEC)
    assert status == 201, f"submission failed: {status} {record}"
    job_id = record["job_id"]
    sock = server.sse_socket(job_id)
    try:
        sock.settimeout(300.0)
        stream = b""
        while b"event: end" not in stream:
            chunk = sock.recv(65536)
            if not chunk:
                break
            stream += chunk
    finally:
        sock.close()
    status, _, result = server.request("GET", f"/jobs/{job_id}/result")
    assert status == 200, f"result fetch failed: {status}"
    assert stream.count(b"event: cell") == len(WORKLOADS)
    return result


def _write_artifact(walls, n_cells):
    out = os.environ.get("BENCH_SERVE_OUT", "BENCH_serve.json")
    payload = {
        "schema": 1,
        "grid": {
            "workloads": list(WORKLOADS),
            "n_cycles": CYCLES,
            "warmup_cycles": WARMUP,
            "cells": n_cells,
        },
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "backends": {
            label: {
                "wall_s": round(wall, 4),
                "cells_per_s": round(n_cells / wall, 3),
            }
            for label, wall in walls.items()
        },
    }
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"perf artifact written to {out}")


def test_bench_serve(benchmark, tmp_path):
    n_cells = len(WORKLOADS)

    # Timed direct-sweep reference (also the correctness oracle).
    start = time.perf_counter()
    direct = _direct_sweep()
    sequential_wall = time.perf_counter() - start
    direct_fp = json.dumps(dataclasses.asdict(direct), sort_keys=True)

    # Untimed server boot, then the timed HTTP/SSE round trip.
    with ServeHarness(tmp_path / "serve", max_running=1) as server:
        start = time.perf_counter()
        result = run_once(benchmark, _served_sweep, server)
        served_wall = time.perf_counter() - start
    served_fp = json.dumps(result["result"]["summary"], sort_keys=True)

    assert served_fp == direct_fp, (
        "served aggregates diverged from the direct sweep"
    )

    overhead = served_wall / sequential_wall
    print()
    print(f"grid: {n_cells} workloads x {CYCLES} cycles")
    print(f"  sequential {sequential_wall:7.3f} s"
          f"  ({n_cells / sequential_wall:6.2f} cells/s)")
    print(f"  serve_http {served_wall:7.3f} s"
          f"  ({n_cells / served_wall:6.2f} cells/s)   (x{overhead:.2f})")

    _write_artifact(
        {"sequential": sequential_wall, "serve_http": served_wall}, n_cells
    )

    assert overhead <= MAX_OVERHEAD, (
        f"HTTP round trip cost {overhead:.2f}x the direct sweep"
        f" (ceiling {MAX_OVERHEAD}x)"
    )
