"""Bench: regenerate Figure 5 (energy-delay comparison of all techniques)."""

from repro.experiments import figure5

from conftest import BENCHMARKS, BENCH_CYCLES, FULL, run_once


def test_bench_figure5_comparison(benchmark):
    result = run_once(
        benchmark,
        figure5.run,
        n_cycles=BENCH_CYCLES,
        benchmarks=BENCHMARKS,
    )
    print()
    print(result.render())
    # The paper's headline: resonance tuning outperforms the *realistic*
    # alternatives -- [10] with sensor noise and delay, and damping tight
    # enough to cover the resonance band.
    assert result.tuning_wins_realistic
    if FULL:
        # At paper scale over all 26 benchmarks tuning wins outright.
        assert result.tuning_wins
