"""Extension bench: low-frequency resonance (Section 2.2).

The two-stage supply shows a second, low-frequency impedance peak.  This
bench verifies the section's three claims: the peak exists and is smaller
than the medium-frequency peak; sustained excitation at the low-frequency
resonance violates the noise margin while smaller or off-peak excitation
is absorbed; and resonance tuning's detection machinery transfers
unchanged (with even more timing slack) to the low-frequency band.
"""

import numpy as np

from repro.core import CurrentSensor, ResonanceDetector
from repro.power import waveforms
from repro.power.lowfreq import (
    TwoStageSupply,
    TwoStageSupplyConfig,
    two_stage_impedance,
)

from conftest import run_once


def _run():
    config = TwoStageSupplyConfig()
    period = config.low_frequency_period_cycles

    frequencies = np.logspace(5.0, 8.5, 1200)
    impedance = two_stage_impedance(config, frequencies)
    split = int(np.searchsorted(frequencies, 2e7))
    low_peak = float(np.max(impedance[:split]))
    mid_peak = float(np.max(impedance[split:]))

    def excite(amplitude, periods=12):
        supply = TwoStageSupply(config, initial_current=70.0)
        supply.run(
            waveforms.square_wave(periods * period, period, amplitude, mean=70.0)
        )
        return supply.violation_cycles

    detector = ResonanceDetector(
        half_periods=config.low_frequency_band_half_periods(),
        threshold_amps=26.0,
        max_repetition_tolerance=4,
    )
    sensor = CurrentSensor()
    max_count = 0
    for cycle, current in enumerate(
        waveforms.square_wave(6 * period, period, 60.0, mean=70.0)
    ):
        event = detector.observe(cycle, sensor.read(current))
        if event is not None:
            max_count = max(max_count, event.count)

    return {
        "period": period,
        "low_peak_mohm": low_peak * 1e3,
        "mid_peak_mohm": mid_peak * 1e3,
        "violations_60A": excite(60.0),
        "violations_25A": excite(25.0),
        "max_event_count": max_count,
    }


def test_bench_lowfreq_resonance(benchmark):
    result = run_once(benchmark, _run)
    print()
    print(f"low-frequency period : {result['period']} cycles")
    print(f"impedance peaks      : low {result['low_peak_mohm']:.2f} mOhm,"
          f" medium {result['mid_peak_mohm']:.2f} mOhm")
    print(f"violations at 60 A   : {result['violations_60A']}")
    print(f"violations at 25 A   : {result['violations_25A']}")
    print(f"detector event count : {result['max_event_count']}")
    assert result["low_peak_mohm"] < result["mid_peak_mohm"]
    assert result["violations_60A"] > 0
    assert result["violations_25A"] == 0
    assert result["max_event_count"] >= 3
    # Tens of times more reaction slack than the medium-frequency band.
    assert result["period"] // 4 > 1000
