"""Ablation: sensor coarseness and response delay (Sections 2.1.4 and 5.2).

Two of the paper's robustness claims:

* whole-amp sensing suffices -- and even considerably coarser quantization
  barely changes the outcome, because variations of interest are tens of
  amps;
* a response delay of a few cycles costs only about a percent of
  performance, because resonant periods are tens of cycles long.
"""

from dataclasses import replace

from repro.config import TABLE1_TUNING
from repro.core import CurrentSensor, ResonanceTuningController
from repro.sim import BenchmarkRunner, SweepConfig

from conftest import BENCH_CYCLES, run_once

APPS = ("swim", "bzip", "parser", "gzip")


def _sweep_quantization():
    runner = BenchmarkRunner(SweepConfig(n_cycles=BENCH_CYCLES))
    results = {}
    for quantum in (1.0, 4.0, 8.0):
        results[quantum] = runner.sweep(
            lambda s, p, _q=quantum: ResonanceTuningController(
                s, p, sensor=CurrentSensor(quantum_amps=_q)
            ),
            benchmarks=APPS,
        )
    return results


def _sweep_delay():
    runner = BenchmarkRunner(SweepConfig(n_cycles=BENCH_CYCLES))
    results = {}
    for delay in (0, 5, 12):
        tuning = replace(TABLE1_TUNING, response_delay_cycles=delay)
        results[delay] = runner.sweep(
            lambda s, p, _t=tuning: ResonanceTuningController(s, p, _t),
            benchmarks=APPS,
        )
    return results


def test_bench_ablation_quantization(benchmark):
    results = run_once(benchmark, _sweep_quantization)
    print()
    for quantum, summary in results.items():
        print(f"quantum {quantum:4.1f} A: violations="
              f"{summary.total_violation_cycles}"
              f" slowdown={summary.avg_slowdown:.3f}"
              f" E*D={summary.avg_energy_delay:.3f}")
    # Coarse sensors still uphold the guarantee (paper: "a coarse
    # sensitivity to within a few amps is adequate").
    for summary in results.values():
        assert summary.total_violation_cycles == 0
    # And the cost moves by at most a few percent.
    slowdowns = [s.avg_slowdown for s in results.values()]
    assert max(slowdowns) - min(slowdowns) < 0.05


def test_bench_ablation_response_delay(benchmark):
    results = run_once(benchmark, _sweep_delay)
    print()
    for delay, summary in results.items():
        print(f"delay {delay:2d} cycles: violations="
              f"{summary.total_violation_cycles}"
              f" slowdown={summary.avg_slowdown:.3f}"
              f" E*D={summary.avg_energy_delay:.3f}")
    # Section 5.2: a 5-cycle delay costs about 1 % performance and 2 % E*D.
    no_delay = results[0]
    short = results[5]
    assert short.total_violation_cycles == 0
    assert abs(short.avg_slowdown - no_delay.avg_slowdown) < 0.03
    assert abs(short.avg_energy_delay - no_delay.avg_energy_delay) < 0.06
    # Even a half-quarter-period delay nearly keeps the guarantee: at most
    # stray cycles remain (Section 3.2 argues up to a quarter period is
    # tolerable; our episodes build faster than the paper's workloads, so
    # the edge arrives a little sooner).
    assert results[12].total_violation_cycles <= 5
