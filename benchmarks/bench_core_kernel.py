"""Bench: vectorized cycle kernel vs the scalar per-cycle hot loop.

Generates realistic processor current traces (three SPEC2K workloads
through the Table 1 processor model), then advances the power supply and
the resonance detector over each trace two ways:

* **sequential** -- the scalar reference: one ``PowerSupply.step`` and
  one ``ResonanceDetector.observe`` call per cycle, exactly as the
  simulation's scalar loop does for feedback controllers;
* **kernel** -- ``repro.core.kernel.run_supply`` + ``run_detector``,
  the whole-trace fast path the feedback-free simulation takes.

Both paths must agree bit for bit (voltages, events, counters); the
kernel must be at least 10x faster in aggregate.  The measured figures
are written to a ``BENCH_core.json`` perf-trajectory artifact (path
overridable via ``BENCH_CORE_OUT``) which CI uploads and gates against
the committed baseline with ``tools/bench_gate.py``.
"""

import json
import os
import platform
import time

from repro.config import TABLE1_PROCESSOR, TABLE1_SUPPLY, TABLE1_TUNING
from repro.core import CurrentSensor, ResonanceDetector, run_detector, run_supply
from repro.power import PowerSupply, RLCAnalysis
from repro.uarch import SPEC2K, Processor
from repro.uarch.pipeline import NO_CONTROL

from conftest import run_once

WORKLOADS = ("gzip", "lucas", "swim")
TRACE_CYCLES = 60_000
MIN_SPEEDUP = 10.0


def _detector_kwargs():
    band = RLCAnalysis(TABLE1_SUPPLY).band
    return {
        "half_periods": band.half_periods,
        "threshold_amps": TABLE1_TUNING.resonant_current_threshold_amps,
        "max_repetition_tolerance": TABLE1_TUNING.max_repetition_tolerance,
    }


def _workload_trace(name):
    """Per-cycle processor currents plus their sensed (whole-amp) stream."""
    processor = Processor.from_profile(
        SPEC2K[name],
        n_instructions=2_000_000,
        config=TABLE1_PROCESSOR,
        supply_config=TABLE1_SUPPLY,
    )
    processor.power.attach_supply(
        TABLE1_SUPPLY.vdd_volts, TABLE1_SUPPLY.cycle_seconds
    )
    currents = [
        processor.step(NO_CONTROL).current_amps for _ in range(TRACE_CYCLES)
    ]
    sensor = CurrentSensor()
    return currents, [sensor.read(amps) for amps in currents]


def _scalar_leg(currents, sensed, kwargs):
    supply = PowerSupply(TABLE1_SUPPLY, initial_current=35.0)
    detector = ResonanceDetector(**kwargs)
    volts = []
    events = []
    for cycle, (amps, sample) in enumerate(zip(currents, sensed)):
        volts.append(supply.step(amps))
        event = detector.observe(cycle, sample)
        if event is not None:
            events.append(event)
    return volts, events, supply, detector


def _kernel_leg(currents, sensed, kwargs):
    supply = PowerSupply(TABLE1_SUPPLY, initial_current=35.0)
    detector = ResonanceDetector(**kwargs)
    volts = run_supply(supply, currents)
    events = run_detector(detector, sensed)
    return volts, events, supply, detector


def _best_of(fn, rounds):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _write_artifact(walls):
    out = os.environ.get("BENCH_CORE_OUT", "BENCH_core.json")
    total_cycles = len(WORKLOADS) * TRACE_CYCLES
    payload = {
        "schema": 1,
        "grid": {
            "workloads": list(WORKLOADS),
            "trace_cycles": TRACE_CYCLES,
            "total_cycles": total_cycles,
        },
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "backends": {
            label: {
                "wall_s": round(wall, 4),
                "cells_per_s": round(total_cycles / wall, 1),
            }
            for label, wall in walls.items()
        },
    }
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"perf artifact written to {out}")


def test_bench_core_kernel(benchmark):
    kwargs = _detector_kwargs()
    traces = {name: _workload_trace(name) for name in WORKLOADS}

    scalar_wall = 0.0
    kernel_wall = 0.0
    per_workload = {}
    for name, (currents, sensed) in traces.items():
        # Warm both paths (imports, allocator) before timing.
        _kernel_leg(currents, sensed, kwargs)
        scalar_out, scalar_best = _best_of(
            lambda: _scalar_leg(currents, sensed, kwargs), rounds=3
        )
        kernel_out, kernel_best = _best_of(
            lambda: _kernel_leg(currents, sensed, kwargs), rounds=5
        )
        scalar_wall += scalar_best
        kernel_wall += kernel_best
        per_workload[name] = (scalar_best, kernel_best)

        # Bit-equivalence is the acceptance bar, not a tolerance.
        s_volts, s_events, s_supply, s_detector = scalar_out
        k_volts, k_events, k_supply, k_detector = kernel_out
        assert list(k_volts) == s_volts
        assert k_events == s_events
        assert k_supply.violation_cycles == s_supply.violation_cycles
        assert k_supply.violation_events == s_supply.violation_events
        assert k_supply.first_violation_cycle == s_supply.first_violation_cycle
        assert k_detector.comparisons == s_detector.comparisons
        assert k_detector.total_events == s_detector.total_events
        assert k_detector.events_by_polarity == s_detector.events_by_polarity

    # One timed pedantic round so pytest-benchmark records the kernel leg.
    name = WORKLOADS[0]
    run_once(
        benchmark, _kernel_leg, traces[name][0], traces[name][1], kwargs
    )

    speedup = scalar_wall / kernel_wall
    print()
    print(f"trace: {len(WORKLOADS)} workloads x {TRACE_CYCLES} cycles")
    for name, (s_wall, k_wall) in per_workload.items():
        print(f"  {name:6s} sequential {s_wall:7.3f} s   kernel"
              f" {k_wall:7.4f} s   (x{s_wall / k_wall:.1f})")
    print(f"aggregate  sequential {scalar_wall:7.3f} s   kernel"
          f" {kernel_wall:7.4f} s   (x{speedup:.1f})")

    _write_artifact({"sequential": scalar_wall, "kernel": kernel_wall})

    assert speedup >= MIN_SPEEDUP, (
        f"kernel speedup {speedup:.1f}x below the {MIN_SPEEDUP:.0f}x floor"
    )
