"""Extension bench: wavelet-based detection (ref [11]) vs quarter-period sums.

Section 6 suggests wavelet-based analysis as an alternative detector for
resonance tuning.  The dyadic Haar detector needs only 2 adders for the
Table 1 band (the full detector needs 9) and still upholds the
no-violation guarantee -- but its coarse frequency resolution makes it
less selective: the 16-cycle scale also reacts to variations faster than
the band, so the tuning responses fire more often and cost more.
"""

from repro.config import TABLE1_SUPPLY, TABLE1_TUNING
from repro.core import ResonanceDetector, ResonanceTuningController, WaveletDetector
from repro.power import RLCAnalysis
from repro.sim import BenchmarkRunner, SweepConfig

from conftest import BENCH_CYCLES, run_once

APPS = ("swim", "bzip", "parser", "gzip")


def _factory(detector_cls):
    band = RLCAnalysis(TABLE1_SUPPLY).band

    def build(supply, processor):
        detector = detector_cls(
            band.half_periods,
            TABLE1_TUNING.resonant_current_threshold_amps,
            TABLE1_TUNING.max_repetition_tolerance,
        )
        return ResonanceTuningController(supply, processor, detector=detector)

    return build


def _sweep():
    runner = BenchmarkRunner(SweepConfig(n_cycles=BENCH_CYCLES))
    band = RLCAnalysis(TABLE1_SUPPLY).band
    adders = {
        "quarter-period": ResonanceDetector(band.half_periods, 26.0, 4).adder_count,
        "wavelet": WaveletDetector(band.half_periods, 26.0, 4).adder_count,
    }
    summaries = {
        "quarter-period": runner.sweep(_factory(ResonanceDetector), benchmarks=APPS),
        "wavelet": runner.sweep(_factory(WaveletDetector), benchmarks=APPS),
    }
    return adders, summaries


def test_bench_wavelet_detector(benchmark):
    adders, summaries = run_once(benchmark, _sweep)
    print()
    for label in ("quarter-period", "wavelet"):
        summary = summaries[label]
        print(f"{label:15s}: adders={adders[label]}"
              f" violations={summary.total_violation_cycles}"
              f" slowdown={summary.avg_slowdown:.3f}"
              f" E*D={summary.avg_energy_delay:.3f}")
    # Both detectors uphold the guarantee on these workloads.
    assert summaries["quarter-period"].total_violation_cycles == 0
    assert summaries["wavelet"].total_violation_cycles == 0
    # The wavelet detector is cheaper hardware ...
    assert adders["wavelet"] < adders["quarter-period"]
    # ... but less selective, so the tuning costs more under it.
    assert (
        summaries["wavelet"].avg_energy_delay
        >= summaries["quarter-period"].avg_energy_delay
    )
