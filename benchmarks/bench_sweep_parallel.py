"""Bench: sweep backends (sequential / pool / dist) on a multi-technique grid.

Runs the same 4-benchmark x 3-technique x 4-seed grid with ``workers=1``,
``workers=4`` and the distributed backend, records each backend's wall
clock plus the sweeps' per-phase ``timings`` breakdown, and asserts the
aggregates are byte-identical across all three.  The speedup assertion
only fires on machines with at least 4 cores -- on smaller hosts the
fan-out runs still must match bit-for-bit.

The measured figures are also written to a ``BENCH_sweep.json``
perf-trajectory artifact (per-backend wall time and cells/s; path
overridable via ``BENCH_SWEEP_OUT``) which CI uploads and gates against
the committed baseline with ``tools/bench_gate.py``.
"""

import dataclasses
import functools
import json
import os
import platform
import time

from repro.cli import _build_convolution, _build_damping, _build_tuning
from repro.config import TuningConfig
from repro.sim import BenchmarkRunner, ResilienceConfig, SweepConfig

from conftest import BENCH_CYCLES, FULL, run_once

GRID_BENCHMARKS = ("swim", "parser", "gzip", "fma3d")
GRID_SEEDS = (None, 11, 12, 13)
GRID_CYCLES = BENCH_CYCLES if FULL else 6000

TECHNIQUES = (
    ("tuning", functools.partial(_build_tuning, tuning=TuningConfig())),
    ("damping", functools.partial(_build_damping, delta_amps=13.0)),
    ("convolution", functools.partial(_build_convolution, estimate_gain=1.0)),
)


def _fingerprints(summaries):
    return {
        name: json.dumps(dataclasses.asdict(summary), sort_keys=True)
        for name, summary in summaries.items()
    }


def _run_grid(workers, backend="auto"):
    """Sweep every technique over the grid; return summaries + wall clock."""
    config = SweepConfig(n_cycles=GRID_CYCLES)
    summaries = {}
    start = time.perf_counter()
    with BenchmarkRunner(config) as runner:
        for name, factory in TECHNIQUES:
            summaries[name] = runner.sweep(
                factory,
                benchmarks=GRID_BENCHMARKS,
                seeds=GRID_SEEDS,
                resilience=ResilienceConfig(workers=workers, backend=backend),
            )
    return summaries, time.perf_counter() - start


def _write_artifact(cells, walls):
    """Persist the perf-trajectory artifact gated by tools/bench_gate.py."""
    out = os.environ.get("BENCH_SWEEP_OUT", "BENCH_sweep.json")
    payload = {
        "schema": 1,
        "grid": {
            "benchmarks": list(GRID_BENCHMARKS),
            "seeds": [s if s is not None else "default" for s in GRID_SEEDS],
            "techniques": [name for name, _ in TECHNIQUES],
            "cells": cells,
            "n_cycles": GRID_CYCLES,
        },
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "backends": {
            label: {
                "wall_s": round(wall, 3),
                "cells_per_s": round(cells / wall, 3),
            }
            for label, wall in walls.items()
        },
    }
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"perf artifact written to {out}")


def test_bench_sweep_parallel(benchmark):
    sequential, seq_wall = _run_grid(1)
    parallel, par_wall = run_once(benchmark, _run_grid, 4)
    dist, dist_wall = _run_grid(4, backend="dist")

    cells = len(GRID_BENCHMARKS) * len(GRID_SEEDS) * len(TECHNIQUES)
    print()
    print(f"grid: {cells} cells at {GRID_CYCLES} cycles")
    print(f"sequential  wall clock : {seq_wall:8.2f} s")
    print(f"pool        wall clock : {par_wall:8.2f} s"
          f"  (x{seq_wall / par_wall:.2f})")
    print(f"distributed wall clock : {dist_wall:8.2f} s"
          f"  (x{seq_wall / dist_wall:.2f})")
    for name, summary in parallel.items():
        timings = summary.timings
        print(f"  {name:12s} workers={timings['workers']:.0f}"
              f" execute={timings['execute']:.2f}s"
              f" checkpoint_io={timings['checkpoint_io']:.3f}s"
              f" aggregate={timings['aggregate']:.3f}s"
              f" total={timings['total']:.2f}s")

    _write_artifact(cells, {
        "sequential": seq_wall, "pool": par_wall, "dist": dist_wall,
    })

    # Fan-out dispatch must not change a single byte of the results.
    assert _fingerprints(parallel) == _fingerprints(sequential)
    assert _fingerprints(dist) == _fingerprints(sequential)
    for name, summary in parallel.items():
        assert len(summary.per_benchmark) == len(GRID_BENCHMARKS) * len(GRID_SEEDS)
        assert not summary.failures
    for name, summary in dist.items():
        assert not summary.failures
        assert getattr(summary, "incidents", ()) == ()

    if (os.cpu_count() or 1) >= 4:
        assert seq_wall / par_wall >= 2.0, (
            f"workers=4 speedup {seq_wall / par_wall:.2f}x below 2x"
        )
        assert seq_wall / dist_wall >= 1.5, (
            f"dist speedup {seq_wall / dist_wall:.2f}x below 1.5x"
        )
