"""Bench: parallel sweep backend vs sequential on a multi-technique grid.

Runs the same 4-benchmark x 3-technique x 4-seed grid with ``workers=1``
and ``workers=4``, records both wall clocks plus each sweep's per-phase
``timings`` breakdown, and asserts the aggregates are byte-identical.
The speedup assertion only fires on machines with at least 4 cores --
on smaller hosts the parallel run still must match bit-for-bit.
"""

import dataclasses
import functools
import json
import os
import time

from repro.cli import _build_convolution, _build_damping, _build_tuning
from repro.config import TuningConfig
from repro.sim import BenchmarkRunner, ResilienceConfig, SweepConfig

from conftest import BENCH_CYCLES, FULL, run_once

GRID_BENCHMARKS = ("swim", "parser", "gzip", "fma3d")
GRID_SEEDS = (None, 11, 12, 13)
GRID_CYCLES = BENCH_CYCLES if FULL else 6000

TECHNIQUES = (
    ("tuning", functools.partial(_build_tuning, tuning=TuningConfig())),
    ("damping", functools.partial(_build_damping, delta_amps=13.0)),
    ("convolution", functools.partial(_build_convolution, estimate_gain=1.0)),
)


def _fingerprints(summaries):
    return {
        name: json.dumps(dataclasses.asdict(summary), sort_keys=True)
        for name, summary in summaries.items()
    }


def _run_grid(workers):
    """Sweep every technique over the grid; return summaries + wall clock."""
    config = SweepConfig(n_cycles=GRID_CYCLES)
    summaries = {}
    start = time.perf_counter()
    with BenchmarkRunner(config) as runner:
        for name, factory in TECHNIQUES:
            summaries[name] = runner.sweep(
                factory,
                benchmarks=GRID_BENCHMARKS,
                seeds=GRID_SEEDS,
                resilience=ResilienceConfig(workers=workers),
            )
    return summaries, time.perf_counter() - start


def test_bench_sweep_parallel(benchmark):
    sequential, seq_wall = _run_grid(1)
    parallel, par_wall = run_once(benchmark, _run_grid, 4)

    cells = len(GRID_BENCHMARKS) * len(GRID_SEEDS) * len(TECHNIQUES)
    print()
    print(f"grid: {cells} cells at {GRID_CYCLES} cycles")
    print(f"sequential wall clock : {seq_wall:8.2f} s")
    print(f"parallel   wall clock : {par_wall:8.2f} s"
          f"  (x{seq_wall / par_wall:.2f})")
    for name, summary in parallel.items():
        timings = summary.timings
        print(f"  {name:12s} workers={timings['workers']:.0f}"
              f" execute={timings['execute']:.2f}s"
              f" checkpoint_io={timings['checkpoint_io']:.3f}s"
              f" aggregate={timings['aggregate']:.3f}s"
              f" total={timings['total']:.2f}s")

    # Parallel dispatch must not change a single byte of the results.
    assert _fingerprints(parallel) == _fingerprints(sequential)
    for name, summary in parallel.items():
        assert len(summary.per_benchmark) == len(GRID_BENCHMARKS) * len(GRID_SEEDS)
        assert not summary.failures

    if (os.cpu_count() or 1) >= 4:
        assert seq_wall / par_wall >= 2.0, (
            f"workers=4 speedup {seq_wall / par_wall:.2f}x below 2x"
        )
