"""Bench: regenerate Table 1 (system parameters, derived rows calibrated)."""

import pytest

from repro.experiments import table1

from conftest import run_once


def test_bench_table1_parameters(benchmark):
    result = run_once(benchmark, table1.run)
    print()
    print(result.render())
    cal = result.calibration
    # Derived rows must match the paper exactly ...
    assert cal.resonant_frequency_hz == pytest.approx(100e6, rel=0.01)
    assert cal.band_min_period_cycles == 84
    assert cal.band_max_period_cycles == 119
    assert result.quality_factor == pytest.approx(2.83, abs=0.01)
    # ... calibrated rows to the same small-integer / tens-of-amps scale.
    assert 3 <= cal.max_repetition_tolerance <= 6
    assert 20 <= cal.threshold_amps <= 40
