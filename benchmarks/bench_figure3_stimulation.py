"""Bench: regenerate Figure 3 (stimulation at the resonant frequency)."""

import pytest

from repro.experiments import figure3

from conftest import run_once


def test_bench_figure3_stimulation(benchmark):
    result = run_once(benchmark, figure3.run)
    print()
    print(result.render())
    # The paper's observations: the wave violates, the violation arrives
    # when the event count reaches the maximum repetition tolerance, and
    # the post-stimulus ringing dissipates about 66 % per period.
    assert result.first_violation_cycle is not None
    assert result.count_at_violation == 4
    assert result.measured_dissipation_per_period == pytest.approx(0.66, abs=0.05)
    # Counts rise every half period (roughly 50 cycles apart).
    milestones = dict(result.count_milestones)
    assert milestones[3] - milestones[2] == pytest.approx(50, abs=15)


def test_bench_figure3_below_threshold_wave(benchmark):
    """A wave below the resonant current variation threshold never violates."""
    result = run_once(benchmark, figure3.run, amplitude_pp=20.0)
    assert result.first_violation_cycle is None
