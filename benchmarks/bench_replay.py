"""Bench: trace record/replay vs full simulation on a design-space sweep.

The scenario the store exists for: exploring supply RLC variants (here a
capacitance scale axis) over a fixed set of workloads.  The per-cycle
current trace of a base (uncontrolled) run is a pure function of the
front end, so one recorded trace serves *every* supply variant -- a warm
store turns the whole grid into replays that skip the uarch pipeline.

* **sequential** -- full simulation for every (variant, workload) cell;
* **replay_warm** -- the same grid against a pre-warmed shared store.

Replayed results must equal the full-simulation results bit for bit
(dataclass equality, energy included), the warm grid must be at least 5x
faster in aggregate, and a corrupted store entry must degrade that cell
to full simulation -- with an incident counted -- while still returning
the exact same numbers.  Figures land in a ``BENCH_replay.json``
perf-trajectory artifact (path overridable via ``BENCH_REPLAY_OUT``)
which CI gates against the committed baseline with
``tools/bench_gate.py``.
"""

import json
import os
import platform
import time
from dataclasses import replace

from repro.config import TABLE1_SUPPLY
from repro.faults.chaos import flip_bit
from repro.sim import BenchmarkRunner, SweepConfig
from repro.trace import TraceStore

from conftest import run_once

WORKLOADS = ("gzip", "lucas", "swim")
CAP_SCALES = (0.5, 0.75, 1.0, 1.5, 2.0)
CYCLES = 20_000
WARMUP = 2_000
MIN_SPEEDUP = 5.0


def _config(cap_scale):
    return SweepConfig(
        n_cycles=CYCLES,
        warmup_cycles=WARMUP,
        supply=replace(
            TABLE1_SUPPLY,
            capacitance_farads=TABLE1_SUPPLY.capacitance_farads * cap_scale,
        ),
    )


def _grid(store_dir=None):
    """Run base cells for every (capacitance scale, workload) pair."""
    results = {}
    for scale in CAP_SCALES:
        runner = BenchmarkRunner(_config(scale), trace_store=store_dir)
        for name in WORKLOADS:
            results[(scale, name)] = runner.run_base(name)
    return results


def _write_artifact(walls, n_cells):
    out = os.environ.get("BENCH_REPLAY_OUT", "BENCH_replay.json")
    payload = {
        "schema": 1,
        "grid": {
            "workloads": list(WORKLOADS),
            "cap_scales": list(CAP_SCALES),
            "n_cycles": CYCLES,
            "warmup_cycles": WARMUP,
            "cells": n_cells,
        },
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "backends": {
            label: {
                "wall_s": round(wall, 4),
                "cells_per_s": round(n_cells / wall, 3),
            }
            for label, wall in walls.items()
        },
    }
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"perf artifact written to {out}")


def test_bench_replay(benchmark, tmp_path):
    store_dir = str(tmp_path / "store")
    n_cells = len(CAP_SCALES) * len(WORKLOADS)

    # Timed full-simulation reference (also the correctness oracle).
    start = time.perf_counter()
    full = _grid()
    sequential_wall = time.perf_counter() - start

    # Untimed recording pass: one workload sweep warms the store for the
    # *entire* grid, because the trace key excludes the supply.
    _grid(store_dir)

    # Timed warm pass under pytest-benchmark.
    start = time.perf_counter()
    warm = run_once(benchmark, _grid, store_dir)
    replay_wall = time.perf_counter() - start

    assert warm == full, "replayed grid diverged from full simulation"

    # The warm grid must have been replays, not re-simulations: the
    # recording pass stored exactly one trace per workload.
    store = TraceStore(store_dir)
    assert len(os.listdir(store.index_dir)) == len(WORKLOADS)

    speedup = sequential_wall / replay_wall
    print()
    print(f"grid: {len(CAP_SCALES)} supply variants x {len(WORKLOADS)}"
          f" workloads x {CYCLES} cycles")
    print(f"  sequential  {sequential_wall:7.3f} s"
          f"  ({n_cells / sequential_wall:6.2f} cells/s)")
    print(f"  replay_warm {replay_wall:7.3f} s"
          f"  ({n_cells / replay_wall:6.2f} cells/s)   (x{speedup:.1f})")

    _write_artifact(
        {"sequential": sequential_wall, "replay_warm": replay_wall}, n_cells
    )

    # Corrupt-store degradation: flip a bit in one object; the guarded
    # load must fall back to full simulation and still match bit-exactly.
    object_path = os.path.join(
        store.objects_dir, sorted(os.listdir(store.objects_dir))[0]
    )
    flip_bit(object_path)
    degraded_store = TraceStore(store_dir)
    degraded_runner = BenchmarkRunner(_config(1.0), trace_store=degraded_store)
    degraded = {
        name: degraded_runner.run_base(name) for name in WORKLOADS
    }
    assert degraded == {
        name: full[(1.0, name)] for name in WORKLOADS
    }, "corrupted store changed results instead of falling back"
    assert degraded_store.stats["guard_failures"] == 1
    assert degraded_store.stats["fallbacks"] == 1
    # The fallback re-simulation healed the corrupt entry.
    assert degraded_store.stats["records"] == 1
    print(f"  corrupt entry: guarded fallback + re-record verified")

    assert speedup >= MIN_SPEEDUP, (
        f"warm-replay speedup {speedup:.1f}x below the"
        f" {MIN_SPEEDUP:.0f}x floor"
    )
