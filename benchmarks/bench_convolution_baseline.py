"""Extension bench: the convolution-based technique of ref [8].

The paper discusses Grochowski et al. at length (Sections 1 and 3): with
accurate a-priori current estimates and free real-time convolution, the
technique works well -- but accurate estimates are hard to obtain, and the
convolution hardware is the implementation obstacle.  This bench quantifies
the estimate-accuracy half of that critique: systematic under-estimation
makes the internal model under-predict the voltage, and violations leak
through; over-estimation is safe but reacts (and costs) more.
"""

from repro.baselines import ConvolutionController
from repro.sim import BenchmarkRunner, SweepConfig

from conftest import BENCH_CYCLES, run_once

APPS = ("swim", "bzip", "parser", "fma3d", "gzip")


def _sweep():
    runner = BenchmarkRunner(SweepConfig(n_cycles=BENCH_CYCLES))
    results = {}
    for label, gain in (("accurate", 1.0), ("under-estimate 0.6x", 0.6),
                        ("over-estimate 1.3x", 1.3)):
        results[label] = runner.sweep(
            lambda s, p, _g=gain: ConvolutionController(s, p, estimate_gain=_g),
            benchmarks=APPS,
        )
    return results


def test_bench_convolution_estimate_accuracy(benchmark):
    results = run_once(benchmark, _sweep)
    print()
    for label, summary in results.items():
        print(f"{label:20s}: violations={summary.total_violation_cycles}"
              f" slowdown={summary.avg_slowdown:.3f}"
              f" E*D={summary.avg_energy_delay:.3f}"
              f" response={summary.avg_second_level_fraction:.3f}")
    accurate = results["accurate"]
    under = results["under-estimate 0.6x"]
    over = results["over-estimate 1.3x"]
    # Accurate estimates eliminate violations at modest cost.
    assert accurate.total_violation_cycles == 0
    assert accurate.avg_slowdown < 1.05
    # The paper's critique: inaccurate (under-) estimates lose the guarantee.
    assert under.total_violation_cycles > 0
    # Over-estimation stays safe but reacts more.
    assert over.total_violation_cycles == 0
    assert (
        over.avg_second_level_fraction > accurate.avg_second_level_fraction
    )
