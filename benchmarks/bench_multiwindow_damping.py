"""Extension bench: band-covering multi-window damping (a negative result).

Section 5.3.2 lists two ways to extend damping [14] over the resonance
band: per-cycle decisions for every band period (more issue-queue
hardware), or simply tightening delta.  The paper picks tightening.  This
bench implements the declined option -- one damping window per band
half-period, bounds intersected -- and shows *why* tightening wins in
practice: at delta = 1x the extra windows barely move the violation count,
because the leak is not the estimate's frequency coverage but the current
the estimates never see (dispatch, commit and spread components swing even
when issued current is perfectly damped).  Tightening delta flattens
everything, covered or not.
"""

from repro.baselines import PipelineDampingController
from repro.sim import BenchmarkRunner, SweepConfig

from conftest import BENCH_CYCLES, run_once

APPS = ("swim", "bzip", "parser", "lucas", "fma3d", "gzip")


def _sweep():
    runner = BenchmarkRunner(SweepConfig(n_cycles=BENCH_CYCLES))
    results = {}
    for label, delta, windows in (
        ("single window, delta 1.0x", 26.0, 50),
        ("band windows,  delta 1.0x", 26.0, (42, 46, 50, 55, 59)),
        ("single window, delta 0.5x", 13.0, 50),
    ):
        results[label] = runner.sweep(
            lambda s, p, _d=delta, _w=windows: PipelineDampingController(
                s, p, _d, _w
            ),
            benchmarks=APPS,
        )
    return results


def test_bench_multiwindow_damping(benchmark):
    results = run_once(benchmark, _sweep)
    print()
    for label, summary in results.items():
        print(f"{label}: violations={summary.total_violation_cycles}"
              f" slowdown={summary.avg_slowdown:.3f}"
              f" E*D={summary.avg_energy_delay:.3f}")
    single = results["single window, delta 1.0x"]
    multi = results["band windows,  delta 1.0x"]
    tight = results["single window, delta 0.5x"]
    # Loose damping leaks regardless of how many windows watch the band.
    assert single.total_violation_cycles > 0
    assert multi.total_violation_cycles > 0
    # The extra windows change violations by less than the tightening does.
    improvement = single.total_violation_cycles - multi.total_violation_cycles
    tightening_gain = single.total_violation_cycles - tight.total_violation_cycles
    assert tightening_gain > abs(improvement)
    # Tightened single-window damping eliminates the violations.
    assert tight.total_violation_cycles == 0
    # And the multi-window variant is not cheaper.
    assert multi.avg_slowdown >= single.avg_slowdown - 0.005
