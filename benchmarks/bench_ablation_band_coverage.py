"""Ablation: band-wide detection vs single-frequency detection.

The paper's point (its critique of damping [14], applied to detection):
resonance lives in a *band* of frequencies, 84-119 cycles for the Table 1
supply, not just at the 100-cycle resonant period.

Open loop, the difference is stark: at the band edge (86-cycle period) a
detector watching only the 50-cycle half-period cannot chain events past a
count of 2, so the second-level response would never engage; the band-wide
detector counts straight through the repetition tolerance at every period
in the band.

Closed loop on our tuned workloads (whose episodes sit near the band
centre and whose sharp transitions produce wide event runs) the
single-frequency detector happens to survive -- a nuance worth recording:
coverage matters exactly when behaviour drifts toward the band edges.
"""

from repro.config import TABLE1_TUNING
from repro.core import ResonanceDetector, ResonanceTuningController
from repro.power import waveforms
from repro.sim import BenchmarkRunner, SweepConfig

from conftest import BENCH_CYCLES, run_once

VIOLATORS = ("swim", "bzip", "parser", "lucas")
BAND = range(42, 60)
SINGLE = [50]


def _detector(half_periods):
    return ResonanceDetector(
        half_periods=half_periods,
        threshold_amps=TABLE1_TUNING.resonant_current_threshold_amps,
        max_repetition_tolerance=TABLE1_TUNING.max_repetition_tolerance,
    )


def _max_count(half_periods, period_cycles):
    detector = _detector(half_periods)
    wave = waveforms.square_wave(1500, period_cycles, 45.0, mean=70.0)
    max_count = 0
    for cycle, current in enumerate(wave):
        event = detector.observe(cycle, current)
        if event is not None:
            max_count = max(max_count, event.count)
    return max_count


def _run():
    open_loop = {
        period: (_max_count(BAND, period), _max_count(SINGLE, period))
        for period in (86, 100, 116)
    }
    runner = BenchmarkRunner(SweepConfig(n_cycles=BENCH_CYCLES))
    closed = {
        "band-wide": runner.sweep(
            lambda s, p: ResonanceTuningController(s, p, detector=_detector(BAND)),
            benchmarks=VIOLATORS,
        ),
        "single-frequency": runner.sweep(
            lambda s, p: ResonanceTuningController(
                s, p, detector=_detector(SINGLE)
            ),
            benchmarks=VIOLATORS,
        ),
    }
    return open_loop, closed


def test_bench_ablation_band_coverage(benchmark):
    open_loop, closed = run_once(benchmark, _run)
    print()
    print("open loop (max resonant event count at 45 A):")
    for period, (band_count, single_count) in open_loop.items():
        print(f"  period {period:3d} cycles: band-wide={band_count}"
              f" single-frequency={single_count}")
    print("closed loop:")
    for label, summary in closed.items():
        print(f"  {label:17s}: violations={summary.total_violation_cycles}"
              f" slowdown={summary.avg_slowdown:.3f}"
              f" E*D={summary.avg_energy_delay:.3f}")

    # Band-wide detection counts through the tolerance at every band period.
    for band_count, _ in open_loop.values():
        assert band_count >= 4
    # At the band edge, single-frequency detection cannot reach the
    # second-level threshold: the guarantee is lost there.
    assert open_loop[86][1] < TABLE1_TUNING.second_level_threshold
    # On our centre-band workloads both uphold the guarantee (the nuance).
    assert closed["band-wide"].total_violation_cycles == 0
