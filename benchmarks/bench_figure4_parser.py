"""Bench: regenerate Figure 4 (voltage/current/event count in parser)."""

from repro.experiments import figure4

from conftest import FULL, run_once


def test_bench_figure4_parser(benchmark):
    result = run_once(
        benchmark, figure4.run, max_cycles=200_000 if FULL else 60_000
    )
    print()
    print(result.render())
    # A violation exists, and the event count warned in advance.
    assert result.violation_cycle is not None
    assert 2 in result.advance_warning_cycles
    assert result.advance_warning_cycles[2] > 0
    # Whole-amp current sensing sufficed to flag it (counts in the window).
    assert result.event_counts.max() >= 2
