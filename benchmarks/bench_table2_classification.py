"""Bench: regenerate Table 2 (classification of SPEC2K applications)."""

from repro.experiments import table2

from conftest import FULL, run_once


def test_bench_table2_classification(benchmark):
    if FULL:
        result = run_once(benchmark, table2.run, n_cycles=120_000)
    else:
        result = run_once(benchmark, table2.run, n_cycles=60_000)
    print()
    print(result.render())
    # The paper's split: 12 violating, 14 non-violating.  At reduced scale
    # the rarest violators may miss their episodes, so allow slack there,
    # but never a false positive among the non-violating set.
    false_positives = [
        row.benchmark for row in result.rows
        if row.violating and not row.paper_violating
    ]
    assert false_positives == []
    min_expected = 12 if FULL else 8
    assert len(result.violating) >= min_expected
