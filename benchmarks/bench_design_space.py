"""Extension bench: the whole methodology, applied to new supply designs.

The paper's flow is design-time: analyse the package's RLC loop, calibrate
the resonant current variation threshold and repetition tolerance by
circuit simulation, configure the detector for that design's band, ship.
This bench executes that flow end to end for *three* designs (the Table 1
capacitance, 25 % less, 50 % more -- resonant periods 87/100/123 cycles),
each stressed by a workload whose oscillation is tuned into that design's
own band and whose amplitude sits just above that design's own threshold.

Acceptance: on every design that violates, calibrated resonance tuning
removes at least 97 % of the base violations at modest slowdown.  (These
designed workloads oscillate an order of magnitude more violently than the
SPEC2K-like ones, so a residual at the 1e-4 level can survive; see
EXPERIMENTS.md on the threshold model's blind spot.)

The C x1.5 design also demonstrates the paper's opening tradeoff from the
other side: its calibrated threshold (43 A) sits near this processor's
maximum coherent current swing, so 50 % more decoupling capacitance makes
the machine nearly immune -- the circuit technique solves what the
architectural technique otherwise would, at the d-cap area/leakage cost
the paper's introduction describes.
"""

from dataclasses import replace

from repro.config import TABLE1_PROCESSOR, TABLE1_SUPPLY, TuningConfig
from repro.core import ResonanceTuningController
from repro.power import PowerSupply, RLCAnalysis, calibrate
from repro.sim import Simulation
from repro.uarch import Processor, WorkloadProfile

from conftest import run_once

N_CYCLES = 40_000


def _workload_for(period_cycles, threshold_amps, episode_periods, seed=5):
    low = max(20, period_cycles // 2)
    high_instrs = int(7 * period_cycles / 2)
    # Scale hot-phase intensity with the design's threshold; designs that
    # tolerate more than ~32 A need the unthrottled hot phase to violate.
    if threshold_amps > 32.0:
        boost_dep = 0
    else:
        boost_dep = max(8, round(18 * threshold_amps / 26.0))
    return WorkloadProfile(
        name=f"designed-{period_cycles}",
        frac_fp=0.4, frac_load=0.28, frac_store=0.10, frac_branch=0.08,
        mean_dep_distance=6.0, l1_miss_rate=0.02,
        osc_kind="serial", osc_period_instrs=low + high_instrs,
        osc_low_instrs=low, osc_jitter_instrs=3,
        osc_boost_ilp=True, osc_boost_dep=boost_dep,
        osc_episode_periods=episode_periods, osc_gap_instrs=8000,
        seed=seed,
    )


def _evaluate_design(c_scale):
    supply_config = replace(
        TABLE1_SUPPLY,
        capacitance_farads=TABLE1_SUPPLY.capacitance_farads * c_scale,
    )
    analysis = RLCAnalysis(supply_config)
    calibration = calibrate(supply_config)
    tuning = TuningConfig(
        resonant_current_threshold_amps=max(
            5.0, calibration.threshold_amps - 1.0
        ),
        max_repetition_tolerance=max(
            3, min(6, calibration.max_repetition_tolerance)
        ),
    )
    # Episodes must outlast the design's own repetition tolerance, or the
    # base processor never violates and there is nothing to prevent.
    profile = _workload_for(
        analysis.resonant_period_cycles,
        calibration.threshold_amps,
        episode_periods=calibration.max_repetition_tolerance + 3,
    )

    def run(tuned):
        processor = Processor.from_profile(
            profile, n_instructions=int(N_CYCLES * 5),
            config=TABLE1_PROCESSOR, supply_config=supply_config,
        )
        supply = PowerSupply(supply_config, initial_current=35.0)
        controller = (
            ResonanceTuningController(supply_config, TABLE1_PROCESSOR, tuning)
            if tuned else None
        )
        return Simulation(
            processor, supply, controller,
            benchmark=profile.name, warmup_cycles=2_000,
        ).run(N_CYCLES)

    base = run(False)
    tuned = run(True)
    return {
        "c_scale": c_scale,
        "period": analysis.resonant_period_cycles,
        "threshold": calibration.threshold_amps,
        "tolerance": calibration.max_repetition_tolerance,
        "base_violation_fraction": base.violation_fraction,
        "tuned_violation_fraction": tuned.violation_fraction,
        "slowdown": base.ipc / tuned.ipc,
    }


def _sweep():
    return [_evaluate_design(scale) for scale in (0.75, 1.0, 1.5)]


def test_bench_design_space(benchmark):
    results = run_once(benchmark, _sweep)
    print()
    for row in results:
        print(f"C x{row['c_scale']}: period={row['period']}"
              f" M={row['threshold']:.0f}A tol={row['tolerance']}"
              f" base={row['base_violation_fraction']:.2e}"
              f" tuned={row['tuned_violation_fraction']:.2e}"
              f" slowdown={row['slowdown']:.3f}")
    violating = [r for r in results if r["base_violation_fraction"] > 1e-4]
    # The smaller-capacitance designs are genuinely stressed ...
    assert len(violating) >= 2
    for row in violating:
        # ... and calibrated tuning removes at least 97 % of it cheaply.
        assert (
            row["tuned_violation_fraction"]
            <= 0.03 * row["base_violation_fraction"]
        )
        assert row["slowdown"] < 1.20
    # The big-capacitance design is nearly immune by circuit design alone:
    # its threshold approaches the processor's maximum coherent swing.
    robust = [r for r in results if r["base_violation_fraction"] <= 1e-4]
    for row in robust:
        assert row["threshold"] > 35.0
        assert row["tuned_violation_fraction"] <= row["base_violation_fraction"]
