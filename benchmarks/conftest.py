"""Shared sizing for the benchmark harness.

Each bench regenerates one of the paper's tables or figures.  By default
the sweeps run at a reduced scale (a representative benchmark subset and
shorter cycle counts) so ``pytest benchmarks/ --benchmark-only`` finishes
in minutes; set ``REPRO_BENCH_FULL=1`` for the paper-scale runs used to
produce EXPERIMENTS.md.
"""

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")

#: Representative subset: heavy violators, moderate violators, clean apps.
SUBSET = ("swim", "bzip", "parser", "mcf", "lucas", "fma3d", "gzip", "eon")

BENCH_CYCLES = 60_000 if FULL else 20_000
BENCHMARKS = None if FULL else SUBSET  # None = all 26


@pytest.fixture(scope="session")
def bench_benchmarks():
    return BENCHMARKS


@pytest.fixture(scope="session")
def bench_cycles():
    return BENCH_CYCLES


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
