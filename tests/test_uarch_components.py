"""Unit tests for cache, resources, branch and power-model components."""

import pytest

from repro.config import ProcessorConfig, TABLE1_PROCESSOR, TABLE1_SUPPLY
from repro.errors import ConfigurationError, SimulationError
from repro.uarch import (
    BranchUnit,
    CacheHierarchy,
    CachePorts,
    EnergyWeights,
    FunctionalUnits,
    MemLevel,
    OpClass,
    PowerModel,
)


class TestCacheHierarchy:
    def test_latencies_accumulate_down_the_hierarchy(self):
        cache = CacheHierarchy(TABLE1_PROCESSOR)
        l1 = cache.latency_for(int(MemLevel.L1))
        l2 = cache.latency_for(int(MemLevel.L2))
        mem = cache.latency_for(int(MemLevel.MEMORY))
        assert l1 == 2
        assert l2 == 2 + 12
        assert mem == 2 + 12 + 80

    def test_access_counts_traffic(self):
        cache = CacheHierarchy(TABLE1_PROCESSOR)
        cache.access(int(MemLevel.L1), is_store=False)
        cache.access(int(MemLevel.L2), is_store=False)
        cache.access(int(MemLevel.MEMORY), is_store=False)
        assert cache.l1_accesses == 3
        assert cache.l2_accesses == 2
        assert cache.memory_accesses == 1

    def test_stores_complete_quickly(self):
        cache = CacheHierarchy(TABLE1_PROCESSOR)
        access = cache.access(int(MemLevel.MEMORY), is_store=True)
        assert access.latency == 1
        assert access.touches_memory

    def test_non_memory_level_rejected(self):
        cache = CacheHierarchy(TABLE1_PROCESSOR)
        with pytest.raises(SimulationError):
            cache.access(int(MemLevel.NONE), is_store=False)
        with pytest.raises(SimulationError):
            cache.latency_for(99)

    def test_reset_counters(self):
        cache = CacheHierarchy(TABLE1_PROCESSOR)
        cache.access(int(MemLevel.L1), is_store=False)
        cache.reset_counters()
        assert cache.l1_accesses == 0


class TestFunctionalUnits:
    def test_pool_exhaustion(self):
        fus = FunctionalUnits(TABLE1_PROCESSOR)
        fus.new_cycle()
        for _ in range(TABLE1_PROCESSOR.int_muls):
            assert fus.try_claim(int(OpClass.INT_MUL))
        assert not fus.try_claim(int(OpClass.INT_MUL))

    def test_new_cycle_resets(self):
        fus = FunctionalUnits(TABLE1_PROCESSOR)
        fus.new_cycle()
        for _ in range(TABLE1_PROCESSOR.int_muls):
            fus.try_claim(int(OpClass.INT_MUL))
        fus.new_cycle()
        assert fus.try_claim(int(OpClass.INT_MUL))

    def test_branches_share_int_alus(self):
        fus = FunctionalUnits(TABLE1_PROCESSOR)
        fus.new_cycle()
        for _ in range(TABLE1_PROCESSOR.int_alus):
            assert fus.try_claim(int(OpClass.BRANCH))
        assert not fus.try_claim(int(OpClass.INT_ALU))

    def test_memory_ops_not_limited_here(self):
        fus = FunctionalUnits(TABLE1_PROCESSOR)
        fus.new_cycle()
        for _ in range(100):
            assert fus.try_claim(int(OpClass.LOAD))

    def test_unknown_pool_raises(self):
        fus = FunctionalUnits(TABLE1_PROCESSOR)
        with pytest.raises(SimulationError):
            fus.capacity("vector")


class TestCachePorts:
    def test_two_ports_by_default(self):
        ports = CachePorts(TABLE1_PROCESSOR)
        ports.new_cycle()
        assert ports.try_claim()
        assert ports.try_claim()
        assert not ports.try_claim()

    def test_limit_clamps_ports(self):
        """The first-level response reduces ports from 2 to 1."""
        ports = CachePorts(TABLE1_PROCESSOR)
        ports.new_cycle(limit=1)
        assert ports.try_claim()
        assert not ports.try_claim()

    def test_limit_cannot_exceed_capacity(self):
        ports = CachePorts(TABLE1_PROCESSOR)
        ports.new_cycle(limit=10)
        assert ports.try_claim()
        assert ports.try_claim()
        assert not ports.try_claim()


class TestBranchUnit:
    def test_fetch_blocked_until_resolve_plus_penalty(self):
        unit = BranchUnit(TABLE1_PROCESSOR)
        assert unit.fetch_allowed(0)
        unit.on_dispatch_mispredict(seq=10)
        assert not unit.fetch_allowed(5)
        unit.on_resolve(seq=10, cycle=20)
        penalty = TABLE1_PROCESSOR.branch_mispredict_penalty
        assert not unit.fetch_allowed(20 + penalty - 1)
        assert unit.fetch_allowed(20 + penalty)

    def test_resolve_of_other_branch_ignored(self):
        unit = BranchUnit(TABLE1_PROCESSOR)
        unit.on_dispatch_mispredict(seq=10)
        unit.on_resolve(seq=9, cycle=20)
        assert unit.blocked

    def test_mispredict_counter(self):
        unit = BranchUnit(TABLE1_PROCESSOR)
        unit.on_dispatch_mispredict(seq=1)
        unit.on_resolve(seq=1, cycle=5)
        unit.on_dispatch_mispredict(seq=2)
        assert unit.mispredicts == 2


class TestPowerModel:
    def test_idle_current_is_min(self):
        model = PowerModel(TABLE1_PROCESSOR)
        for _ in range(10):
            current = model.end_cycle()
        assert current == pytest.approx(TABLE1_PROCESSOR.min_current_amps)

    def test_sustained_peak_hits_max(self):
        """Sustained max-power activity must draw the Table 1 peak of 105 A."""
        config = TABLE1_PROCESSOR
        model = PowerModel(config)
        from repro.uarch.cache import CacheAccess

        current = 0.0
        for _ in range(40):  # settle the spread backlog
            model.add_dispatch(config.fetch_width)
            model.add_commit(config.commit_width)
            model.add_occupancy(config.rob_entries)
            # The calibration's max-power mix: 2 loads, 2 FP muls, 4 FP adds.
            for _ in range(config.cache_ports):
                model.add_issue(int(OpClass.LOAD), 2)
                model.add_cache_access(
                    CacheAccess(latency=2, touches_l2=False, touches_memory=False)
                )
            for _ in range(config.fp_muls):
                model.add_issue(int(OpClass.FP_MUL), 4)
            for _ in range(config.fp_alus):
                model.add_issue(int(OpClass.FP_ALU), 2)
            current = model.end_cycle()
        assert current == pytest.approx(config.max_current_amps, rel=0.02)

    def test_phantom_counted_separately(self):
        model = PowerModel(TABLE1_PROCESSOR)
        model.attach_supply(TABLE1_SUPPLY.vdd_volts, TABLE1_SUPPLY.cycle_seconds)
        current = model.end_cycle(phantom_amps=30.0)
        assert current == pytest.approx(TABLE1_PROCESSOR.min_current_amps + 30.0)
        assert model.phantom_energy_joules > 0
        assert model.phantom_energy_joules < model.total_energy_joules

    def test_spread_current_spans_latency(self):
        model = PowerModel(TABLE1_PROCESSOR)
        model.add_issue(int(OpClass.FP_MUL), 4)
        base = TABLE1_PROCESSOR.min_current_amps
        first = model.end_cycle()
        later = [model.end_cycle() for _ in range(4)]
        assert first > base
        assert later[0] > base          # FU current continues
        assert later[2] > base
        assert later[3] == pytest.approx(base)  # spread exhausted

    def test_preview_matches_end_cycle(self):
        model = PowerModel(TABLE1_PROCESSOR)
        model.add_dispatch(4)
        preview = model.preview_current()
        assert model.end_cycle() == pytest.approx(preview)

    def test_apriori_estimates_are_half_amp_units(self):
        model = PowerModel(TABLE1_PROCESSOR)
        for op in range(7):
            estimate = model.apriori_issue_estimate(op)
            assert estimate >= 0.5
            assert (estimate * 2) == pytest.approx(round(estimate * 2))

    def test_load_estimate_exceeds_int_alu(self):
        model = PowerModel(TABLE1_PROCESSOR)
        assert model.apriori_issue_estimate(
            int(OpClass.LOAD)
        ) > model.apriori_issue_estimate(int(OpClass.INT_ALU))

    def test_zero_weights_rejected(self):
        zero = EnergyWeights(
            dispatch=0.0, issue=0.0, commit=0.0, l1_access=0.0,
            l2_access=0.0, memory_access=0.0, rob_occupancy=0.0,
            fu={op: 0.0 for op in range(7)},
        )
        with pytest.raises(ConfigurationError):
            PowerModel(TABLE1_PROCESSOR, zero)

    def test_energy_accumulates(self):
        model = PowerModel(TABLE1_PROCESSOR)
        model.attach_supply(1.0, 1e-10)
        model.end_cycle()
        # 35 A * 1 V * 0.1 ns = 3.5 nJ
        assert model.total_energy_joules == pytest.approx(3.5e-9)
