"""End-to-end chaos tests: disturbed sweeps converge to the golden run.

The headline invariant of the crash-safety layer, exercised with real
process-level faults from :mod:`repro.faults.chaos`: a sweep whose
workers are SIGKILLed mid-cell and whose checkpoint is truncated or
bit-flipped between attempts still terminates, and repeated ``--resume``
runs converge to aggregates byte-identical to an undisturbed sequential
sweep -- no cell lost, duplicated, or silently altered.  Breadth (more
scenarios, seeded corruption sites, SIGTERM barriers) lives in
``tools/chaos.py``; CI runs it with ``--quick``.
"""

import dataclasses
import json

import pytest

from repro.core import ResonanceTuningController
from repro.faults.chaos import (
    KillWorkerOnce,
    flip_bit,
    inject_fsync_faults,
    truncate_file,
)
from repro.sim import (
    BenchmarkRunner,
    ResilienceConfig,
    SweepConfig,
    load_checkpoint,
)
from repro.sim.runner import _cell_key


def tuning_factory(supply, processor):
    return ResonanceTuningController(supply, processor)


def fingerprint(summary):
    return json.dumps(dataclasses.asdict(summary), sort_keys=True)


SMALL = SweepConfig(n_cycles=2000, warmup_cycles=200)
BENCHMARKS = ("swim", "gzip")
GRID_KEYS = {
    _cell_key(0, name, "resonance-tuning", None) for name in BENCHMARKS
}


@pytest.fixture(scope="module")
def golden():
    """Fingerprint of the undisturbed sequential sweep."""
    summary = BenchmarkRunner(SMALL).sweep(tuning_factory, benchmarks=BENCHMARKS)
    return fingerprint(summary)


def run_with_checkpoint(path, **kwargs):
    return BenchmarkRunner(SMALL).sweep(
        tuning_factory,
        benchmarks=BENCHMARKS,
        resilience=ResilienceConfig(checkpoint_path=str(path), **kwargs),
    )


class TestKillAndCorruptionConvergence:
    def test_kill_then_truncate_then_repeated_resume(self, tmp_path, golden):
        """SIGKILL a worker mid-cell, abort the sweep, mutilate the
        checkpoint, and resume (twice): aggregates must match the
        undisturbed run and the checkpoint must hold exactly the grid."""
        ck = tmp_path / "ck.json"

        class Abort(BaseException):
            """Out of Exception's reach: simulates a hard crash."""

        def crash_after_first(name, metrics):
            raise Abort()

        transform = KillWorkerOnce(
            str(tmp_path / "kill.marker"), "swim", after_cycles=300
        )
        with BenchmarkRunner(SMALL, supply_transform=transform) as runner:
            with pytest.raises(Abort):
                runner.sweep(
                    tuning_factory,
                    benchmarks=BENCHMARKS,
                    progress=crash_after_first,
                    resilience=ResilienceConfig(
                        checkpoint_path=str(ck), workers=2
                    ),
                )
        # at least the cell that triggered the crash callback is durable
        assert len(load_checkpoint(str(ck))["cells"]) >= 1

        truncate_file(str(ck), 0.5)
        with pytest.warns(RuntimeWarning, match="salvag"):
            resumed = run_with_checkpoint(ck, resume=True)
        assert fingerprint(resumed) == golden
        assert len(resumed.per_benchmark) == len(BENCHMARKS)
        assert not resumed.failures
        assert set(load_checkpoint(str(ck))["cells"]) == GRID_KEYS

        again = run_with_checkpoint(ck, resume=True)
        assert fingerprint(again) == golden
        assert again.timings["cells_cached"] == float(len(BENCHMARKS))

    def test_bit_flip_is_quarantined_and_resume_converges(
        self, tmp_path, golden
    ):
        ck = tmp_path / "ck.json"
        run_with_checkpoint(ck)
        flip_bit(str(ck), offset=ck.stat().st_size // 2)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            resumed = run_with_checkpoint(ck, resume=True)
        assert fingerprint(resumed) == golden
        assert list(tmp_path.glob("ck.json.corrupt-*"))
        # the re-persisted checkpoint at the original path is valid again
        assert GRID_KEYS <= set(load_checkpoint(str(ck))["cells"])

    def test_salvaged_checkpoint_is_repersisted_even_with_no_rerun(
        self, tmp_path
    ):
        """Quarantining must not eat the checkpoint: after a salvage the
        original path holds a valid file even if every record survived
        (and hence no cell re-ran to trigger a save)."""
        ck = tmp_path / "ck.json"
        run_with_checkpoint(ck)
        size = ck.stat().st_size
        truncate_file(str(ck), (size - 2) / size)  # clip the closing braces
        with pytest.warns(RuntimeWarning):
            run_with_checkpoint(ck, resume=True)
        loaded = load_checkpoint(str(ck))  # would raise if the path is gone
        assert set(loaded["cells"]) == GRID_KEYS


class TestWriteFaults:
    def test_sweep_survives_every_fsync_failing(self, tmp_path, golden):
        ck = tmp_path / "ck.json"
        with pytest.warns(RuntimeWarning, match="checkpoint write"):
            with inject_fsync_faults(every=1) as hits:
                summary = run_with_checkpoint(ck)
        assert hits["faults"] > 0
        assert fingerprint(summary) == golden
        # every atomic write aborted before the replace: no checkpoint,
        # no leftover temp files
        assert not list(tmp_path.iterdir())

    def test_intermittent_fsync_faults_leave_resumable_checkpoint(
        self, tmp_path, golden
    ):
        ck = tmp_path / "ck.json"
        with pytest.warns(RuntimeWarning, match="checkpoint write"):
            with inject_fsync_faults(every=2) as hits:
                summary = run_with_checkpoint(ck)
        assert hits["faults"] > 0
        assert fingerprint(summary) == golden
        resumed = run_with_checkpoint(ck, resume=True)
        assert fingerprint(resumed) == golden
        assert set(load_checkpoint(str(ck))["cells"]) == GRID_KEYS
