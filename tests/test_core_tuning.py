"""Tests for the two-tier resonance-tuning controller (Section 3.2)."""

import pytest

from repro.config import (
    TABLE1_PROCESSOR,
    TABLE1_SUPPLY,
    TABLE1_TUNING,
    TuningConfig,
)
from repro.core import NullController, ResonanceTuningController
from repro.errors import ConfigurationError
from repro.power import PowerSupply, waveforms
from repro.sim import BenchmarkRunner, Simulation, SweepConfig
from repro.uarch import Processor, SPEC2K


def make_controller(**tuning_kwargs):
    tuning = TuningConfig(**tuning_kwargs) if tuning_kwargs else TABLE1_TUNING
    return ResonanceTuningController(TABLE1_SUPPLY, TABLE1_PROCESSOR, tuning)


def drive_with_wave(controller, wave):
    """Feed a synthetic current waveform through the controller loop."""
    directives = []
    for cycle, current in enumerate(wave):
        directives.append(controller.directives(cycle))
        controller.observe(cycle, current, 0.0)
    return directives


class TestConfigValidation:
    def test_default_thresholds_consistent(self):
        tuning = TuningConfig()
        assert tuning.initial_response_threshold < tuning.second_level_threshold
        assert tuning.second_level_threshold == tuning.max_repetition_tolerance - 1

    def test_rejects_threshold_at_or_above_tolerance(self):
        with pytest.raises(ConfigurationError):
            TuningConfig(initial_response_threshold=4, max_repetition_tolerance=4)

    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            TuningConfig(response_delay_cycles=-1)


class TestResponseStateMachine:
    def test_no_response_on_flat_current(self):
        controller = make_controller()
        directives = drive_with_wave(controller, [70.0] * 1500)
        assert all(d.issue_width_limit is None for d in directives)
        assert controller.first_level_cycles == 0
        assert controller.second_level_cycles == 0

    def test_first_level_engages_at_initial_threshold(self):
        controller = make_controller()
        wave = waveforms.square_wave(1500, 100, amplitude_pp=40.0, mean=70.0)
        drive_with_wave(controller, wave)
        assert controller.first_level_engagements >= 1
        assert controller.first_level_cycles > 0

    def test_first_level_uses_reduced_widths(self):
        controller = make_controller()
        wave = waveforms.square_wave(1500, 100, amplitude_pp=40.0, mean=70.0)
        directives = drive_with_wave(controller, wave)
        first = [d for d in directives if d.issue_width_limit is not None]
        assert first
        assert all(
            d.issue_width_limit == TABLE1_TUNING.reduced_issue_width for d in first
        )
        assert all(
            d.cache_ports_limit == TABLE1_TUNING.reduced_cache_ports for d in first
        )

    def test_second_level_engages_on_sustained_resonance(self):
        controller = make_controller()
        # An open-loop waveform the first-level response cannot tune out.
        wave = waveforms.square_wave(2000, 100, amplitude_pp=45.0, mean=70.0)
        directives = drive_with_wave(controller, wave)
        assert controller.second_level_engagements >= 1
        stall = [d for d in directives if d.stall_issue]
        assert stall
        medium = TABLE1_PROCESSOR.medium_current_amps
        assert all(d.current_floor_amps == pytest.approx(medium) for d in stall)

    def test_second_level_holds_for_minimum_time(self):
        controller = make_controller()
        wave = waveforms.square_wave(2000, 100, amplitude_pp=45.0, mean=70.0)
        directives = drive_with_wave(controller, wave)
        stall_cycles = [c for c, d in enumerate(directives) if d.stall_issue]
        # The first contiguous stall must last at least the response time.
        first = stall_cycles[0]
        run_length = 1
        for cycle in stall_cycles[1:]:
            if cycle == first + run_length:
                run_length += 1
            else:
                break
        assert run_length >= TABLE1_TUNING.second_level_response_time

    def test_isolated_variation_draws_no_response(self):
        """The whole point: isolated events are not resonance."""
        controller = make_controller()
        wave = waveforms.step(1200, before=50.0, after=100.0, at_cycle=600)
        drive_with_wave(controller, wave)
        assert controller.first_level_cycles == 0
        assert controller.second_level_cycles == 0

    def test_response_delay_shifts_engagement(self):
        immediate = make_controller()
        delayed = make_controller(response_delay_cycles=10)
        wave = waveforms.square_wave(1200, 100, amplitude_pp=40.0, mean=70.0)
        d_immediate = drive_with_wave(immediate, wave)
        d_delayed = drive_with_wave(delayed, wave)

        def first_response(directives):
            for cycle, d in enumerate(directives):
                if d.issue_width_limit is not None or d.stall_issue:
                    return cycle
            return None

        assert first_response(d_delayed) == first_response(d_immediate) + 10

    def test_response_fractions_exposed(self):
        controller = make_controller()
        wave = waveforms.square_wave(1500, 100, amplitude_pp=45.0, mean=70.0)
        drive_with_wave(controller, wave)
        fractions = controller.response_cycle_fractions
        assert fractions["first_level_cycles"] == controller.first_level_cycles
        assert fractions["second_level_cycles"] == controller.second_level_cycles


class TestClosedLoop:
    """End-to-end: tuning on the real processor + supply."""

    @pytest.fixture(scope="class")
    def runner(self):
        return BenchmarkRunner(SweepConfig(n_cycles=40_000))

    @pytest.mark.parametrize("name", ["swim", "bzip", "parser"])
    def test_eliminates_violations_on_violators(self, runner, name):
        base = runner.run_base(name)
        assert base.violation_cycles > 0, "workload must violate at base"
        metrics = runner.compare(
            name,
            lambda supply, proc: ResonanceTuningController(supply, proc),
        )
        assert metrics.violation_fraction <= 2e-5

    def test_cost_is_modest_on_a_violator(self, runner):
        metrics = runner.compare(
            "swim", lambda supply, proc: ResonanceTuningController(supply, proc)
        )
        assert 1.0 <= metrics.slowdown < 1.25
        assert 1.0 <= metrics.energy_delay < 1.40

    def test_negligible_cost_on_quiet_workload(self, runner):
        metrics = runner.compare(
            "ammp", lambda supply, proc: ResonanceTuningController(supply, proc)
        )
        assert metrics.slowdown < 1.02

    def test_second_level_rarer_than_first_level(self, runner):
        metrics = runner.compare(
            "swim", lambda supply, proc: ResonanceTuningController(supply, proc)
        )
        assert 0 < metrics.second_level_fraction < metrics.first_level_fraction


class TestOverheads:
    def test_section_3_3_inventory(self):
        """The paper's hardware cost claims, checked against our detector."""
        from repro.core.overheads import estimate_overheads

        controller = make_controller()
        overheads = controller.overheads
        # Nine 7-bit adders ~ one 64-bit adder per cycle (Section 3.3).
        assert overheads.adder_count == 9
        assert overheads.adder_energy_equivalent_64bit == pytest.approx(
            1.0, abs=0.05
        )
        # Event histories: 2 registers x tolerance x max half-period bits.
        assert overheads.event_history_bits == 2 * 4 * 59
        assert overheads.total_transistors > 4000  # sensors alone are 4000

    def test_energy_under_one_percent(self):
        """Section 4.1: overhead is small (< 1 % of processor energy)."""
        controller = make_controller()
        fraction = controller.overheads.energy_fraction_of(
            processor_power_watts=70.0, cycle_seconds=1e-10
        )
        assert fraction < 0.01

    def test_simulation_charges_overhead(self):
        from repro.core import NullController
        from repro.power import PowerSupply
        from repro.sim import Simulation
        from repro.uarch import Processor, SPEC2K

        def run(controller):
            processor = Processor.from_profile(
                SPEC2K["gzip"], n_instructions=30_000,
                config=TABLE1_PROCESSOR, supply_config=TABLE1_SUPPLY,
            )
            supply = PowerSupply(TABLE1_SUPPLY, initial_current=35.0)
            return Simulation(processor, supply, controller).run(2_000)

        quiet = run(NullController())
        controller = make_controller()
        tuned = run(controller)
        expected = controller.overhead_energy_joules(2_000)
        assert expected > 0
        # Tuned energy includes at least the hardware overhead.
        assert tuned.energy_joules >= quiet.energy_joules * 0.99
