"""Differential fuzz: optimized hot paths vs the repro.oracles references.

Three oracle pairs, each fuzzed with Hypothesis:

* ``ResonanceDetector`` (O(1) cumulative-sum adders) vs
  ``ReferenceDetector`` (brute-force window re-summation) -- **bit-exact**
  on the dyadic grid the shared strategies generate;
* ``PowerSupply`` (per-cycle Heun stepping) vs ``ConvolutionSupply``
  (whole-run transient + direct convolution) -- within
  ``REFERENCE_RTOL`` of the run's voltage peak;
* ``ConvolutionSupply`` vs the closed forms in ``repro.power.analytic``
  (step, sine steady state, ring-down) -- within the discretization
  tolerances documented there.

Plus the golden-trace gate: the committed ``tests/goldens/goldens.json``
must match a sequential recomputation (CI additionally checks the
``--workers 2`` backend via ``tools/conformance.py``).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import TABLE1_SUPPLY
from repro.core import CurrentSensor, ResonanceDetector
from repro.faults import FaultySensor
from repro.oracles import (
    ConvolutionSupply,
    ReferenceDetector,
    compute_goldens,
    default_goldens_path,
    diff_goldens,
    load_goldens,
    violation_stats,
)
from repro.oracles.supply_ref import REFERENCE_RTOL
from repro.power import PowerSupply, RLCAnalysis, waveforms
from repro.power.analytic import (
    ring_amplitude_after,
    sine_steady_state_amplitude,
    step_response,
)

from tests.strategies import (
    band_configs,
    band_traces,
    fault_overlays,
    quantize_to_grid,
    supply_stimuli,
    underdamped_supply_configs,
)


def _assert_detectors_agree(config, trace):
    """Drive both implementations in lockstep and demand bit-identity."""
    optimized = ResonanceDetector(**config)
    reference = ReferenceDetector(**config)
    for cycle, amps in enumerate(trace):
        amps = float(amps)
        fast = optimized.observe(cycle, amps)
        slow = reference.observe(cycle, amps)
        # ResonantEvent is a frozen dataclass: == compares cycle, polarity,
        # count and the full deduplicated chain.
        assert fast == slow, (
            f"cycle {cycle}: optimized {fast!r} != reference {slow!r}"
        )
        assert optimized.current_count(cycle) == reference.current_count(cycle)
    assert optimized.total_events == reference.total_events
    assert optimized.nonfinite_samples == reference.nonfinite_samples


class TestDetectorDifferential:
    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_matches_reference_on_fuzzed_traces(self, data):
        config = data.draw(band_configs())
        trace = data.draw(band_traces(config))
        _assert_detectors_agree(config, trace)

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_under_fault_overlays(self, data):
        """Degraded sensor inputs (fault chains) must not split the pair.

        The faulted stream is quantized before observation -- the grid
        models the hardware quantizer sitting after any analog fault, and
        keeps the comparison exact.
        """
        config = data.draw(band_configs())
        trace = data.draw(band_traces(config, allow_nan=False))
        sensor = FaultySensor(data.draw(fault_overlays()), base=CurrentSensor())
        faulted = quantize_to_grid(
            np.asarray([sensor.read(float(x)) for x in trace])
        )
        _assert_detectors_agree(config, faulted)

    def test_matches_reference_on_table1_band(self):
        """Deterministic long-trace anchor on the paper's own band."""
        band = RLCAnalysis(TABLE1_SUPPLY).band
        rng = np.random.default_rng(42)
        trace = quantize_to_grid(
            waveforms.square_wave(4000, 100, 40.0, mean=70.0)
            + rng.integers(-3, 4, 4000)
        )
        _assert_detectors_agree(
            {
                "half_periods": band.half_periods,
                "threshold_amps": 26.0,
                "max_repetition_tolerance": 4,
            },
            trace,
        )

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_dyadic_quarter_override_agrees(self, data):
        """The wavelet-style quarter_periods override uses the same pair."""
        config = data.draw(band_configs())
        quarters = sorted({h // 2 for h in config["half_periods"]})
        config["quarter_periods"] = [
            max(1, 1 << (quarters[0].bit_length() - 1)),
            1 << (quarters[-1] - 1).bit_length(),
        ]
        trace = data.draw(band_traces(config, allow_nan=False))
        _assert_detectors_agree(config, trace)


class TestSupplyDifferential:
    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_heun_matches_convolution(self, data):
        config = data.draw(underdamped_supply_configs())
        stimulus = data.draw(supply_stimuli(config))
        initial = float(stimulus[0])
        simulated = PowerSupply(config, initial_current=initial).run(stimulus)
        reference = ConvolutionSupply(config, initial_current=initial).run(stimulus)
        scale = max(np.max(np.abs(simulated)), config.noise_margin_volts)
        assert np.max(np.abs(simulated - reference)) <= REFERENCE_RTOL * scale

    @given(substeps=st.integers(1, 4), amplitude=st.floats(5.0, 60.0))
    @settings(max_examples=40, deadline=None)
    def test_substeps_preserve_agreement(self, substeps, amplitude):
        period = RLCAnalysis(TABLE1_SUPPLY).resonant_period_cycles
        wave = waveforms.square_wave(1200, period, amplitude, mean=50.0, start=60)
        simulated = PowerSupply(
            TABLE1_SUPPLY, initial_current=50.0, substeps=substeps
        ).run(wave)
        reference = ConvolutionSupply(
            TABLE1_SUPPLY, initial_current=50.0, substeps=substeps
        ).run(wave)
        scale = max(np.max(np.abs(simulated)), TABLE1_SUPPLY.noise_margin_volts)
        assert np.max(np.abs(simulated - reference)) <= REFERENCE_RTOL * scale

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_violation_bookkeeping_matches(self, data):
        """PowerSupply's stepped margin counters equal the recomputation."""
        config = data.draw(underdamped_supply_configs())
        stimulus = data.draw(supply_stimuli(config))
        supply = PowerSupply(config, initial_current=float(stimulus[0]))
        voltages = supply.run(stimulus)
        stats = violation_stats(voltages, config.noise_margin_volts)
        assert stats["violation_cycles"] == supply.violation_cycles
        assert stats["violation_events"] == supply.violation_events
        assert stats["first_violation_cycle"] == supply.first_violation_cycle


class TestConvolutionVsClosedForm:
    """The reference itself is checked against the analytic oracles.

    Tolerances are the documented Heun discretization bounds: ~2 % of peak
    for the Table 1 circuit at one substep (omega0*dt ~ 0.06), tightening
    with substeps.
    """

    def test_step_response_within_discretization_tolerance(self):
        delta = 40.0
        n = 400
        wave = waveforms.step(n, before=0.0, after=delta, at_cycle=0)
        reference = ConvolutionSupply(TABLE1_SUPPLY).run(wave)
        t = (np.arange(n) + 1) * TABLE1_SUPPLY.cycle_seconds
        exact = step_response(TABLE1_SUPPLY, delta, t)
        assert np.max(np.abs(reference - exact)) < 0.02 * np.max(np.abs(exact))

    @pytest.mark.parametrize("period_cycles", [50, 100, 200])
    def test_sine_steady_state_within_tolerance(self, period_cycles):
        amplitude_pp = 20.0
        frequency = TABLE1_SUPPLY.clock_hz / period_cycles
        exact = sine_steady_state_amplitude(TABLE1_SUPPLY, frequency, amplitude_pp)
        wave = waveforms.sine_wave(4000, period_cycles, amplitude_pp, mean=40.0)
        voltages = ConvolutionSupply(TABLE1_SUPPLY, initial_current=40.0).run(wave)
        measured = 0.5 * (voltages[2000:].max() - voltages[2000:].min())
        assert measured == pytest.approx(exact, rel=0.05)

    def test_ring_down_decay_within_tolerance(self):
        """Free decay after a resonant kick follows the analytic envelope."""
        period = RLCAnalysis(TABLE1_SUPPLY).resonant_period_cycles
        kick = waveforms.square_wave(3000, period, 40.0, mean=50.0, start=0, end=600)
        voltages = ConvolutionSupply(TABLE1_SUPPLY, initial_current=50.0).run(kick)
        quiet = voltages[600:]
        spans = [600, 600 + 5 * period]
        a0 = np.max(np.abs(quiet[: 2 * period]))
        a1 = np.max(np.abs(quiet[5 * period : 7 * period]))
        expected = ring_amplitude_after(TABLE1_SUPPLY, a0, 5 * period)
        assert a1 == pytest.approx(expected, rel=0.15), spans


class TestGoldenTraces:
    def test_committed_goldens_match_sequential_recompute(self):
        committed = load_goldens(default_goldens_path())
        computed = compute_goldens(workers=1)
        differences = diff_goldens(committed["cells"], computed)
        assert not differences, (
            "golden traces drifted; if intentional run tools/conformance.py "
            "--regen --reason '...' and commit the diff:\n" + "\n".join(differences)
        )

    def test_goldens_record_a_regen_reason(self):
        committed = load_goldens(default_goldens_path())
        assert len(committed["regen_reason"].strip()) >= 10

    @pytest.mark.slow
    def test_parallel_backend_is_byte_identical(self):
        """Same gate CI runs via tools/conformance.py --workers 2."""
        from repro.oracles import render_goldens

        sequential = render_goldens(compute_goldens(workers=1), "x")
        parallel = render_goldens(compute_goldens(workers=2), "x")
        assert sequential == parallel
