"""Unit tests for the Section 3.3 hardware-cost accounting (core/overheads.py)."""

import pytest

from repro.config import TABLE1_PROCESSOR, TABLE1_SUPPLY
from repro.core import (
    ResonanceDetector,
    WaveletDetector,
    estimate_overheads,
)
from repro.errors import ConfigurationError
from repro.power import RLCAnalysis


def _table1_detector():
    band = RLCAnalysis(TABLE1_SUPPLY).band
    return ResonanceDetector(band.half_periods, 26.0, 4)


class TestTable1Inventory:
    def test_adder_inventory_matches_paper(self):
        """Nine 7-bit adders: the paper's 'up to 9 current-history adders'
        whose energy is 'approximately ... one 64-bit adder'."""
        overheads = estimate_overheads(_table1_detector(), TABLE1_PROCESSOR)
        assert overheads.adder_count == 9
        assert overheads.adder_bits == 63
        assert overheads.adder_energy_equivalent_64bit == pytest.approx(
            63 / 64
        )

    def test_event_history_sized_by_repetition_tolerance(self):
        # Table 1: tolerance 4 x longest half-period 59 -> 236 bits/polarity.
        overheads = estimate_overheads(_table1_detector(), TABLE1_PROCESSOR)
        assert overheads.event_history_bits == 2 * 4 * 59

    def test_current_history_covers_two_longest_quarters(self):
        # Depth 2*29+1 entries of 7 bits each.
        overheads = estimate_overheads(_table1_detector(), TABLE1_PROCESSOR)
        assert overheads.current_history_bits == (2 * 29 + 1) * 7

    def test_sensor_and_total_transistor_budget(self):
        overheads = estimate_overheads(_table1_detector(), TABLE1_PROCESSOR)
        assert overheads.sensor_transistors == 4000
        assert overheads.total_transistors == (
            overheads.sensor_transistors + overheads.logic_transistors
        )
        # The whole detector is small change against a full core.
        assert overheads.total_transistors < 50_000


class TestEnergyAccounting:
    def test_overhead_below_one_percent_of_table1_processor(self):
        """Section 4.1: modelled overhead is 'small (< 1 % of processor
        energy)' -- checked against the 105 W Table 1 design point."""
        overheads = estimate_overheads(_table1_detector(), TABLE1_PROCESSOR)
        fraction = overheads.energy_fraction_of(
            processor_power_watts=105.0,
            cycle_seconds=TABLE1_SUPPLY.cycle_seconds,
        )
        assert 0 < fraction < 0.01

    def test_energy_scales_with_adder_bits(self):
        base = estimate_overheads(_table1_detector(), TABLE1_PROCESSOR)
        doubled = estimate_overheads(
            _table1_detector(), TABLE1_PROCESSOR,
            energy_per_adder_bit_joules=1e-15,
        )
        assert doubled.energy_per_cycle_joules == pytest.approx(
            2 * base.energy_per_cycle_joules
        )

    def test_nonpositive_power_rejected(self):
        overheads = estimate_overheads(_table1_detector(), TABLE1_PROCESSOR)
        with pytest.raises(ConfigurationError):
            overheads.energy_fraction_of(0.0, 1e-10)
        with pytest.raises(ConfigurationError):
            overheads.energy_fraction_of(105.0, 0.0)


class TestWaveletComparison:
    def test_wavelet_detector_is_cheaper(self):
        """The dyadic alternative's headline saving shows up in the
        accounting: fewer adders, fewer adder bits, less energy."""
        band = RLCAnalysis(TABLE1_SUPPLY).band
        full = estimate_overheads(
            ResonanceDetector(band.half_periods, 26.0, 4), TABLE1_PROCESSOR
        )
        wavelet = estimate_overheads(
            WaveletDetector(band.half_periods, 26.0, 4), TABLE1_PROCESSOR
        )
        assert wavelet.adder_count < full.adder_count
        assert wavelet.adder_bits < full.adder_bits
        assert wavelet.energy_per_cycle_joules < full.energy_per_cycle_joules
