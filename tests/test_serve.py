"""Tests for the sweep service (repro.serve).

Three layers:

* **Unit**: job-spec validation, admission-policy determinism, and the
  durable job store (persistence, recovery, corruption quarantine,
  lifecycle transitions) -- no sockets, no threads.
* **Integration**: one real service on an ephemeral port exercised over
  HTTP -- submit, stream SSE to completion, idempotent replay, result
  and error routes, cancellation, queue overflow, drain.
* **CLI**: the `serve` subcommand wiring and the Ctrl-C exit discipline.

The heavyweight failure modes (``kill -9`` + restart + resume, client
disconnect mid-stream, slow-loris) live in ``tools/chaos.py`` where they
run against a real subprocess; these tests keep the feedback loop fast.
"""

import asyncio
import dataclasses
import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import JobSpecError, JobStateError
from repro.faults.chaos import flip_bit
from repro.serve import (
    AdmissionPolicy,
    JobSpec,
    JobStore,
    ServeConfig,
    SweepService,
    controller_factory,
)
from repro.sim import BenchmarkRunner, SweepConfig


# ----------------------------------------------------------------------
# Job specs
# ----------------------------------------------------------------------

def spec_dict(**overrides):
    data = {"technique": "tuning", "benchmarks": ["swim"]}
    data.update(overrides)
    return data


class TestJobSpec:
    def test_minimal_spec_defaults(self):
        spec = JobSpec.from_dict(spec_dict())
        assert spec.technique == "tuning"
        assert spec.benchmarks == ("swim",)
        assert spec.seeds == (None,)
        assert spec.tenant == "default"
        assert spec.n_cells == 1

    def test_round_trip(self):
        spec = JobSpec.from_dict(spec_dict(
            benchmarks=["swim", "gzip"], seeds=[None, 7],
            n_cycles=900, warmup_cycles=90, tenant="team-a",
            params={"response_time": 80}, max_retries=1,
            deadline_s=30.0, pace_s=0.1,
        ))
        assert JobSpec.from_dict(spec.to_dict()) == spec
        assert spec.n_cells == 4

    @pytest.mark.parametrize("bad", [
        spec_dict(technique="nope"),
        spec_dict(benchmarks=[]),
        spec_dict(benchmarks=["not-a-benchmark"]),
        spec_dict(benchmarks="swim"),
        spec_dict(seeds=[]),
        spec_dict(seeds=["x"]),
        spec_dict(seeds=[True]),
        spec_dict(n_cycles=0),
        spec_dict(n_cycles="many"),
        spec_dict(warmup_cycles=-1),
        spec_dict(max_retries=-1),
        spec_dict(deadline_s=0),
        spec_dict(pace_s=-0.1),
        spec_dict(pace_s=99.0),
        spec_dict(tenant="no spaces allowed"),
        spec_dict(tenant=""),
        spec_dict(params={"unknown_knob": 3}),
        spec_dict(params="not-an-object"),
        spec_dict(surprise_field=1),
        spec_dict(technique=7),
        [],
        "spec",
    ])
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(JobSpecError):
            JobSpec.from_dict(bad)

    def test_unknown_params_name_the_technique(self):
        with pytest.raises(JobSpecError, match="delta_amps.*tuning"):
            JobSpec.from_dict(spec_dict(params={"delta_amps": 10.0}))

    def test_factory_matches_direct_controller(self):
        """The served factory is the CLI's factory: same technique name,
        and byte-identical sweep aggregates on the same grid."""
        spec = JobSpec.from_dict(spec_dict(n_cycles=900, warmup_cycles=90))
        factory = controller_factory(spec)
        config = SweepConfig(n_cycles=900, warmup_cycles=90)
        served = BenchmarkRunner(config).sweep(factory, benchmarks=["swim"])

        from repro.cli import _technique_factory
        import argparse
        cli_args = argparse.Namespace(technique="tuning", response_time=100)
        direct = BenchmarkRunner(config).sweep(
            _technique_factory(cli_args), benchmarks=["swim"]
        )
        assert (
            json.dumps(dataclasses.asdict(served), sort_keys=True)
            == json.dumps(dataclasses.asdict(direct), sort_keys=True)
        )

    def test_factory_param_validation(self):
        spec = JobSpec.from_dict(spec_dict(
            technique="damping", params={"delta_amps": "wide"},
        ))
        with pytest.raises(JobSpecError):
            controller_factory(spec)


# ----------------------------------------------------------------------
# Admission policy
# ----------------------------------------------------------------------

class TestAdmissionPolicy:
    def test_retry_after_is_deterministic_and_monotone(self):
        policy = AdmissionPolicy(retry_after_base_s=1.0)
        hints = [policy.retry_after(q, 1) for q in range(5)]
        assert hints == [policy.retry_after(q, 1) for q in range(5)]
        assert hints == sorted(hints)
        assert all(isinstance(h, int) and h >= 1 for h in hints)

    def test_queue_bound(self):
        policy = AdmissionPolicy(max_queued=2)
        decision = policy.decide("t", 1, queued=2, running=0,
                                 tenant_active={}, tenant_cells={})
        assert not decision.admitted
        assert decision.reason == "queue_full"
        assert decision.retry_after_s == policy.retry_after(2, 0)

    def test_tenant_job_budget(self):
        policy = AdmissionPolicy(tenant_max_active=1)
        decision = policy.decide(
            "a", 1, queued=0, running=1,
            tenant_active={"a": 1}, tenant_cells={"a": 4},
        )
        assert decision.reason == "tenant_jobs_exhausted"
        # Another tenant is unaffected by tenant a's budget.
        assert policy.decide(
            "b", 1, queued=0, running=1,
            tenant_active={"a": 1}, tenant_cells={"a": 4},
        ).admitted

    def test_tenant_cell_budget(self):
        policy = AdmissionPolicy(tenant_max_cells=10)
        decision = policy.decide(
            "a", 6, queued=0, running=1,
            tenant_active={"a": 1}, tenant_cells={"a": 5},
        )
        assert decision.reason == "tenant_cells_exhausted"
        assert policy.decide(
            "a", 5, queued=0, running=1,
            tenant_active={"a": 1}, tenant_cells={"a": 5},
        ).admitted

    def test_bad_policy_rejected_at_construction(self):
        from repro.errors import ConfigurationError
        for kwargs in (
            {"max_queued": 0},
            {"tenant_max_active": 0},
            {"tenant_max_cells": 0},
            {"retry_after_base_s": 0},
        ):
            with pytest.raises(ConfigurationError):
                AdmissionPolicy(**kwargs)


# ----------------------------------------------------------------------
# Durable job store
# ----------------------------------------------------------------------

class TestJobStore:
    def test_create_persists_validated_record(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.create("t", spec_dict(), total_cells=1,
                              idempotency_key="k")
        payload = json.loads(
            open(store.record_path(record.job_id)).read()
        )
        assert payload["_meta"]["checksum"]
        assert payload["record"]["state"] == "queued"
        assert store.find_idempotent("t", "k").job_id == record.job_id
        assert store.find_idempotent("other-tenant", "k") is None

    def test_recover_adopts_in_flight_jobs(self, tmp_path):
        store = JobStore(str(tmp_path))
        running = store.create("t", spec_dict(), total_cells=1,
                               idempotency_key="k")
        store.transition(running.job_id, "running")
        done = store.create("t", spec_dict(), total_cells=1)
        store.transition(done.job_id, "running")
        store.transition(done.job_id, "done")

        fresh = JobStore(str(tmp_path))
        adopted = fresh.recover()
        assert [r.job_id for r in adopted] == [running.job_id]
        revived = fresh.get(running.job_id)
        assert revived.state == "queued"
        assert revived.adoptions == 1
        assert revived.started_at is None
        assert fresh.get(done.job_id).state == "done"
        # The idempotency map survives the restart.
        assert fresh.find_idempotent("t", "k").job_id == running.job_id
        # And the adoption is already durable, not just in memory.
        again = JobStore(str(tmp_path))
        again.recover()
        assert again.get(running.job_id).adoptions == 1

    def test_recover_quarantines_corrupt_records(self, tmp_path):
        store = JobStore(str(tmp_path))
        broken = store.create("t", spec_dict(), total_cells=1)
        intact = store.create("t", spec_dict(), total_cells=1)
        path = store.record_path(broken.job_id)
        flip_bit(path, offset=os.path.getsize(path) // 2)

        fresh = JobStore(str(tmp_path))
        fresh.recover()
        assert fresh.get(broken.job_id) is None
        assert fresh.get(intact.job_id) is not None
        assert len(fresh.corrupt_files) == 1
        assert ".corrupt-" in fresh.corrupt_files[0]
        assert os.path.exists(fresh.corrupt_files[0])
        assert not os.path.exists(path)

    def test_transition_rules(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.create("t", spec_dict(), total_cells=1)
        store.transition(record.job_id, "running")
        store.transition(record.job_id, "done")
        with pytest.raises(JobStateError):
            store.transition(record.job_id, "running")
        with pytest.raises(JobStateError):
            store.transition("job-missing", "running")

    def test_checkpoint_path_is_per_job(self, tmp_path):
        store = JobStore(str(tmp_path))
        a = store.create("t", spec_dict(), total_cells=1)
        b = store.create("t", spec_dict(), total_cells=1)
        assert store.checkpoint_path(a.job_id) != store.checkpoint_path(b.job_id)
        assert store.checkpoint_path(a.job_id).startswith(str(tmp_path))


# ----------------------------------------------------------------------
# Service integration over real HTTP
# ----------------------------------------------------------------------

def _decode(response):
    """JSON body, or raw text for non-JSON surfaces like /metrics."""
    raw = response.read()
    if not raw:
        return None
    if response.headers.get_content_type() == "application/json":
        return json.loads(raw)
    return raw.decode()


class ServiceFixture:
    """One in-process service on an ephemeral port, driven over HTTP."""

    def __init__(self, tmp_path, **config_kwargs):
        config_kwargs.setdefault("max_running", 1)
        config_kwargs.setdefault(
            "admission",
            AdmissionPolicy(max_queued=2, tenant_max_active=8,
                            tenant_max_cells=512),
        )
        self.service = SweepService(ServeConfig(
            data_dir=str(tmp_path / "serve"), port=0, **config_kwargs
        ))
        self.exit_code = None
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self.exit_code = asyncio.run(self.service.run())

    def __enter__(self):
        self.thread.start()
        deadline = time.monotonic() + 10
        while self.service.bound_port is None:
            if time.monotonic() > deadline:
                raise RuntimeError("service never bound its port")
            time.sleep(0.02)
        self.base = f"http://127.0.0.1:{self.service.bound_port}"
        return self

    def __exit__(self, *exc):
        loop = self.service._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self.service.initiate_drain)
        self.thread.join(timeout=30)

    def request(self, method, path, body=None, headers=None, timeout=10.0):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base + path, data=data, method=method, headers=headers or {}
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as resp:
                return resp.status, dict(resp.headers), _decode(resp)
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), _decode(error)

    def wait_state(self, job_id, states, timeout_s=60.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            _, _, record = self.request("GET", f"/jobs/{job_id}")
            if record["state"] in states:
                return record
            time.sleep(0.05)
        raise RuntimeError(f"job {job_id} never reached {states}")


TINY = {"n_cycles": 800, "warmup_cycles": 80}


class TestServiceIntegration:
    def test_submit_stream_result_lifecycle(self, tmp_path):
        with ServiceFixture(tmp_path) as fx:
            status, _, _ = fx.request("GET", "/readyz")
            assert status == 200

            status, _, record = fx.request(
                "POST", "/jobs", spec_dict(**TINY),
                {"Idempotency-Key": "a", "Content-Type": "application/json"},
            )
            assert status == 201
            job_id = record["job_id"]
            assert record["total_cells"] == 1

            # Result before completion is a 409, not an empty 200 (the
            # tiny job may already be done; both are well-formed).
            status, _, _ = fx.request("GET", f"/jobs/{job_id}/result")
            assert status in (200, 409)

            record = fx.wait_state(job_id, ("done",))
            assert record["completed_cells"] == 1
            assert record["failed_cells"] == 0

            status, _, result = fx.request("GET", f"/jobs/{job_id}/result")
            assert status == 200
            summary = result["result"]["summary"]
            assert summary["technique"] == "resonance-tuning"
            assert summary["per_benchmark"][0]["benchmark"] == "swim"

            # Idempotent replay returns the original job, 200 not 201.
            status, _, replay = fx.request(
                "POST", "/jobs", spec_dict(**TINY), {"Idempotency-Key": "a"}
            )
            assert (status, replay["job_id"]) == (200, job_id)

            # The listing and metrics surfaces agree.
            _, _, listing = fx.request("GET", "/jobs")
            assert job_id in [job["job_id"] for job in listing["jobs"]]
            status, headers, _ = fx.request("GET", "/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")

    def test_validation_and_unknown_routes(self, tmp_path):
        with ServiceFixture(tmp_path) as fx:
            status, _, body = fx.request(
                "POST", "/jobs", spec_dict(technique="nope")
            )
            assert status == 400
            assert "unknown technique" in body["error"]
            assert fx.request("GET", "/jobs/job-missing")[0] == 404
            assert fx.request("GET", "/nope")[0] == 404
            assert fx.request("DELETE", "/jobs")[0] == 405
            status, _, body = fx.request("POST", "/jobs", body=None)
            assert status == 400

    def test_overflow_sheds_with_deterministic_retry_after(self, tmp_path):
        policy = AdmissionPolicy(max_queued=1, tenant_max_active=8,
                                 tenant_max_cells=512)
        with ServiceFixture(tmp_path, admission=policy) as fx:
            running = fx.request(
                "POST", "/jobs", spec_dict(pace_s=0.4, **TINY)
            )[2]
            queued = fx.request("POST", "/jobs", spec_dict(**TINY))[2]
            status, headers, _ = fx.request("POST", "/jobs", spec_dict(**TINY))
            assert status == 429
            assert headers["Retry-After"] == str(policy.retry_after(1, 1))
            # The queued job is cancellable; the running one completes.
            status, _, record = fx.request(
                "POST", f"/jobs/{queued['job_id']}/cancel"
            )
            assert (status, record["state"]) == (200, "cancelled")
            record = fx.wait_state(running["job_id"], ("done",))
            assert record["state"] == "done"

    def test_cancel_running_job_drains_at_cell_barrier(self, tmp_path):
        with ServiceFixture(tmp_path) as fx:
            record = fx.request("POST", "/jobs", spec_dict(
                benchmarks=["swim", "gzip", "parser"], pace_s=0.5, **TINY
            ))[2]
            job_id = record["job_id"]
            fx.wait_state(job_id, ("running",))
            status, _, record = fx.request("POST", f"/jobs/{job_id}/cancel")
            assert status == 200
            assert record["state"] in ("draining", "cancelled")
            record = fx.wait_state(job_id, ("cancelled",))
            assert record["cancel_requested"] is True
            # Cancelling a terminal job is a 409, not a double transition.
            assert fx.request("POST", f"/jobs/{job_id}/cancel")[0] == 409
            # The checkpoint keeps whatever completed before the barrier.
            status, _, _ = fx.request("GET", f"/jobs/{job_id}/result")
            assert status == 409

    def test_sse_stream_reaches_end(self, tmp_path):
        import socket

        with ServiceFixture(tmp_path) as fx:
            job_id = fx.request("POST", "/jobs", spec_dict(**TINY))[2]["job_id"]
            sock = socket.create_connection(
                ("127.0.0.1", fx.service.bound_port), timeout=30
            )
            try:
                sock.sendall(
                    f"GET /jobs/{job_id}/events HTTP/1.1\r\n"
                    f"Host: x\r\n\r\n".encode()
                )
                sock.settimeout(60)
                stream = b""
                while b"event: end" not in stream:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    stream += chunk
            finally:
                sock.close()
            assert b"event: state" in stream
            assert stream.count(b"event: cell") == 1
            assert b"event: end" in stream

    def test_drain_exits_zero_when_idle(self, tmp_path):
        fx = ServiceFixture(tmp_path)
        with fx:
            record = fx.request("POST", "/jobs", spec_dict(**TINY))[2]
            fx.wait_state(record["job_id"], ("done",))
        assert fx.exit_code == 0

    def test_drain_with_queued_work_exits_75_and_recovers(self, tmp_path):
        fx = ServiceFixture(tmp_path, drain_deadline_s=5.0)
        with fx:
            running = fx.request(
                "POST", "/jobs",
                spec_dict(benchmarks=["swim", "gzip"], pace_s=0.5, **TINY),
            )[2]
            queued = fx.request("POST", "/jobs", spec_dict(**TINY))[2]
            fx.wait_state(running["job_id"], ("running",))
            # __exit__ initiates the drain with work outstanding.
        assert fx.exit_code == 75
        # A fresh store adopts the leftovers back to queued.
        store = JobStore(str(tmp_path / "serve"))
        store.recover()
        states = {r.job_id: r.state for r in store.list_records()}
        assert states[queued["job_id"]] == "queued"
        # The paced job was stopped at a cell barrier and re-queued; if it
        # outran the drain it is done -- either way it is restartable state.
        assert states[running["job_id"]] in ("queued", "done")
        # Submitting while draining would have been refused; after the
        # restartable state is proven, nothing else to assert here.


# ----------------------------------------------------------------------
# Debug endpoints and end-to-end trace correlation
# ----------------------------------------------------------------------

@pytest.fixture()
def clean_obs():
    """Reset process-wide observability around a test that turns it on."""
    from repro import obs

    obs.finalize()
    yield obs
    obs.finalize()


class TestDebugEndpoints:
    def test_debug_vars_surface(self, tmp_path):
        with ServiceFixture(tmp_path) as fx:
            status, headers, body = fx.request("GET", "/debug/vars")
            assert status == 200
            assert headers["Content-Type"].startswith("application/json")
            assert body["pid"] == os.getpid()
            assert body["uptime_s"] >= 0
            assert body["draining"] is False
            assert body["queue_depth"] == 0
            assert body["running_jobs"] == []
            assert body["tracing"] is False
            assert body["profiling"] is False
            assert "counters" in body["metrics"]
            # mutating methods stay rejected on the debug surface
            assert fx.request("POST", "/debug/vars")[0] == 405

    def test_debug_profile_409_when_off(self, tmp_path):
        with ServiceFixture(tmp_path) as fx:
            status, _, body = fx.request("GET", "/debug/profile")
            assert status == 409
            assert "profiler is off" in body["error"]

    def test_debug_profile_live_snapshot(self, tmp_path, clean_obs):
        clean_obs.configure(profile_out=str(tmp_path / "profile.json"))
        with ServiceFixture(tmp_path) as fx:
            # let the sampler observe the service threads at least once
            time.sleep(0.05)
            status, _, body = fx.request("GET", "/debug/profile")
            assert status == 200
            assert body["$schema"] == (
                "https://www.speedscope.app/file-format-schema.json"
            )
            assert body["profiles"]


class TestEndToEndTraceCorrelation:
    """The acceptance demo: one job through serve backed by the dist
    backend must land every tier's span in one causally-linked trace."""

    def test_serve_dist_job_links_one_trace(self, tmp_path, clean_obs):
        from repro.obs.context import TraceContext
        from repro.obs.trace import load_trace_events

        trace_path = tmp_path / "trace.json"
        clean_obs.configure(trace_out=str(trace_path))
        client_ctx = TraceContext.root("client|e2e")
        with ServiceFixture(tmp_path) as fx:
            status, _, record = fx.request(
                "POST", "/jobs",
                spec_dict(backend="dist", workers=1, **TINY),
                {"traceparent": client_ctx.to_traceparent()},
            )
            assert status == 201
            job_id = record["job_id"]
            assert record["trace"]["trace_id"] == client_ctx.trace_id
            fx.wait_state(job_id, ("done",), timeout_s=120.0)
        clean_obs.finalize()

        events = load_trace_events(str(trace_path))
        spans = {}
        for event in events:
            if event.get("ph") != "X":
                continue
            args = event.get("args", {})
            if args.get("trace_id") == client_ctx.trace_id:
                spans[args["span_id"]] = (
                    event["name"], args.get("parent_id"), event["pid"]
                )

        def find(prefix):
            matches = [
                (sid, *info) for sid, info in spans.items()
                if info[0].startswith(prefix)
            ]
            assert matches, (
                f"no {prefix!r} span in trace"
                f" {sorted(i[0] for i in spans.values())}"
            )
            return matches

        # every tier of the lifecycle is present in the one trace
        (http_id, _, http_parent, _), = find("http POST /jobs")
        (job_sid, _, job_parent, _), = find(f"job {job_id}")
        (sweep_id, _, sweep_parent, _), = find("sweep")
        lease = find("lease ")
        cells = find("cell ")
        runs = find("run ")

        # ... with parent links across every boundary
        assert http_parent == client_ctx.span_id
        assert job_parent == http_id
        assert sweep_parent == job_sid
        assert {entry[2] for entry in lease} == {sweep_id}
        lease_ids = {entry[0] for entry in lease}
        assert {entry[2] for entry in cells} <= lease_ids
        cell_ids = {entry[0] for entry in cells}
        assert all(entry[2] in cell_ids for entry in runs)

        # ... and across at least two processes (service + dist worker)
        pids = {info[2] for info in spans.values()}
        assert len(pids) >= 2
        worker_pids = {entry[3] for entry in cells}
        assert os.getpid() not in worker_pids

    def test_job_trace_ids_deterministic_for_fixed_traceparent(
        self, tmp_path, clean_obs
    ):
        # Same traceparent, different job ids: the request/job spans
        # derive from the client context and the job id, so the trace id
        # is pinned by the client while span ids stay distinct per job.
        from repro.obs.context import TraceContext

        clean_obs.configure(trace_out=str(tmp_path / "trace.json"))
        client_ctx = TraceContext.root("client|fixed")
        with ServiceFixture(tmp_path) as fx:
            records = [
                fx.request(
                    "POST", "/jobs", spec_dict(**TINY),
                    {"traceparent": client_ctx.to_traceparent()},
                )[2]
                for _ in range(2)
            ]
            for record in records:
                fx.wait_state(record["job_id"], ("done",))
        clean_obs.finalize()
        first, second = (r["trace"] for r in records)
        assert first["trace_id"] == second["trace_id"] == client_ctx.trace_id
        assert first["span_id"] != second["span_id"]
        assert first["parent_id"] == second["parent_id"]


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------

class TestCliServe:
    def test_serve_parser_defaults(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["serve", "--data-dir", "/tmp/x", "--port", "0"]
        )
        assert args.func.__name__ == "_cmd_serve"
        assert args.max_running == 2
        assert args.max_queued == 16
        assert args.request_timeout_s == 5.0

    def test_keyboard_interrupt_exits_130(self, monkeypatch):
        from repro import cli

        def boom(args):
            raise KeyboardInterrupt

        # build_parser() binds cli._cmd_analyze at call time, and main()
        # builds its own parser, so patching the module attribute is enough.
        monkeypatch.setattr(cli, "_cmd_analyze", boom)
        assert cli.main(["analyze"]) == 130

    def test_sweep_interrupted_still_exits_75(self, monkeypatch):
        from repro import cli
        from repro.errors import SweepInterrupted

        def drained(args):
            raise SweepInterrupted("drained", signum=15)

        monkeypatch.setattr(cli, "_cmd_analyze", drained)
        assert cli.main(["analyze"]) == 75
