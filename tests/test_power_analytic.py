"""Cross-validation: closed-form circuit solutions vs the Heun integrator."""

import numpy as np
import pytest

from repro.config import PowerSupplyConfig, TABLE1_SUPPLY
from repro.errors import CircuitError
from repro.power import PowerSupply, RLCAnalysis, waveforms
from repro.power.analytic import (
    ring_amplitude_after,
    sine_steady_state_amplitude,
    step_response,
    step_response_peak,
    sustained_square_violation_amplitude,
)
from repro.power.calibration import resonant_current_variation_threshold


class TestStepResponse:
    def test_matches_heun_simulation(self):
        delta = 40.0
        n_cycles = 400
        wave = waveforms.step(n_cycles, before=0.0, after=delta, at_cycle=0)
        simulated = PowerSupply(TABLE1_SUPPLY).run(wave)
        t = (np.arange(n_cycles) + 1) * TABLE1_SUPPLY.cycle_seconds
        exact = step_response(TABLE1_SUPPLY, delta, t)
        # Heun at one step per cycle tracks the exact solution closely.
        assert np.max(np.abs(simulated - exact)) < 0.02 * np.max(np.abs(exact))

    def test_peak_scales_linearly(self):
        peak_20 = step_response_peak(TABLE1_SUPPLY, 20.0)
        peak_40 = step_response_peak(TABLE1_SUPPLY, 40.0)
        assert peak_40 == pytest.approx(2.0 * peak_20, rel=1e-6)

    def test_peak_predicts_isolated_step_safety(self):
        """Steps below the margin-derived size never violate, as Section 2's
        'isolated variations do not build up' observation requires."""
        margin = TABLE1_SUPPLY.noise_margin_volts
        peak_per_amp = step_response_peak(TABLE1_SUPPLY, 1.0)
        safe_step = 0.9 * margin / peak_per_amp
        wave = waveforms.step(600, before=0.0, after=safe_step, at_cycle=10)
        supply = PowerSupply(TABLE1_SUPPLY)
        supply.run(wave)
        assert supply.violation_cycles == 0

    def test_overdamped_rejected(self):
        config = PowerSupplyConfig(
            resistance_ohms=1.0, inductance_henries=1e-12,
            capacitance_farads=1e-6,
        )
        with pytest.raises(CircuitError):
            step_response(config, 1.0, np.array([0.0]))


class TestSineSteadyState:
    @pytest.mark.parametrize("period_cycles", [50, 100, 200])
    def test_matches_heun_simulation(self, period_cycles):
        amplitude_pp = 20.0
        frequency = TABLE1_SUPPLY.clock_hz / period_cycles
        exact = sine_steady_state_amplitude(TABLE1_SUPPLY, frequency, amplitude_pp)
        wave = waveforms.sine_wave(40 * period_cycles, period_cycles,
                                   amplitude_pp, mean=0.0)
        supply = PowerSupply(TABLE1_SUPPLY)
        voltages = supply.run(wave)
        settled = voltages[len(voltages) // 2 :]
        assert np.max(np.abs(settled)) == pytest.approx(exact, rel=0.05)

    def test_dc_reports_nothing(self):
        amplitude = sine_steady_state_amplitude(TABLE1_SUPPLY, 1e3, 10.0)
        assert amplitude < 1e-5

    def test_resonance_dominates(self):
        analysis = RLCAnalysis(TABLE1_SUPPLY)
        f0 = analysis.resonant_frequency_hz
        at_resonance = sine_steady_state_amplitude(TABLE1_SUPPLY, f0, 10.0)
        off_resonance = sine_steady_state_amplitude(TABLE1_SUPPLY, f0 / 5, 10.0)
        assert at_resonance > 4 * off_resonance

    def test_rejects_bad_frequency(self):
        with pytest.raises(CircuitError):
            sine_steady_state_amplitude(TABLE1_SUPPLY, 0.0, 1.0)


class TestThresholdEstimate:
    def test_analytic_threshold_tracks_calibration(self):
        """The fundamental-only analysis slightly underestimates the
        simulated square-wave threshold (harmonics are absorbed)."""
        analytic = sustained_square_violation_amplitude(TABLE1_SUPPLY)
        simulated = resonant_current_variation_threshold(TABLE1_SUPPLY)
        assert analytic == pytest.approx(simulated, rel=0.15)
        assert analytic <= simulated + 1.0


class TestRingDecay:
    def test_decay_matches_dissipation_per_period(self):
        analysis = RLCAnalysis(TABLE1_SUPPLY)
        period = analysis.resonant_period_cycles
        remaining = ring_amplitude_after(TABLE1_SUPPLY, 1.0, period)
        assert remaining == pytest.approx(
            analysis.amplitude_decay_per_period, rel=1e-2
        )

    def test_zero_cycles_is_identity(self):
        assert ring_amplitude_after(TABLE1_SUPPLY, 0.042, 0) == pytest.approx(0.042)
