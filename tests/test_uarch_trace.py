"""Tests for synthetic trace generation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TraceError
from repro.uarch import MemLevel, OpClass, WorkloadProfile, generate_trace
from repro.uarch.trace import MAX_DEP_DISTANCE


def make_profile(**kwargs):
    defaults = dict(name="test")
    defaults.update(kwargs)
    return WorkloadProfile(**defaults)


class TestProfileValidation:
    def test_default_profile_is_valid(self):
        make_profile()

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            make_profile(frac_load=1.5)

    def test_rejects_no_room_for_compute(self):
        with pytest.raises(ConfigurationError):
            make_profile(frac_load=0.5, frac_store=0.3, frac_branch=0.2)

    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigurationError):
            make_profile(l1_miss_rate=-0.1)

    def test_rejects_tiny_dep_distance(self):
        with pytest.raises(ConfigurationError):
            make_profile(mean_dep_distance=0.5)

    def test_rejects_unknown_osc_kind(self):
        with pytest.raises(ConfigurationError):
            make_profile(osc_kind="sawtooth")

    def test_rejects_period_inside_low_segment(self):
        with pytest.raises(ConfigurationError):
            make_profile(osc_kind="serial", osc_period_instrs=20, osc_low_instrs=30)

    def test_rejects_episodes_without_gap(self):
        with pytest.raises(ConfigurationError):
            make_profile(
                osc_kind="serial",
                osc_period_instrs=100,
                osc_episode_periods=3,
                osc_gap_instrs=0,
            )

    def test_with_seed_returns_new_profile(self):
        profile = make_profile(seed=1)
        other = profile.with_seed(2)
        assert other.seed == 2
        assert profile.seed == 1


class TestGeneration:
    def test_deterministic_for_same_seed(self):
        profile = make_profile(seed=7)
        a = generate_trace(profile, 5000)
        b = generate_trace(profile, 5000)
        assert np.array_equal(a.op_class, b.op_class)
        assert np.array_equal(a.dep1, b.dep1)

    def test_different_seed_differs(self):
        profile = make_profile(seed=7)
        a = generate_trace(profile, 5000)
        b = generate_trace(profile, 5000, seed=8)
        assert not np.array_equal(a.op_class, b.op_class)

    def test_rejects_empty_trace(self):
        with pytest.raises(TraceError):
            generate_trace(make_profile(), 0)

    def test_mix_close_to_profile(self):
        profile = make_profile(frac_load=0.3, frac_store=0.1, frac_branch=0.1)
        trace = generate_trace(profile, 50_000)
        counts = trace.mix_counts()
        assert counts[OpClass.LOAD] / len(trace) == pytest.approx(0.3, abs=0.02)
        assert counts[OpClass.STORE] / len(trace) == pytest.approx(0.1, abs=0.02)
        assert counts[OpClass.BRANCH] / len(trace) == pytest.approx(0.1, abs=0.02)
        assert trace.memory_fraction() == pytest.approx(0.4, abs=0.03)

    def test_fp_fraction(self):
        profile = make_profile(frac_fp=1.0)
        trace = generate_trace(profile, 20_000)
        counts = trace.mix_counts()
        assert counts.get(OpClass.INT_ALU, 0) == 0
        assert counts.get(OpClass.INT_MUL, 0) == 0
        assert counts.get(OpClass.FP_ALU, 0) > 0

    def test_dependencies_point_backwards(self):
        trace = generate_trace(make_profile(), 10_000)
        indices = np.arange(len(trace))
        assert np.all(trace.dep1 <= indices)
        assert np.all(trace.dep2 <= indices)
        assert np.all(trace.dep1 <= MAX_DEP_DISTANCE)
        assert np.all(trace.dep1 >= 0)

    def test_mem_levels_only_on_memory_ops(self):
        trace = generate_trace(make_profile(), 10_000)
        is_mem = (trace.op_class == int(OpClass.LOAD)) | (
            trace.op_class == int(OpClass.STORE)
        )
        assert np.all(trace.mem_level[~is_mem] == int(MemLevel.NONE))
        assert np.all(trace.mem_level[is_mem] >= int(MemLevel.L1))

    def test_miss_rates_respected(self):
        profile = make_profile(l1_miss_rate=0.2, l2_miss_rate=0.5)
        trace = generate_trace(profile, 100_000)
        mem = trace.mem_level[trace.mem_level >= 0]
        miss_fraction = np.mean(mem >= int(MemLevel.L2))
        assert miss_fraction == pytest.approx(0.2, abs=0.03)
        to_memory = np.mean(mem == int(MemLevel.MEMORY))
        assert to_memory == pytest.approx(0.1, abs=0.02)

    def test_mispredicts_only_on_branches(self):
        trace = generate_trace(make_profile(branch_mispredict_rate=0.5), 20_000)
        not_branch = trace.op_class != int(OpClass.BRANCH)
        assert not np.any(trace.mispredict[not_branch])
        branches = trace.op_class == int(OpClass.BRANCH)
        rate = np.mean(trace.mispredict[branches])
        assert rate == pytest.approx(0.5, abs=0.05)

    def test_column_length_mismatch_raises(self):
        trace = generate_trace(make_profile(), 100)
        from repro.uarch import SyntheticTrace

        with pytest.raises(TraceError):
            SyntheticTrace(
                profile=trace.profile,
                op_class=trace.op_class,
                dep1=trace.dep1[:50],
                dep2=trace.dep2,
                mem_level=trace.mem_level,
                mispredict=trace.mispredict,
            )


class TestOscillationOverlay:
    def test_serial_overlay_creates_chains(self):
        profile = make_profile(
            osc_kind="serial", osc_period_instrs=200, osc_low_instrs=40
        )
        trace = generate_trace(profile, 2000)
        segment = slice(200, 240)
        assert np.all(trace.op_class[segment] == int(OpClass.INT_ALU))
        assert np.all(trace.dep1[segment] == 1)
        assert np.all(trace.dep2[segment] == 0)

    def test_mem_overlay_inserts_miss(self):
        profile = make_profile(
            osc_kind="mem", osc_period_instrs=200, osc_low_instrs=20
        )
        trace = generate_trace(profile, 2000)
        assert trace.op_class[200] == int(OpClass.LOAD)
        assert trace.mem_level[200] == int(MemLevel.MEMORY)
        # Dependants point back at the missing load.
        for offset in range(1, 21):
            assert trace.dep1[200 + offset] == offset

    def test_l2_overlay_uses_l2_level(self):
        profile = make_profile(
            osc_kind="l2", osc_period_instrs=200, osc_low_instrs=20
        )
        trace = generate_trace(profile, 2000)
        assert trace.mem_level[200] == int(MemLevel.L2)

    def test_boost_rewrites_high_segment(self):
        profile = make_profile(
            osc_kind="serial",
            osc_period_instrs=200,
            osc_low_instrs=40,
            osc_boost_ilp=True,
        )
        trace = generate_trace(profile, 2000)
        high = slice(240, 400)
        assert np.all(trace.dep1[high] >= 80)
        assert np.all(trace.dep2[high] == 0)
        assert np.all(trace.mem_level[high] <= int(MemLevel.L1))

    def test_episodes_leave_gaps(self):
        profile = make_profile(
            osc_kind="serial",
            osc_period_instrs=200,
            osc_low_instrs=40,
            osc_episode_periods=2,
            osc_gap_instrs=5000,
        )
        trace = generate_trace(profile, 20_000)
        # Inside the gap there must be no serial chains (no long runs of
        # dep1 == 1 INT_ALU instructions).
        gap = slice(800, 5000)
        chain = (trace.dep1[gap] == 1) & (
            trace.op_class[gap] == int(OpClass.INT_ALU)
        )
        # A few coincidental dep1==1 draws are fine; a 40-long run is not.
        longest = 0
        current = 0
        for flag in chain:
            current = current + 1 if flag else 0
            longest = max(longest, current)
        assert longest < 20

    def test_jitter_moves_boundaries(self):
        fixed = make_profile(
            osc_kind="serial", osc_period_instrs=200, osc_low_instrs=40
        )
        jittered = make_profile(
            osc_kind="serial",
            osc_period_instrs=200,
            osc_low_instrs=40,
            osc_jitter_instrs=30,
        )
        a = generate_trace(fixed, 5000)
        b = generate_trace(jittered, 5000)
        assert not np.array_equal(a.dep1, b.dep1)


class TestSerialization:
    def test_round_trip(self, tmp_path):
        from repro.uarch import load_trace, save_trace

        profile = make_profile(
            osc_kind="serial", osc_period_instrs=200, osc_low_instrs=30,
            icache_miss_rate=0.01, seed=9,
        )
        trace = generate_trace(profile, 5_000)
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.op_class, trace.op_class)
        assert np.array_equal(loaded.dep1, trace.dep1)
        assert np.array_equal(loaded.mem_level, trace.mem_level)
        assert np.array_equal(loaded.icache_miss, trace.icache_miss)
        assert loaded.profile == trace.profile

    def test_loaded_trace_runs_identically(self, tmp_path):
        from repro.config import ProcessorConfig
        from repro.uarch import Pipeline, load_trace, save_trace

        trace = generate_trace(make_profile(seed=4), 20_000)
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        loaded = load_trace(path)
        a = Pipeline(trace, ProcessorConfig())
        b = Pipeline(loaded, ProcessorConfig())
        for _ in range(1_000):
            sa = a.step()
            sb = b.step()
            assert sa.current_amps == sb.current_amps
        assert a.total_committed == b.total_committed

    def test_rejects_garbage_file(self, tmp_path):
        from repro.uarch import load_trace

        path = tmp_path / "junk.npz"
        np.savez_compressed(str(path), nothing=np.zeros(3))
        with pytest.raises(TraceError):
            load_trace(str(path))
