"""Tests for the content-addressed trace store (repro.trace.store).

Two layers:

* **Unit**: key digests, capture validation (the replayability proof),
  durable save/load round trips, the in-memory payload cache, overlay
  tokens.
* **Corruption**: every way an on-disk entry can rot -- truncation, bit
  flips, zero-byte files, wrong-digest entries, version skew -- must
  degrade to a guard miss (full simulation, incident recorded, file
  quarantined), never a crash and never silent reuse of bad data.
"""

import dataclasses
import json
import os

import pytest

from repro.errors import TraceStoreError
from repro.faults.chaos import flip_bit, truncate_file
from repro.oracles import golden
from repro.sim import BenchmarkRunner, ResilienceConfig, SweepConfig
from repro.trace import (
    STORE_VERSION,
    TraceCapture,
    TraceKey,
    TraceStore,
    canonical_digest,
    overlay_token,
    stream_digest,
)

SMALL = SweepConfig(n_cycles=1200, warmup_cycles=150)


def make_key(**overrides) -> TraceKey:
    fields = dict(
        benchmark="unit",
        workload={"name": "unit", "frac_load": 0.25},
        seed=3,
        n_instructions=1000,
        processor={"issue_width": 8},
        n_cycles=4,
        warmup_cycles=2,
        schedule="null",
        overlay="none",
    )
    fields.update(overrides)
    return TraceKey(**fields)


def make_capture(key=None, currents=(1.5, 2.25, 3.0, 1.0, 0.5, 2.0),
                 vdd=1.2, cycle_seconds=1e-10) -> TraceCapture:
    """A completed capture whose snapshots match the recorded currents."""
    key = key or make_key()
    capture = TraceCapture(key)
    capture.currents = list(currents)
    energy = 0.0
    boundary_energy = None
    for i, amps in enumerate(capture.currents):
        if i == key.warmup_cycles:
            boundary_energy = energy
        energy += amps * vdd * cycle_seconds
    boundary = {"energy": boundary_energy, "phantom": 0.0, "instructions": 7}
    end = {"energy": energy, "phantom": 0.0, "instructions": 19}
    assert capture.finish(boundary, end, vdd, cycle_seconds)
    return capture


# ----------------------------------------------------------------------
# Keys and digests
# ----------------------------------------------------------------------

class TestKeysAndDigests:
    def test_digest_is_stable_and_field_sensitive(self):
        assert make_key().digest() == make_key().digest()
        assert make_key().digest() != make_key(seed=4).digest()
        assert make_key().digest() != make_key(n_cycles=5).digest()
        assert make_key().digest() != make_key(schedule="declared:x").digest()
        assert make_key().digest() != make_key(version=STORE_VERSION + 1).digest()

    def test_canonical_digest_is_float_exact(self):
        # 0.1 + 0.2 != 0.3 in binary: the hex canonicalization must see
        # the difference repr-rounding could mask.
        assert canonical_digest({"x": 0.1 + 0.2}) != canonical_digest({"x": 0.3})
        assert canonical_digest({"a": 1, "b": 2.0}) == canonical_digest(
            {"b": 2.0, "a": 1}
        )

    def test_stream_digest_matches_golden_fingerprint_algorithm(self):
        # store.py promises its digest equals the golden oracle's; the
        # committed goldens' replay_trace_sha256 depends on it.
        values = [0.0, 1.5, -2.25, 3.141592653589793, 1e-30]
        assert stream_digest(values) == golden.stream_digest(values, kind="float")

    def test_overlay_token_cases(self):
        assert overlay_token(None) == "none"
        token = overlay_token(("picklable", 1.5))
        assert token.startswith("pickle-sha256:")
        assert token == overlay_token(("picklable", 1.5))
        assert token != overlay_token(("picklable", 2.5))
        assert overlay_token(lambda s, b: s) is None  # unpicklable closure


# ----------------------------------------------------------------------
# Capture validation (the replayability proof)
# ----------------------------------------------------------------------

class TestCaptureValidation:
    def test_valid_capture_completes(self):
        capture = make_capture()
        assert capture.completed
        assert capture.instructions_warmup == 7
        assert capture.instructions_total == 19

    def test_wrong_length_rejected(self):
        capture = TraceCapture(make_key())
        capture.currents = [1.0] * 5  # expected 6
        assert not capture.finish(
            {"energy": 0.0, "phantom": 0.0, "instructions": 0},
            {"energy": 0.0, "phantom": 0.0, "instructions": 0},
            1.0, 1e-10,
        )
        assert not capture.completed

    def test_phantom_energy_rejected(self):
        # Phantom current is injected by controller floors and is not
        # derivable from the trace: such runs must never be recorded.
        capture = TraceCapture(make_key())
        capture.currents = [1.0] * 6
        assert not capture.finish(
            {"energy": 2e-10, "phantom": 0.0, "instructions": 0},
            {"energy": 6e-10, "phantom": 1e-12, "instructions": 0},
            1.0, 1e-10,
        )

    def test_energy_mismatch_rejected(self):
        capture = TraceCapture(make_key())
        capture.currents = [1.0] * 6
        assert not capture.finish(
            {"energy": 2e-10, "phantom": 0.0, "instructions": 0},
            {"energy": 7e-10, "phantom": 0.0, "instructions": 0},
            1.0, 1e-10,
        )

    def test_store_refuses_unfinished_capture(self, tmp_path):
        store = TraceStore(str(tmp_path))
        with pytest.raises(TraceStoreError):
            store.save(TraceCapture(make_key()))


# ----------------------------------------------------------------------
# Save / load round trips
# ----------------------------------------------------------------------

class TestRoundTrip:
    def test_save_then_load_from_fresh_store(self, tmp_path):
        capture = make_capture()
        writer = TraceStore(str(tmp_path))
        assert writer.save(capture)
        assert writer.stats["records"] == 1
        reader = TraceStore(str(tmp_path))
        assert reader.contains(capture.key)
        payload = reader.load(capture.key, label="unit")
        assert payload is not None
        assert payload.currents == capture.currents
        assert payload.config_digest == capture.key.digest()
        assert payload.content_sha256 == stream_digest(capture.currents)
        assert payload.instructions_warmup == 7
        assert payload.instructions_total == 19
        assert reader.stats == {
            "hits": 1, "misses": 0, "guard_failures": 0,
            "fallbacks": 0, "records": 0,
        }

    def test_miss_counts_and_returns_none(self, tmp_path):
        store = TraceStore(str(tmp_path))
        assert store.load(make_key()) is None
        assert store.stats["misses"] == 1
        assert not store.incidents

    def test_payload_cache_serves_repeat_loads(self, tmp_path):
        store = TraceStore(str(tmp_path))
        capture = make_capture()
        store.save(capture)
        first = store.load(capture.key)
        # Delete the files: a second load must come from the cache.
        for directory in (store.index_dir, store.objects_dir):
            for name in os.listdir(directory):
                os.unlink(os.path.join(directory, name))
        second = store.load(capture.key)
        assert second is first
        assert store.stats["hits"] == 2

    def test_zero_cache_capacity_reloads_from_disk(self, tmp_path):
        store = TraceStore(str(tmp_path), max_cached_payloads=0)
        capture = make_capture()
        store.save(capture)
        assert store.load(capture.key) is not store.load(capture.key)

    def test_object_dedup_across_keys(self, tmp_path):
        # Same trace under two keys: one object, two index entries.
        store = TraceStore(str(tmp_path))
        store.save(make_capture())
        store.save(make_capture(key=make_key(seed=99)))
        assert len(os.listdir(store.objects_dir)) == 1
        assert len(os.listdir(store.index_dir)) == 2


# ----------------------------------------------------------------------
# Corruption: every rot mode degrades to guard-miss + incident
# ----------------------------------------------------------------------

def _entry_paths(store: TraceStore):
    index_path = os.path.join(store.index_dir, os.listdir(store.index_dir)[0])
    object_path = os.path.join(
        store.objects_dir, os.listdir(store.objects_dir)[0]
    )
    return index_path, object_path


def _rewrite_json(path, mutate):
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    mutate(payload)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)


class TestCorruptionGuards:
    def _seeded_store(self, tmp_path):
        store = TraceStore(str(tmp_path))
        capture = make_capture()
        store.save(capture)
        return capture.key, _entry_paths(store)

    def _assert_guarded(self, tmp_path, key, reason_fragment):
        store = TraceStore(str(tmp_path))
        assert store.load(key, label="unit") is None
        assert store.stats["guard_failures"] == 1
        assert store.stats["fallbacks"] == 1
        (incident,) = store.drain_incidents()
        assert incident["error_type"] == "TraceStoreCorrupt"
        assert incident["benchmark"] == "unit"
        assert reason_fragment in incident["reason"]
        assert not store.drain_incidents()
        return incident

    def test_truncated_object(self, tmp_path):
        key, (_, object_path) = self._seeded_store(tmp_path)
        truncate_file(object_path, 0.5)
        self._assert_guarded(tmp_path, key, "unreadable object")
        assert os.path.exists(f"{object_path}.corrupt-0")

    def test_truncated_sample_list(self, tmp_path):
        key, (_, object_path) = self._seeded_store(tmp_path)
        _rewrite_json(object_path, lambda o: o["currents_hex"].pop())
        self._assert_guarded(tmp_path, key, "trace truncated")

    def test_bit_flipped_object(self, tmp_path):
        key, (_, object_path) = self._seeded_store(tmp_path)
        flip_bit(object_path)
        incident = self._assert_guarded(tmp_path, key, "")
        # Depending on which byte the flip lands in, the guard trips as a
        # JSON parse error, a hash mismatch, or malformed metadata -- all
        # acceptable; silent acceptance is not.
        assert incident["kind"] == "object"

    def test_flipped_sample_value_is_a_hash_mismatch(self, tmp_path):
        key, (_, object_path) = self._seeded_store(tmp_path)
        _rewrite_json(
            object_path,
            lambda o: o["currents_hex"].__setitem__(3, float(99.0).hex()),
        )
        self._assert_guarded(tmp_path, key, "content hash mismatch")

    def test_zero_byte_index(self, tmp_path):
        key, (index_path, _) = self._seeded_store(tmp_path)
        open(index_path, "w").close()
        self._assert_guarded(tmp_path, key, "unreadable index")
        assert os.path.exists(f"{index_path}.corrupt-0")

    def test_zero_byte_object(self, tmp_path):
        key, (_, object_path) = self._seeded_store(tmp_path)
        open(object_path, "w").close()
        self._assert_guarded(tmp_path, key, "unreadable object")

    def test_missing_object(self, tmp_path):
        key, (_, object_path) = self._seeded_store(tmp_path)
        os.unlink(object_path)
        self._assert_guarded(tmp_path, key, "content object missing")

    def test_wrong_digest_index(self, tmp_path):
        key, (index_path, _) = self._seeded_store(tmp_path)
        _rewrite_json(
            index_path,
            lambda i: i.__setitem__("config_digest", "0" * 64),
        )
        self._assert_guarded(tmp_path, key, "config digest mismatch")

    def test_wrong_digest_object(self, tmp_path):
        key, (_, object_path) = self._seeded_store(tmp_path)
        _rewrite_json(
            object_path,
            lambda o: o.__setitem__("config_digest", "f" * 64),
        )
        self._assert_guarded(tmp_path, key, "different front end")

    def test_version_skew_index(self, tmp_path):
        key, (index_path, _) = self._seeded_store(tmp_path)
        _rewrite_json(
            index_path,
            lambda i: i.__setitem__("version", STORE_VERSION + 1),
        )
        self._assert_guarded(tmp_path, key, "version")

    def test_malformed_sample_encoding(self, tmp_path):
        key, (_, object_path) = self._seeded_store(tmp_path)
        # Poison one sample and re-address the object so every earlier
        # guard passes and only the float parse trips.
        with open(object_path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        payload["currents_hex"][0] = "not-a-float"
        import hashlib
        sha = hashlib.sha256(
            "\n".join(payload["currents_hex"]).encode("ascii")
        ).hexdigest()
        store = TraceStore(str(tmp_path))
        index_path, _ = _entry_paths(store)
        new_object = os.path.join(store.objects_dir, f"{sha}.json")
        with open(new_object, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        _rewrite_json(index_path, lambda i: i.__setitem__("content_sha256", sha))
        self._assert_guarded(tmp_path, key, "malformed sample")


# ----------------------------------------------------------------------
# Corruption at the runner level: fallback is invisible in the results
# ----------------------------------------------------------------------

def null_factory(supply, processor):
    from repro.core.controller import NullController

    return NullController()


class TestRunnerFallback:
    def _fingerprint(self, summary):
        return json.dumps(dataclasses.asdict(summary), sort_keys=True)

    def test_corrupt_entry_falls_back_with_incident(self, tmp_path):
        store_dir = str(tmp_path / "store")
        plain = BenchmarkRunner(SMALL).run_base("gzip")
        recorded = BenchmarkRunner(SMALL, trace_store=store_dir).run_base("gzip")
        assert recorded == plain
        store = TraceStore(store_dir)
        index_path, object_path = _entry_paths(store)
        flip_bit(object_path)
        corrupted_runner = BenchmarkRunner(SMALL, trace_store=store_dir)
        corrupted = corrupted_runner.run_base("gzip")
        assert corrupted == plain
        fallback_store = corrupted_runner._trace_stores[store_dir]
        assert fallback_store.stats["guard_failures"] == 1
        assert fallback_store.stats["fallbacks"] == 1
        # The re-simulation re-records the entry, healing the store.
        assert fallback_store.stats["records"] == 1
        healed = BenchmarkRunner(SMALL, trace_store=store_dir).run_base("gzip")
        assert healed == plain

    def test_sweep_surfaces_corruption_as_incident(self, tmp_path):
        store_dir = str(tmp_path / "store")
        resilience = ResilienceConfig(trace_store_path=store_dir)
        plain = BenchmarkRunner(SMALL).sweep(
            null_factory, benchmarks=("gzip",)
        )
        cold = BenchmarkRunner(SMALL).sweep(
            null_factory, benchmarks=("gzip",), resilience=resilience
        )
        store = TraceStore(store_dir)
        _, object_path = _entry_paths(store)
        truncate_file(object_path, 0.3)
        warm = BenchmarkRunner(SMALL).sweep(
            null_factory, benchmarks=("gzip",), resilience=resilience
        )
        assert self._fingerprint(warm) == self._fingerprint(cold)
        assert self._fingerprint(warm) == self._fingerprint(plain)
        assert warm.timings["trace_guard_failures"] >= 1.0
        trace_incidents = [
            incident for incident in warm.incidents
            if incident.error_type == "TraceStoreCorrupt"
        ]
        assert trace_incidents
        assert trace_incidents[0].benchmark == "gzip"
        assert "fell back to full simulation" in trace_incidents[0].message
        # Quarantined evidence stays on disk.
        quarantined = [
            name for name in os.listdir(store.objects_dir)
            if ".corrupt-" in name
        ]
        assert quarantined


# ----------------------------------------------------------------------
# Multiprocess write races
# ----------------------------------------------------------------------

def _race_recorder(store_dir: str, barrier) -> None:
    """Child process: record the shared key as soon as the barrier drops.

    Exit code encodes the save() verdict so the parent can assert both
    writers believed they stored the entry (idempotent success, not
    one-winner-one-error).
    """
    store = TraceStore(store_dir)
    capture = make_capture()
    barrier.wait(timeout=30)
    os._exit(0 if store.save(capture) else 1)


class TestMultiprocessWriteRace:
    """PR 8 claims racing same-key writers are safe by construction
    (pid-suffixed temp files + atomic replace + content addressing).
    Pin that with real concurrent processes, not a thought experiment."""

    def test_concurrent_recorders_one_valid_object(self, tmp_path):
        import multiprocessing

        store_dir = str(tmp_path / "race")
        barrier = multiprocessing.Barrier(2)
        writers = [
            multiprocessing.Process(
                target=_race_recorder, args=(store_dir, barrier)
            )
            for _ in range(2)
        ]
        for proc in writers:
            proc.start()
        for proc in writers:
            proc.join(timeout=30)
        assert all(proc.exitcode == 0 for proc in writers), (
            "both racing writers must report an idempotent successful save"
        )

        store = TraceStore(store_dir)
        key = make_key()
        # Exactly one object and one index entry -- the second writer
        # replaced byte-identical content, it did not duplicate it.
        objects = sorted(os.listdir(store.objects_dir))
        index_entries = sorted(os.listdir(store.index_dir))
        assert len(objects) == 1
        assert len(index_entries) == 1
        assert index_entries == [f"{key.digest()}.json"]
        # No quarantine, no leaked temp files, anywhere in the store.
        for dirpath, _, filenames in os.walk(store_dir):
            for name in filenames:
                assert ".corrupt-" not in name, (dirpath, name)
                assert ".tmp-" not in name, (dirpath, name)
        # The surviving entry passes the full load guard and replays the
        # recorded trace exactly.
        payload = store.load(key)
        assert payload is not None
        assert payload.currents == list(make_capture().currents)
        assert store.stats["guard_failures"] == 0
        assert store.drain_incidents() == []

    def test_racing_writer_idempotent_with_existing_entry(self, tmp_path):
        """A writer landing after the entry already exists (the common
        steady-state race) must leave the stored bytes untouched."""
        store_dir = str(tmp_path / "race2")
        first = TraceStore(store_dir)
        assert first.save(make_capture())
        key = make_key()
        index_path = first._index_path(key.digest())
        with open(index_path, "rb") as fh:
            before = fh.read()

        second = TraceStore(store_dir)
        assert second.save(make_capture())
        with open(index_path, "rb") as fh:
            after = fh.read()
        assert before == after
        assert len(os.listdir(second.objects_dir)) == 1
