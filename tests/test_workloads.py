"""Envelope tests for the 26 SPEC2K workload profiles.

These pin the tuned behaviour: every profile must stay a valid
configuration, IPCs must stay in their fitted envelopes, and the
violating / non-violating split of Table 2 must emerge on the Table 1
supply.  Full-length classification runs live in the Table 2 benchmark;
here we spot-check representatives to keep the suite fast.
"""

import pytest

from repro.config import TABLE1_PROCESSOR, TABLE1_SUPPLY
from repro.errors import ConfigurationError
from repro.power import PowerSupply
from repro.uarch import (
    NON_VIOLATING_NAMES,
    PAPER_IPC,
    Processor,
    SPEC2K,
    VIOLATING_NAMES,
    profile_by_name,
)


def run_base(name, n_cycles, record_current=False):
    processor = Processor.from_profile(
        SPEC2K[name],
        n_instructions=max(20_000, int(n_cycles * 4.5)),
        config=TABLE1_PROCESSOR,
        supply_config=TABLE1_SUPPLY,
    )
    supply = PowerSupply(
        TABLE1_SUPPLY, initial_current=TABLE1_PROCESSOR.min_current_amps
    )
    currents = [] if record_current else None
    for _ in range(n_cycles):
        stats = processor.step()
        supply.step(stats.current_amps)
        if record_current:
            currents.append(stats.current_amps)
    return processor, supply, currents


class TestCatalogue:
    def test_has_all_26_benchmarks(self):
        assert len(SPEC2K) == 26
        assert set(SPEC2K) == set(PAPER_IPC)

    def test_split_matches_table2(self):
        assert len(VIOLATING_NAMES) == 12
        assert len(NON_VIOLATING_NAMES) == 14
        assert set(VIOLATING_NAMES) | set(NON_VIOLATING_NAMES) == set(SPEC2K)

    def test_lookup_by_name(self):
        assert profile_by_name("parser").name == "parser"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            profile_by_name("doom3")

    def test_all_profiles_validate(self):
        for profile in SPEC2K.values():
            assert profile.name

    def test_violating_profiles_oscillate_in_band_shape(self):
        """Violating profiles must carry episode structure (the mechanism)."""
        for name in VIOLATING_NAMES:
            profile = SPEC2K[name]
            assert profile.osc_kind != "none"
            assert profile.osc_boost_ilp


class TestEmergentBehaviour:
    @pytest.mark.parametrize("name", ["parser", "swim", "mcf", "fma3d", "gzip"])
    def test_ipc_tracks_paper_ordering(self, name):
        processor, _, _ = run_base(name, 15_000)
        target = PAPER_IPC[name]
        assert processor.ipc == pytest.approx(target, rel=0.45), (
            f"{name}: IPC {processor.ipc:.2f} vs paper {target:.2f}"
        )

    def test_mcf_slower_than_fma3d(self):
        mcf, _, _ = run_base("mcf", 8000)
        fma3d, _, _ = run_base("fma3d", 8000)
        assert mcf.ipc < 0.3 * fma3d.ipc

    @pytest.mark.parametrize("name", ["swim", "lucas", "bzip"])
    def test_strong_violators_violate(self, name):
        _, supply, _ = run_base(name, 40_000)
        assert supply.violation_cycles > 0, f"{name} should violate"

    @pytest.mark.parametrize("name", ["fma3d", "gzip", "eon", "ammp", "perlbmk"])
    def test_non_violators_stay_clean(self, name):
        _, supply, _ = run_base(name, 40_000)
        assert supply.violation_fraction <= 1e-4, f"{name} should be clean"

    def test_current_range_is_realistic(self):
        _, _, currents = run_base("swim", 10_000, record_current=True)
        config = TABLE1_PROCESSOR
        assert min(currents) >= config.min_current_amps
        assert max(currents) <= config.max_current_amps * 1.05
        assert max(currents) > 0.7 * config.max_current_amps


class TestDiagnostics:
    def test_characterize_violating_profile(self):
        from repro.uarch import characterize

        character = characterize(SPEC2K["swim"], n_cycles=15_000)
        assert character.name == "swim"
        assert 1.0 < character.ipc < 4.0
        assert character.current_low_amps >= 35.0
        assert character.current_swing_amps > 20.0
        assert character.violation_fraction > 0

    def test_characterize_quiet_profile(self):
        from repro.uarch import characterize

        character = characterize(SPEC2K["eon"], n_cycles=10_000)
        assert character.violation_fraction == 0.0

    def test_dominant_period_of_pure_tone(self):
        import numpy as np
        from repro.uarch import dominant_period_cycles

        t = np.arange(4096)
        wave = 70 + 20 * np.sin(2 * np.pi * t / 100.0)
        assert dominant_period_cycles(wave) == pytest.approx(100, rel=0.05)

    def test_dominant_period_needs_samples(self):
        from repro.errors import SimulationError
        from repro.uarch import dominant_period_cycles

        with pytest.raises(SimulationError):
            dominant_period_cycles([1.0] * 4)
