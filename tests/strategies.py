"""Shared Hypothesis strategies for the differential and property suites.

Centralizes the domain knowledge the fuzz tests need:

* **Dyadic grid** -- detector inputs are generated as exact multiples of
  1/8 A.  Window sums of bounded dyadic rationals are exact in binary
  floating point, so the cumulative-sum detector and the brute-force
  reference must agree *bit for bit*; any divergence is a real bug, never
  float noise.  (The real hardware quantizes to whole amps, so the grid is
  a superset of physical inputs.)
* **Band configs** -- random detector bands (half-periods, threshold,
  repetition tolerance, chain slack) small enough that the O(band x
  period) reference stays fast.
* **Band traces** -- segmented current streams mixing in-band and
  out-of-band square and sine excitation, quiet stretches, steps and
  uniform noise, with optional NaN drops (the detector's hold-last-finite
  path).
* **Fault overlays** -- seeded :mod:`repro.faults` chains to mount on a
  trace before quantization, exercising detection under degraded inputs.
* **Supply configs / stimuli** -- underdamped RLC supplies (the paper's
  regime, Q >= 1) and current waveforms for the integrator-vs-convolution
  differential.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import strategies as st

from repro.config import PowerSupplyConfig
from repro.faults import (
    BurstNoiseFault,
    DelayJitterFault,
    DriftFault,
    DroppedSampleFault,
    SaturationFault,
    StuckAtFault,
)
from repro.power import RLCAnalysis
from repro.uarch import WorkloadProfile

__all__ = [
    "GRID_STEPS_PER_AMP",
    "quantize_to_grid",
    "grid_amps",
    "band_configs",
    "band_traces",
    "fault_overlays",
    "underdamped_supply_configs",
    "supply_stimuli",
    "workload_profiles",
]

#: Detector traces are exact multiples of this (1/8 A): dyadic, so sums
#: are exact and the optimized/reference comparison is bit-for-bit.
GRID_STEPS_PER_AMP = 8


def quantize_to_grid(values: np.ndarray) -> np.ndarray:
    """Snap a waveform onto the exact dyadic grid (NaNs pass through)."""
    values = np.asarray(values, dtype=float)
    with np.errstate(invalid="ignore"):
        snapped = np.round(values * GRID_STEPS_PER_AMP) / GRID_STEPS_PER_AMP
    return np.where(np.isnan(values), values, snapped)


def grid_amps(low: float, high: float) -> st.SearchStrategy:
    """Exact grid-aligned current values in ``[low, high]`` amps."""
    return st.integers(
        math.ceil(low * GRID_STEPS_PER_AMP),
        math.floor(high * GRID_STEPS_PER_AMP),
    ).map(lambda n: n / GRID_STEPS_PER_AMP)


# ----------------------------------------------------------------------
# Detector band configurations
# ----------------------------------------------------------------------
@st.composite
def band_configs(draw) -> dict:
    """Constructor kwargs valid for both detector implementations.

    Bands are kept narrow (half-periods <= ~40 cycles) so the brute-force
    reference, which re-sums every window each cycle, stays fast enough
    for hundreds of Hypothesis examples.
    """
    h_low = draw(st.integers(4, 28))
    width = draw(st.integers(0, 12))
    return {
        "half_periods": range(h_low, h_low + width + 1),
        "threshold_amps": draw(grid_amps(2.0, 40.0)),
        "max_repetition_tolerance": draw(st.integers(2, 6)),
        "chain_window_slack": draw(st.integers(0, 6)),
    }


# ----------------------------------------------------------------------
# Current traces
# ----------------------------------------------------------------------
def _segment(rng: np.random.Generator, kind: str, length: int,
             mean: float, amplitude: float, period: float) -> np.ndarray:
    cycles = np.arange(length, dtype=float)
    if kind == "constant":
        return np.full(length, mean)
    if kind == "square":
        phase = (cycles % period) / period
        return mean + np.where(phase < 0.5, 0.5, -0.5) * amplitude
    if kind == "sine":
        return mean + 0.5 * amplitude * np.sin(2.0 * math.pi * cycles / period)
    if kind == "step":
        wave = np.full(length, mean)
        wave[length // 2 :] = mean + amplitude
        return wave
    if kind == "noise":
        return mean + rng.uniform(-0.5 * amplitude, 0.5 * amplitude, length)
    raise ValueError(kind)


@st.composite
def band_traces(draw, config: dict, max_segments: int = 4,
                segment_cycles: "tuple[int, int]" = (30, 110),
                allow_nan: bool = True) -> np.ndarray:
    """A segmented, grid-exact current trace targeted at ``config``'s band.

    Segments independently choose in-band periods (which should excite
    detection when the amplitude clears the threshold), out-of-band
    periods above and below the band, quiet stretches, steps and noise.
    With ``allow_nan`` a few samples may be dropped to NaN to exercise the
    hold-last-finite path of both implementations identically.
    """
    half = sorted(set(int(h) for h in config["half_periods"]))
    h_lo, h_hi = half[0], half[-1]
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    pieces = []
    for _ in range(draw(st.integers(1, max_segments))):
        kind = draw(st.sampled_from(
            ["constant", "square", "sine", "step", "noise", "square", "sine"]
        ))
        placement = draw(st.sampled_from(["in", "below", "above"]))
        if placement == "in":
            period = 2.0 * draw(st.integers(h_lo, h_hi))
        elif placement == "below":  # shorter period = higher frequency
            period = float(draw(st.integers(2, max(2, h_lo // 2))))
        else:
            period = 2.0 * draw(st.integers(3 * h_hi, 4 * h_hi))
        length = draw(st.integers(*segment_cycles))
        mean = draw(grid_amps(10.0, 90.0))
        amplitude = draw(grid_amps(0.0, 70.0))
        pieces.append(_segment(rng, kind, length, mean, amplitude, period))
    trace = quantize_to_grid(np.concatenate(pieces))
    if allow_nan and draw(st.booleans()):
        for index in draw(
            st.lists(st.integers(0, len(trace) - 1), max_size=4, unique=True)
        ):
            trace[index] = math.nan
    return trace


# ----------------------------------------------------------------------
# Fault overlays
# ----------------------------------------------------------------------
@st.composite
def fault_overlays(draw, max_faults: int = 3) -> list:
    """An ordered chain of seeded sensor faults to mount on a trace."""
    builders = st.sampled_from(["stuck", "drop", "burst", "drift", "sat", "jitter"])
    faults = []
    for name in draw(st.lists(builders, max_size=max_faults)):
        seed = draw(st.integers(0, 2**31 - 1))
        if name == "stuck":
            faults.append(StuckAtFault(
                value_amps=draw(grid_amps(0.0, 90.0)),
                start_cycle=draw(st.integers(0, 200)),
                duration_cycles=draw(st.integers(1, 80)),
                seed=seed,
            ))
        elif name == "drop":
            faults.append(DroppedSampleFault(
                drop_probability=draw(st.floats(0.0, 0.4)), seed=seed
            ))
        elif name == "burst":
            faults.append(BurstNoiseFault(
                amplitude_pp_amps=draw(st.floats(0.0, 20.0)),
                burst_probability=draw(st.floats(0.0, 0.05)),
                burst_length_cycles=draw(st.integers(5, 60)),
                seed=seed,
            ))
        elif name == "drift":
            faults.append(DriftFault(
                drift_amps_per_kilocycle=draw(st.floats(-20.0, 20.0)),
                max_offset_amps=draw(st.floats(0.0, 30.0)),
                seed=seed,
            ))
        elif name == "sat":
            faults.append(SaturationFault(
                full_scale_amps=draw(grid_amps(40.0, 120.0)), seed=seed
            ))
        else:
            faults.append(DelayJitterFault(
                max_extra_delay_cycles=draw(st.integers(1, 6)),
                jitter_probability=draw(st.floats(0.0, 0.3)),
                seed=seed,
            ))
    return faults


# ----------------------------------------------------------------------
# Workload profiles
# ----------------------------------------------------------------------
@st.composite
def workload_profiles(draw, name: str = "fuzz") -> WorkloadProfile:
    """A valid random :class:`WorkloadProfile`.

    Covers quiet, steadily oscillating and episodic mixes, both branch
    models, and the full dependency/memory parameter ranges the 26 tuned
    profiles span -- the domain the record/replay differential must hold
    over.  Generation respects the profile validator's cross-field
    constraints (mix headroom, period > low segment, episodic gap).
    """
    osc_kind = draw(st.sampled_from(["none", "serial", "l2", "mem"]))
    if osc_kind == "none":
        osc_low = 24
        osc_period = 0
        osc_jitter = 0
        episodes = 0
        gap = 0
        boost = False
        boost_dep = 0
    else:
        osc_low = draw(st.integers(8, 60))
        osc_period = osc_low + draw(st.integers(8, 220))
        osc_jitter = draw(st.integers(0, 10))
        episodes = draw(st.sampled_from([0, 0, 2, 4]))
        gap = draw(st.integers(50, 400)) if episodes else 0
        boost = draw(st.booleans())
        boost_dep = draw(st.integers(0, 6)) if boost else 0
    return WorkloadProfile(
        name=name,
        frac_load=draw(st.floats(0.05, 0.35)),
        frac_store=draw(st.floats(0.0, 0.15)),
        frac_branch=draw(st.floats(0.02, 0.2)),
        frac_fp=draw(st.floats(0.0, 0.8)),
        frac_mul=draw(st.floats(0.0, 0.3)),
        mean_dep_distance=draw(st.floats(1.5, 14.0)),
        dep2_probability=draw(st.floats(0.0, 0.6)),
        l1_miss_rate=draw(st.floats(0.0, 0.12)),
        l2_miss_rate=draw(st.floats(0.0, 0.4)),
        icache_miss_rate=draw(st.floats(0.0, 0.02)),
        branch_mispredict_rate=draw(st.floats(0.0, 0.08)),
        branch_model=draw(st.sampled_from(["random", "gshare"])),
        osc_period_instrs=osc_period,
        osc_kind=osc_kind,
        osc_low_instrs=osc_low,
        osc_jitter_instrs=osc_jitter,
        osc_boost_ilp=boost,
        osc_boost_dep=boost_dep,
        osc_episode_periods=episodes,
        osc_gap_instrs=gap,
        seed=draw(st.integers(0, 2**31 - 1)),
    )


# ----------------------------------------------------------------------
# Power-supply configurations and stimuli
# ----------------------------------------------------------------------
def underdamped_supply_configs() -> st.SearchStrategy:
    """Physically plausible underdamped supplies with Q >= 1 (the paper's
    regime; below Q ~ 1 the half-power band loses meaning)."""
    return st.builds(
        PowerSupplyConfig,
        resistance_ohms=st.floats(1e-4, 1e-3),
        inductance_henries=st.floats(1e-12, 1e-11),
        capacitance_farads=st.floats(2e-7, 3e-6),
        vdd_volts=st.just(1.0),
        clock_hz=st.just(10e9),
    ).filter(lambda c: RLCAnalysis(c).quality_factor >= 1.0)


@st.composite
def supply_stimuli(draw, config: PowerSupplyConfig,
                   max_cycles: int = 600) -> np.ndarray:
    """A current waveform aimed at ``config``'s resonance.

    Mixes resonant and off-resonant square/sine drive, steps and quiet so
    the integrator-vs-convolution differential covers ringing build-up,
    forced response and free decay.  Plain floats -- the supply comparison
    is tolerance-based, not bit-exact.
    """
    period = RLCAnalysis(config).resonant_period_cycles
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    pieces = []
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(st.sampled_from(["constant", "square", "sine", "step"]))
        scale = draw(st.sampled_from([0.25, 0.5, 1.0, 1.0, 2.0, 5.0]))
        pieces.append(_segment(
            rng, kind,
            length=draw(st.integers(50, max_cycles // 3)),
            mean=draw(st.floats(0.0, 90.0)),
            amplitude=draw(st.floats(0.0, 60.0)),
            period=max(2.0, scale * period),
        ))
    return np.concatenate(pieces)
