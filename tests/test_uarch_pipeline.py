"""Integration tests for the out-of-order pipeline and processor facade."""

import numpy as np
import pytest

from repro.config import ProcessorConfig, TABLE1_PROCESSOR, TABLE1_SUPPLY
from repro.uarch import (
    ControlDirectives,
    MemLevel,
    OpClass,
    Pipeline,
    Processor,
    SyntheticTrace,
    WorkloadProfile,
    generate_trace,
)


def make_trace(op_classes, deps=None, mem_levels=None, mispredicts=None, name="t"):
    """Hand-build a tiny trace for targeted pipeline behaviour checks."""
    n = len(op_classes)
    profile = WorkloadProfile(name=name)
    deps = deps or [0] * n
    mem = mem_levels or [
        int(MemLevel.L1)
        if op in (int(OpClass.LOAD), int(OpClass.STORE))
        else int(MemLevel.NONE)
        for op in op_classes
    ]
    return SyntheticTrace(
        profile=profile,
        op_class=np.asarray(op_classes, dtype=np.int8),
        dep1=np.asarray(deps, dtype=np.int32),
        dep2=np.zeros(n, dtype=np.int32),
        mem_level=np.asarray(mem, dtype=np.int8),
        mispredict=np.asarray(mispredicts or [False] * n, dtype=bool),
    )


def run_until_committed(pipeline, count, max_cycles=10_000):
    cycles = 0
    while pipeline.total_committed < count and cycles < max_cycles:
        pipeline.step()
        cycles += 1
    assert pipeline.total_committed >= count, "pipeline made no progress"
    return cycles


class TestBasicExecution:
    def test_independent_alu_ops_reach_full_width(self):
        trace = make_trace([int(OpClass.INT_ALU)] * 4000)
        pipeline = Pipeline(trace, TABLE1_PROCESSOR)
        for _ in range(200):
            pipeline.step()
        assert pipeline.ipc == pytest.approx(8.0, rel=0.1)

    def test_serial_chain_runs_at_ipc_one(self):
        n = 2000
        trace = make_trace([int(OpClass.INT_ALU)] * n, deps=[0] + [1] * (n - 1))
        pipeline = Pipeline(trace, TABLE1_PROCESSOR)
        for _ in range(500):
            pipeline.step()
        assert pipeline.ipc == pytest.approx(1.0, rel=0.1)

    def test_int_mul_throughput_limited_by_pool(self):
        """Only 2 integer multipliers exist, so IPC caps at 2."""
        trace = make_trace([int(OpClass.INT_MUL)] * 4000)
        pipeline = Pipeline(trace, TABLE1_PROCESSOR)
        for _ in range(400):
            pipeline.step()
        assert pipeline.ipc == pytest.approx(2.0, rel=0.15)

    def test_loads_limited_by_cache_ports(self):
        trace = make_trace([int(OpClass.LOAD)] * 4000)
        pipeline = Pipeline(trace, TABLE1_PROCESSOR)
        for _ in range(400):
            pipeline.step()
        assert pipeline.ipc == pytest.approx(2.0, rel=0.15)

    def test_commit_is_in_order(self):
        # A memory miss at the head delays commit of everything behind it.
        ops = [int(OpClass.LOAD)] + [int(OpClass.INT_ALU)] * 20
        mem = [int(MemLevel.MEMORY)] + [int(MemLevel.NONE)] * 20
        trace = make_trace(ops, mem_levels=mem)
        pipeline = Pipeline(trace, TABLE1_PROCESSOR)
        for _ in range(50):
            pipeline.step()
        # ALU ops finish immediately but cannot commit past the load.
        assert pipeline.total_committed == 0
        for _ in range(80):
            pipeline.step()
        assert pipeline.total_committed >= 21

    def test_trace_wraps_around(self):
        trace = make_trace([int(OpClass.INT_ALU)] * 64)
        pipeline = Pipeline(trace, TABLE1_PROCESSOR)
        run_until_committed(pipeline, 1000)


class TestMemoryBehaviour:
    def test_memory_miss_stalls_dependants(self):
        n = 400
        ops = [int(OpClass.INT_ALU)] * n
        ops[0] = int(OpClass.LOAD)
        deps = [0] * n
        mem = [int(MemLevel.NONE)] * n
        mem[0] = int(MemLevel.MEMORY)
        for i in range(1, n):
            deps[i] = i  # everything depends on the missing load
        trace = make_trace(ops, deps=deps, mem_levels=mem)
        pipeline = Pipeline(trace, TABLE1_PROCESSOR)
        config = TABLE1_PROCESSOR
        miss_latency = (
            config.l1_hit_cycles + config.l2_hit_cycles + config.memory_cycles
        )
        for _ in range(miss_latency - 2):
            pipeline.step()
        assert pipeline.total_committed == 0
        for _ in range(60):
            pipeline.step()
        assert pipeline.total_committed > 100

    def test_l2_hit_faster_than_memory(self):
        def latency_to_commit(level):
            ops = [int(OpClass.LOAD), int(OpClass.INT_ALU)]
            mem = [level, int(MemLevel.NONE)]
            trace = make_trace(ops, deps=[0, 1], mem_levels=mem)
            pipeline = Pipeline(trace, TABLE1_PROCESSOR)
            cycles = 0
            while pipeline.total_committed < 2 and cycles < 500:
                pipeline.step()
                cycles += 1
            return cycles

        assert latency_to_commit(int(MemLevel.L2)) < latency_to_commit(
            int(MemLevel.MEMORY)
        )

    def test_rob_fills_during_long_miss(self):
        profile = WorkloadProfile(
            name="m", osc_kind="mem", osc_period_instrs=4000, osc_low_instrs=24
        )
        trace = generate_trace(profile, 30_000)
        pipeline = Pipeline(trace, TABLE1_PROCESSOR)
        max_occupancy = 0
        for _ in range(3000):
            stats = pipeline.step()
            max_occupancy = max(max_occupancy, stats.rob_occupancy)
        assert max_occupancy == TABLE1_PROCESSOR.rob_entries


class TestBranches:
    def test_mispredict_creates_bubble(self):
        n = 3000
        ops = [int(OpClass.INT_ALU)] * n
        mispredicts = [False] * n
        for i in range(50, n, 100):
            ops[i] = int(OpClass.BRANCH)
            mispredicts[i] = True
        clean = Pipeline(make_trace(ops), TABLE1_PROCESSOR)
        dirty = Pipeline(make_trace(ops, mispredicts=mispredicts), TABLE1_PROCESSOR)
        for _ in range(300):
            clean.step()
            dirty.step()
        assert dirty.total_committed < clean.total_committed


class TestControlDirectives:
    @pytest.fixture
    def busy_trace(self):
        return make_trace([int(OpClass.INT_ALU)] * 20_000)

    def test_issue_width_limit_halves_throughput(self, busy_trace):
        pipeline = Pipeline(busy_trace, TABLE1_PROCESSOR)
        directives = ControlDirectives(issue_width_limit=4)
        for _ in range(400):
            pipeline.step(directives)
        assert pipeline.ipc == pytest.approx(4.0, rel=0.1)

    def test_cache_port_limit_halves_load_throughput(self):
        trace = make_trace([int(OpClass.LOAD)] * 20_000)
        pipeline = Pipeline(trace, TABLE1_PROCESSOR)
        directives = ControlDirectives(cache_ports_limit=1)
        for _ in range(400):
            pipeline.step(directives)
        assert pipeline.ipc == pytest.approx(1.0, rel=0.15)

    def test_stall_issue_stops_execution(self, busy_trace):
        pipeline = Pipeline(busy_trace, TABLE1_PROCESSOR)
        for _ in range(20):
            pipeline.step()
        committed_before = pipeline.total_committed
        stall = ControlDirectives(stall_issue=True)
        for _ in range(20):
            pipeline.step(stall)
        # Already-issued instructions may drain, but nothing new issues.
        assert pipeline.total_committed <= committed_before + 16

    def test_stall_fetch_starves_pipeline(self, busy_trace):
        pipeline = Pipeline(busy_trace, TABLE1_PROCESSOR)
        stall = ControlDirectives(stall_fetch=True)
        for _ in range(100):
            pipeline.step(stall)
        assert pipeline.total_dispatched == 0

    def test_current_floor_adds_phantom(self, busy_trace):
        pipeline = Pipeline(busy_trace, TABLE1_PROCESSOR)
        directives = ControlDirectives(
            stall_issue=True, stall_fetch=True, current_floor_amps=70.0
        )
        stats = None
        for _ in range(30):
            stats = pipeline.step(directives)
        assert stats.current_amps == pytest.approx(70.0, abs=1.0)
        assert stats.phantom_amps > 0

    def test_issue_estimate_bounds_cap_issue(self, busy_trace):
        pipeline = Pipeline(busy_trace, TABLE1_PROCESSOR)
        estimate = pipeline.power.apriori_issue_estimate(int(OpClass.INT_ALU))
        cap = 3 * estimate + 0.1
        directives = ControlDirectives(issue_estimate_bounds=(0.0, cap))
        for _ in range(300):
            stats = pipeline.step(directives)
            assert stats.issued <= 3
        assert pipeline.ipc == pytest.approx(3.0, rel=0.15)

    def test_issue_estimate_lower_bound_pads_with_phantom(self):
        # A stalled machine issues nothing, so damping's lower bound must be
        # met entirely with phantom current.
        trace = make_trace([int(OpClass.INT_ALU)] * 10)
        pipeline = Pipeline(trace, TABLE1_PROCESSOR)
        directives = ControlDirectives(
            stall_issue=True, issue_estimate_bounds=(10.0, 50.0)
        )
        stats = pipeline.step(directives)
        assert stats.phantom_amps == pytest.approx(10.0)
        assert stats.issued_estimate_amps == pytest.approx(10.0)


class TestProcessorFacade:
    def test_from_profile_runs(self):
        processor = Processor.from_profile(
            WorkloadProfile(name="x"), n_instructions=5000,
            supply_config=TABLE1_SUPPLY,
        )
        for _ in range(500):
            stats = processor.step()
        assert processor.cycle == 500
        assert processor.committed_instructions > 0
        assert processor.total_energy_joules > 0
        assert stats.current_amps >= TABLE1_PROCESSOR.min_current_amps

    def test_current_stays_in_configured_range(self):
        processor = Processor.from_profile(
            WorkloadProfile(name="x", mean_dep_distance=12.0),
            n_instructions=20_000,
        )
        config = processor.config
        for _ in range(2000):
            stats = processor.step()
            assert (
                config.min_current_amps
                <= stats.current_amps
                <= config.max_current_amps * 1.05
            )

    def test_estimates_exposed(self):
        processor = Processor.from_profile(WorkloadProfile(name="x"), 1000)
        assert processor.apriori_issue_estimate(int(OpClass.LOAD)) > 0


class TestICacheAndMSHR:
    def test_icache_miss_stalls_frontend(self):
        from repro.uarch import generate_trace

        profile = WorkloadProfile(name="ic", icache_miss_rate=0.02)
        trace = generate_trace(profile, 30_000)
        with_miss = Pipeline(trace, TABLE1_PROCESSOR)
        clean = Pipeline(
            generate_trace(WorkloadProfile(name="c"), 30_000), TABLE1_PROCESSOR
        )
        for _ in range(2_000):
            with_miss.step()
            clean.step()
        assert with_miss.icache_stalls > 0
        assert with_miss.ipc < clean.ipc

    def test_mshr_limits_outstanding_misses(self):
        import numpy as np
        from repro.config import ProcessorConfig
        from repro.uarch import MemLevel, SyntheticTrace

        # A stream of independent memory-missing loads.
        n = 2_000
        trace = make_trace(
            [int(OpClass.LOAD)] * n,
            mem_levels=[int(MemLevel.MEMORY)] * n,
        )
        tight = Pipeline(trace, ProcessorConfig(mshr_entries=1))
        loose = Pipeline(
            make_trace([int(OpClass.LOAD)] * n,
                       mem_levels=[int(MemLevel.MEMORY)] * n),
            ProcessorConfig(mshr_entries=64),
        )
        for _ in range(3_000):
            tight.step()
            loose.step()
        assert tight.mshr_stall_cycles > 0
        assert tight.total_committed < loose.total_committed

    def test_default_config_rarely_binds(self):
        """Table 1 profiles were tuned before MSHRs existed; the default
        capacity must not change their behaviour materially."""
        from repro.uarch import SPEC2K, generate_trace

        trace = generate_trace(SPEC2K["swim"], 40_000)
        pipeline = Pipeline(trace, TABLE1_PROCESSOR)
        for _ in range(5_000):
            pipeline.step()
        assert pipeline.mshr_stall_cycles < 0.05 * pipeline.cycle

    def test_config_validation(self):
        from repro.config import ProcessorConfig
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ProcessorConfig(mshr_entries=0)
        with pytest.raises(ConfigurationError):
            ProcessorConfig(icache_miss_penalty=-1)
