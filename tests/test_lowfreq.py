"""Tests for the two-stage (low-frequency resonance) supply model (Sec 2.2)."""

import numpy as np
import pytest

from repro.config import PowerSupplyConfig
from repro.core import CurrentSensor, ResonanceDetector
from repro.errors import ConfigurationError
from repro.power import waveforms
from repro.power.lowfreq import (
    TwoStageSupply,
    TwoStageSupplyConfig,
    two_stage_impedance,
)


@pytest.fixture(scope="module")
def config():
    return TwoStageSupplyConfig()


class TestConfig:
    def test_low_frequency_in_megahertz_range(self, config):
        assert 0.5e6 < config.low_frequency_hz < 10e6

    def test_period_is_thousands_of_cycles(self, config):
        assert config.low_frequency_period_cycles > 1000

    def test_band_half_periods_subsampled(self, config):
        half_periods = list(config.low_frequency_band_half_periods())
        assert 5 <= len(half_periods) <= 30
        half = config.low_frequency_period_cycles // 2
        assert half_periods[0] < half < half_periods[-1] + half_periods[1] - half_periods[0]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            TwoStageSupplyConfig(offchip_resistance_ohms=0.0)
        with pytest.raises(ConfigurationError):
            TwoStageSupplyConfig(bulk_capacitance_farads=-1.0)


class TestImpedance:
    def test_two_peaks(self, config):
        frequencies = np.logspace(5.0, 8.5, 1200)
        impedance = two_stage_impedance(config, frequencies)
        interior = [
            i for i in range(1, len(frequencies) - 1)
            if impedance[i] > impedance[i - 1] and impedance[i] > impedance[i + 1]
        ]
        assert len(interior) == 2
        low_peak, mid_peak = sorted(frequencies[i] for i in interior)
        assert low_peak == pytest.approx(config.low_frequency_hz, rel=0.25)
        assert mid_peak == pytest.approx(100e6, rel=0.2)

    def test_low_peak_smaller_than_medium_peak(self, config):
        """Section 2.2: the low-frequency peak is 'fairly small' today."""
        frequencies = np.logspace(5.0, 8.5, 1200)
        impedance = two_stage_impedance(config, frequencies)
        split = np.searchsorted(frequencies, 2e7)
        assert np.max(impedance[:split]) < np.max(impedance[split:])


class TestTwoStageSupply:
    def test_constant_current_is_quiet(self, config):
        supply = TwoStageSupply(config, initial_current=80.0)
        voltages = supply.run(waveforms.constant(5000, 80.0))
        assert np.max(np.abs(voltages)) < 1e-6
        assert supply.violation_cycles == 0

    def test_low_band_excitation_violates(self, config):
        period = config.low_frequency_period_cycles
        wave = waveforms.square_wave(12 * period, period, 70.0, mean=70.0)
        supply = TwoStageSupply(config, initial_current=70.0)
        supply.run(wave)
        assert supply.violation_cycles > 0

    def test_small_low_band_excitation_absorbed(self, config):
        period = config.low_frequency_period_cycles
        wave = waveforms.square_wave(12 * period, period, 25.0, mean=70.0)
        supply = TwoStageSupply(config, initial_current=70.0)
        supply.run(wave)
        assert supply.violation_cycles == 0

    def test_medium_band_still_violates(self, config):
        wave = waveforms.square_wave(3000, 100, 50.0, mean=70.0)
        supply = TwoStageSupply(config, initial_current=70.0)
        supply.run(wave)
        assert supply.violation_cycles > 0

    def test_record_and_reset(self, config):
        supply = TwoStageSupply(config, initial_current=10.0, record=True)
        supply.run(waveforms.constant(100, 10.0))
        assert len(supply.voltages) == 100
        supply.reset(20.0)
        assert supply.cycle == 0
        assert supply.voltages == []


class TestLowFrequencyDetection:
    def test_detector_counts_low_band_repetitions(self, config):
        """Resonance tuning's detection machinery transfers directly: feed
        the low-frequency band's half-periods and the event count climbs the
        same way, with vastly more reaction slack (Section 2.2)."""
        period = config.low_frequency_period_cycles
        detector = ResonanceDetector(
            half_periods=config.low_frequency_band_half_periods(),
            threshold_amps=26.0,
            max_repetition_tolerance=4,
        )
        sensor = CurrentSensor()
        wave = waveforms.square_wave(6 * period, period, 60.0, mean=70.0)
        max_count = 0
        for cycle, current in enumerate(wave):
            event = detector.observe(cycle, sensor.read(current))
            if event is not None:
                max_count = max(max_count, event.count)
        assert max_count >= 3
