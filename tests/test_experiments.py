"""Tests for the experiment modules (tiny scales; full runs live in benchmarks/)."""

import pytest

from repro.experiments import (
    figure1,
    figure3,
    figure4,
    figure5,
    table1,
    table2,
    table3,
    table4,
    table5,
)
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import ascii_series, format_number, render_table
from repro.sim import SweepConfig

TINY = SweepConfig(n_cycles=6_000, warmup_cycles=500)
FEW = ("swim", "gzip")


class TestReport:
    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_format_number_small_values(self):
        assert "e-" in format_number(1.5e-6)
        assert format_number(True) == "yes"
        assert format_number("x") == "x"

    def test_ascii_series_shape(self):
        plot = ascii_series([1.0, 2.0, 3.0] * 30, height=4, width=20, label="x")
        lines = plot.splitlines()
        assert lines[0].startswith("x")
        assert len(lines) == 6

    def test_ascii_series_empty(self):
        assert "(empty)" in ascii_series([], label="y")


class TestFigure1:
    def test_band_annotations(self):
        result = figure1.run()
        assert result.band_low_hz < result.resonant_frequency_hz < result.band_high_hz
        assert "Figure 1(c)" in result.render()


class TestTable1:
    def test_derived_rows(self):
        result = table1.run()
        assert result.calibration.band_min_period_cycles == 84
        assert "Table 1" in result.render()


class TestFigure3:
    def test_violation_at_tolerance(self):
        result = figure3.run()
        assert result.count_at_violation == 4
        assert "Figure 3" in result.render()

    def test_no_violation_below_threshold(self):
        result = figure3.run(amplitude_pp=18.0)
        assert result.first_violation_cycle is None
        assert result.count_at_violation is None


class TestFigure4:
    def test_finds_violation_window(self):
        result = figure4.run(max_cycles=60_000)
        assert result.violation_cycle is not None
        assert len(result.currents) == len(result.voltages)
        assert "Figure 4" in result.render()


class TestTable2:
    def test_rows_and_render(self):
        result = table2.run(benchmarks=FEW, sweep_config=TINY)
        assert len(result.rows) == 2
        swim = next(r for r in result.rows if r.benchmark == "swim")
        assert swim.paper_violating
        assert "Table 2" in result.render()


class TestTable3:
    def test_sweep_and_lookup(self):
        result = table3.run(
            initial_response_times=(75,), benchmarks=FEW, sweep_config=TINY
        )
        summary = result.summary_for(75)
        assert summary.avg_slowdown > 0.9
        with pytest.raises(KeyError):
            result.summary_for(999)
        assert "Table 3" in result.render()


class TestTable4:
    def test_sweep_and_lookup(self):
        result = table4.run(
            configs=(table4.VTConfig(30, 0, 0),),
            benchmarks=FEW,
            sweep_config=TINY,
        )
        assert result.summary_for("30/0/0").avg_slowdown >= 0.9
        with pytest.raises(KeyError):
            result.summary_for("1/2/3")
        assert "Table 4" in result.render()

    def test_config_labels(self):
        config = table4.VTConfig(20, 15, 3)
        assert config.label == "20/15/3"
        assert config.actual_mv == pytest.approx(12.5)


class TestTable5:
    def test_sweep_and_lookup(self):
        result = table5.run(
            relative_deltas=(0.5,), benchmarks=FEW, sweep_config=TINY
        )
        assert result.summary_for(0.5).avg_slowdown >= 0.9
        with pytest.raises(KeyError):
            result.summary_for(0.33)
        assert "Table 5" in result.render()


class TestFigure5:
    def test_composes_design_points(self):
        result = figure5.run(benchmarks=FEW, sweep_config=TINY)
        labels = [label for label, _, _, _ in result.energy_delays]
        assert labels == ["A", "B", "C", "D", "E", "F"]
        assert "Figure 5" in result.render()


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "figure1", "table1", "figure3", "figure4",
            "table2", "table3", "table4", "table5", "figure5",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("table9")

    def test_quick_figure1_runs(self):
        result = run_experiment("figure1", quick=True)
        assert hasattr(result, "render")


class TestSvgCharts:
    def test_line_chart_renders_valid_svg(self):
        from repro.experiments.svg import LineChart

        chart = LineChart(title="t", x_label="x", y_label="y")
        chart.add_series("a", [0, 1, 2], [1.0, 3.0, 2.0])
        chart.add_guide("m", 2.5)
        chart.add_vertical_guide("v", 1.0)
        svg = chart.render()
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "polyline" in svg
        assert "stroke-dasharray" in svg

    def test_line_chart_rejects_bad_series(self):
        from repro.errors import ConfigurationError
        from repro.experiments.svg import LineChart

        chart = LineChart(title="t")
        with pytest.raises(ConfigurationError):
            chart.add_series("a", [1, 2], [1])
        with pytest.raises(ConfigurationError):
            chart.add_series("a", [], [])
        with pytest.raises(ConfigurationError):
            chart.render()

    def test_bar_chart_renders(self):
        from repro.experiments.svg import BarChart

        chart = BarChart(title="b", baseline=1.0)
        chart.add_bar("one", 1.1).add_bar("two", 1.4)
        svg = chart.render()
        assert svg.count("<rect") >= 3  # background + two bars

    def test_bar_chart_rejects_empty(self):
        from repro.errors import ConfigurationError
        from repro.experiments.svg import BarChart

        with pytest.raises(ConfigurationError):
            BarChart(title="b").render()

    def test_figure_results_emit_charts(self):
        charts = figure1.run().to_svg_charts()
        assert set(charts) == {"impedance"}
        charts = figure3.run().to_svg_charts()
        assert set(charts) == {"voltage", "current", "count"}
        for svg in charts.values():
            assert svg.startswith("<svg")

    def test_chart_escapes_labels(self):
        from repro.experiments.svg import LineChart

        chart = LineChart(title="<script>")
        chart.add_series("a&b", [0, 1], [0, 1])
        svg = chart.render()
        assert "<script>" not in svg
        assert "&lt;script&gt;" in svg
        assert "a&amp;b" in svg


class TestAblations:
    def test_two_tier_variants(self):
        from repro.experiments import ablations

        result = ablations.run_two_tier(n_cycles=5_000, benchmarks=("swim",))
        labels = [label for label, _ in result.summaries]
        assert labels == ["both", "first-only", "second-only"]
        assert "Ablation" in result.render()
        assert result.summary_for("both").avg_slowdown >= 0.9
        with pytest.raises(KeyError):
            result.summary_for("nonsense")

    def test_band_coverage_variants(self):
        from repro.experiments import ablations

        result = ablations.run_band_coverage(
            n_cycles=5_000, benchmarks=("gzip",)
        )
        assert {label for label, _ in result.summaries} == {
            "band-wide", "single-frequency",
        }

    def test_sensing_variants(self):
        from repro.experiments import ablations

        result = ablations.run_sensing(
            n_cycles=4_000, benchmarks=("gzip",),
            quanta=(1.0,), delays=(0,),
        )
        assert len(result.summaries) == 2

    def test_detector_variants(self):
        from repro.experiments import ablations

        result = ablations.run_detectors(n_cycles=4_000, benchmarks=("gzip",))
        assert len(result.summaries) == 2

    def test_registered_as_extensions(self):
        from repro.experiments.registry import EXPERIMENTS, EXTENSIONS

        assert set(EXTENSIONS) == {
            "ablation-two-tier",
            "ablation-band-coverage",
            "ablation-sensing",
            "ablation-detectors",
            "ablation-fault-injection",
        }
        assert not set(EXTENSIONS) & set(EXPERIMENTS)

    def test_run_experiment_resolves_extensions(self):
        result = run_experiment("ablation-sensing", quick=True)
        assert hasattr(result, "render")


class TestPersistence:
    def test_save_result_writes_text_and_svg(self, tmp_path):
        from repro.experiments import figure1, persistence

        result = figure1.run()
        written = persistence.save_result(result, str(tmp_path), "figure1")
        assert any(path.endswith("figure1.txt") for path in written)
        assert any(path.endswith("figure1_impedance.svg") for path in written)
        for path in written:
            assert (tmp_path / path.split("/")[-1]).exists()

    def test_save_result_without_charts(self, tmp_path):
        from repro.experiments import persistence, table1

        written = persistence.save_result(table1.run(), str(tmp_path), "table1")
        assert len(written) == 1

    def test_run_and_save_all_subset(self, tmp_path):
        from repro.experiments import persistence

        seen = []
        written = persistence.run_and_save_all(
            str(tmp_path), quick=True, names=["figure1"],
            progress=lambda name, seconds: seen.append(name),
        )
        assert seen == ["figure1"]
        assert "figure1" in written
