"""Unit tests for the current sensor and the history registers."""

import pytest

from repro.core import CurrentHistoryRegister, CurrentSensor, EventHistoryRegister
from repro.errors import ConfigurationError, SimulationError


class TestCurrentSensor:
    def test_quantizes_to_whole_amps(self):
        sensor = CurrentSensor(quantum_amps=1.0)
        assert sensor.read(70.4) == 70.0
        assert sensor.read(70.6) == 71.0

    def test_coarser_quantum(self):
        sensor = CurrentSensor(quantum_amps=5.0)
        assert sensor.read(72.0) == 70.0
        assert sensor.read(73.0) == 75.0

    def test_delay_shifts_readings(self):
        sensor = CurrentSensor(delay_cycles=2)
        assert sensor.read(10.0) == 10.0  # delay line still filling
        assert sensor.read(20.0) == 10.0
        assert sensor.read(30.0) == 10.0
        assert sensor.read(40.0) == 20.0

    def test_noise_is_bounded_and_seeded(self):
        a = CurrentSensor(noise_pp_amps=4.0, seed=1)
        b = CurrentSensor(noise_pp_amps=4.0, seed=1)
        readings_a = [a.read(70.0) for _ in range(200)]
        readings_b = [b.read(70.0) for _ in range(200)]
        assert readings_a == readings_b
        assert all(68.0 <= r <= 72.0 for r in readings_a)
        assert len(set(readings_a)) > 1

    def test_reset_clears_delay_line(self):
        sensor = CurrentSensor(delay_cycles=3)
        sensor.read(1.0)
        sensor.reset()
        assert sensor.read(9.0) == 9.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            CurrentSensor(quantum_amps=0.0)
        with pytest.raises(ConfigurationError):
            CurrentSensor(delay_cycles=-1)
        with pytest.raises(ConfigurationError):
            CurrentSensor(noise_pp_amps=-1.0)


class TestCurrentHistoryRegister:
    def test_quarter_diff_detects_step(self):
        register = CurrentHistoryRegister(max_quarter_period=8)
        for _ in range(8):
            register.append(10.0)
        for _ in range(8):
            register.append(50.0)
        # last 8 cycles at 50, previous 8 at 10: diff = 8 * 40
        assert register.quarter_diff(8) == pytest.approx(320.0)

    def test_flat_current_gives_zero_diff(self):
        register = CurrentHistoryRegister(max_quarter_period=10)
        for _ in range(40):
            register.append(70.0)
        for quarter in (1, 5, 10):
            assert register.quarter_diff(quarter) == pytest.approx(0.0)

    def test_falling_current_gives_negative_diff(self):
        register = CurrentHistoryRegister(max_quarter_period=4)
        for _ in range(4):
            register.append(90.0)
        for _ in range(4):
            register.append(30.0)
        assert register.quarter_diff(4) < 0

    def test_ready_guard(self):
        register = CurrentHistoryRegister(max_quarter_period=5)
        register.append(1.0)
        assert not register.ready(5)
        with pytest.raises(SimulationError):
            register.quarter_diff(5)

    def test_rejects_out_of_range_quarter(self):
        register = CurrentHistoryRegister(max_quarter_period=5)
        for _ in range(20):
            register.append(1.0)
        with pytest.raises(SimulationError):
            register.quarter_diff(6)
        with pytest.raises(SimulationError):
            register.quarter_diff(0)

    def test_long_stream_stays_consistent(self):
        """Ring-buffer wraparound must not corrupt sums."""
        register = CurrentHistoryRegister(max_quarter_period=8)
        for cycle in range(1000):
            register.append(float(cycle % 16 < 8) * 40.0)
        # The waveform has period 16 with quarter 4 aligned transitions.
        diffs = []
        for _ in range(32):
            register.append(0.0)
            diffs.append(register.quarter_diff(4))
        assert min(diffs) <= 0.0

    def test_long_trace_quarter_diff_stays_exact(self):
        """Regression: the running sum must not lose the window's bits.

        Before the re-anchoring + compensation fix, ``_cumsum`` grew
        without bound (sum of every current ever appended), so after a
        few hundred thousand cycles of ~100 A the window differences --
        small numbers computed as differences of huge ones -- were off
        by tens of thousands of ulps.  The fixed register must stay
        within 1 ulp *of the window's absolute current sum* (the
        smallest scale the subtraction can be carried out at) no matter
        how long the trace runs.
        """
        import math

        import numpy as np

        quarter = 8
        register = CurrentHistoryRegister(max_quarter_period=quarter)
        rng = np.random.default_rng(20260808)
        # Non-dyadic amplitudes around 100 A: every append carries
        # rounding pressure, and the old unbounded sum reaches ~4e7.
        trace = (100.0 + 7.3 * np.sin(0.21 * np.arange(400_000))
                 + rng.normal(0.0, 2.7, 400_000))
        window = []
        worst = 0.0
        for amps in trace.tolist():
            register.append(amps)
            window.append(amps)
            if len(window) > 2 * quarter:
                window.pop(0)
            if len(window) == 2 * quarter:
                exact = math.fsum(window[quarter:]) - math.fsum(
                    window[:quarter]
                )
                got = register.quarter_diff(quarter)
                scale = math.fsum(abs(value) for value in window)
                worst = max(worst, abs(got - exact) / np.spacing(scale))
        assert worst <= 1.0, f"worst error {worst:.2f} ulp of window scale"

    def test_long_trace_dyadic_quarter_diff_is_bit_exact(self):
        """Exactly representable traces stay bit-exact across wraps.

        The goldens feed whole-amp sensed currents; the precision fix
        must be an exact no-op there (compensation identically zero), so
        golden hashes cannot shift.
        """
        import math

        quarter = 6
        register = CurrentHistoryRegister(max_quarter_period=quarter)
        window = []
        for cycle in range(50_000):
            amps = float((cycle * 37) % 113)  # integer-valued, aperiodic
            register.append(amps)
            window.append(amps)
            if len(window) > 2 * quarter:
                window.pop(0)
            if len(window) == 2 * quarter:
                exact = math.fsum(window[quarter:]) - math.fsum(
                    window[:quarter]
                )
                assert register.quarter_diff(quarter) == exact


class TestEventHistoryRegister:
    def test_records_and_looks_up(self):
        register = EventHistoryRegister(length_cycles=16)
        for cycle in range(20):
            register.shift(cycle, event=(cycle in (3, 7, 18)))
        assert register.has_event_at(18)
        assert register.has_event_at(7)
        assert not register.has_event_at(6)

    def test_old_events_age_out(self):
        register = EventHistoryRegister(length_cycles=8)
        register.shift(0, True)
        for cycle in range(1, 10):
            register.shift(cycle, False)
        assert not register.has_event_at(0)

    def test_shift_must_be_consecutive(self):
        register = EventHistoryRegister(length_cycles=8)
        register.shift(0, False)
        with pytest.raises(SimulationError):
            register.shift(2, False)

    def test_latest_event_in_window(self):
        register = EventHistoryRegister(length_cycles=64)
        for cycle in range(40):
            register.shift(cycle, event=(cycle in (5, 10, 20)))
        assert register.latest_event_in(0, 15) == 10
        assert register.latest_event_in(11, 19) is None
        assert register.latest_event_in(0, 39) == 20

    def test_run_start_finds_beginning_of_run(self):
        register = EventHistoryRegister(length_cycles=64)
        for cycle in range(20):
            register.shift(cycle, event=(8 <= cycle <= 12))
        assert register.run_start(12) == 8
        assert register.run_start(8) == 8

    def test_run_start_requires_event(self):
        register = EventHistoryRegister(length_cycles=64)
        register.shift(0, False)
        with pytest.raises(SimulationError):
            register.run_start(0)

    def test_rejects_bad_length(self):
        with pytest.raises(ConfigurationError):
            EventHistoryRegister(0)
