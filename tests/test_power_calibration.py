"""Tests for the Section 2.1.3 calibration procedure."""

import pytest

from repro.config import TABLE1_SUPPLY
from repro.errors import CalibrationError
from repro.power import (
    RLCAnalysis,
    calibrate,
    max_repetition_tolerance,
    max_tolerable_variation,
    quiet_cycles_for_event_decay,
    resonant_current_variation_threshold,
    sustained_wave_violates,
)


@pytest.fixture(scope="module")
def analysis():
    return RLCAnalysis(TABLE1_SUPPLY)


@pytest.fixture(scope="module")
def result():
    return calibrate(TABLE1_SUPPLY)


class TestThreshold:
    def test_threshold_in_plausible_range(self, result):
        """Paper Table 1 states 32 A; our Heun square-wave procedure lands in
        the mid-20s to mid-30s for the same circuit."""
        assert 20.0 <= result.threshold_amps <= 40.0

    def test_threshold_never_violates_when_sustained(self, analysis, result):
        assert not sustained_wave_violates(
            TABLE1_SUPPLY,
            analysis.resonant_frequency_hz,
            result.threshold_amps,
        )

    def test_just_above_threshold_violates(self, analysis, result):
        assert sustained_wave_violates(
            TABLE1_SUPPLY,
            analysis.resonant_frequency_hz,
            result.threshold_amps + 2.0,
        )

    def test_band_edges_tolerate_more_than_centre(self, analysis, result):
        """The paper's example tolerates 13 A at the edges vs 10 A inside."""
        assert result.band_edge_tolerable_amps >= result.threshold_amps

    def test_far_off_band_tolerates_much_more(self, analysis, result):
        off_band = max_tolerable_variation(TABLE1_SUPPLY, 20e6)
        assert off_band > 2.0 * result.threshold_amps


class TestRepetitionTolerance:
    def test_tolerance_matches_paper_scale(self, result):
        """Paper Table 1: 4 half-waves; we accept the same small-integer scale."""
        assert 3 <= result.max_repetition_tolerance <= 6

    def test_larger_amplitude_needs_fewer_repetitions(self, analysis, result):
        few = max_repetition_tolerance(
            TABLE1_SUPPLY, 2.0 * result.band_edge_tolerable_amps
        )
        many = max_repetition_tolerance(
            TABLE1_SUPPLY, 1.05 * result.threshold_amps
        )
        assert few <= many

    def test_below_threshold_never_violates(self, result):
        with pytest.raises(CalibrationError):
            max_repetition_tolerance(
                TABLE1_SUPPLY, 0.8 * result.threshold_amps, max_half_waves=32
            )

    def test_tolerance_counts_half_waves(self, analysis, result):
        """At minimum two half-waves (one full period) should be required for
        amplitudes near the threshold."""
        tolerance = max_repetition_tolerance(
            TABLE1_SUPPLY, 1.05 * result.threshold_amps
        )
        assert tolerance >= 2


class TestSecondLevelTime:
    def test_quiet_cycles_positive_and_subperiod(self, analysis, result):
        cycles = quiet_cycles_for_event_decay(
            TABLE1_SUPPLY, result.max_repetition_tolerance
        )
        assert 0 < cycles < analysis.resonant_period_cycles

    def test_rejects_tiny_tolerance(self):
        with pytest.raises(CalibrationError):
            quiet_cycles_for_event_decay(TABLE1_SUPPLY, 1)


class TestCalibrateBundle:
    def test_band_fields_match_analysis(self, analysis, result):
        band = analysis.band
        assert result.band_min_period_cycles == band.min_period_cycles
        assert result.band_max_period_cycles == band.max_period_cycles
        assert result.resonant_period_cycles == analysis.resonant_period_cycles

    def test_bad_bisection_tolerance_rejected(self):
        with pytest.raises(CalibrationError):
            max_tolerable_variation(TABLE1_SUPPLY, 100e6, tolerance_amps=0.0)
