"""Unit tests for tools/bench_gate.py (perf-gate hardening).

Regression coverage for two silent-pass bugs:

* a report whose sequential leg was missing or recorded zero throughput
  made ``speedups()`` return ``{}``, so the machine-independent speedup
  check silently never ran;
* a zero/missing baseline rate produced ``ratio = inf``, which sails
  over any floor -- a corrupt baseline passed the gate instead of
  failing it.

Both must now be hard gate failures with messages naming the problem.
"""

import importlib.util
import json
import pathlib

import pytest

_TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"


def _load_bench_gate():
    spec = importlib.util.spec_from_file_location(
        "bench_gate", _TOOLS / "bench_gate.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


bench_gate = _load_bench_gate()


def _report(**backends):
    return {
        "schema": 1,
        "backends": {
            label: {"cells_per_s": rate, "wall_s": 1.0}
            for label, rate in backends.items()
        },
    }


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def _run(tmp_path, current, baseline, capsys):
    argv = [
        _write(tmp_path, "current.json", current),
        "--baseline",
        _write(tmp_path, "baseline.json", baseline),
    ]
    code = bench_gate.main(argv)
    return code, capsys.readouterr().out


class TestSequentialLeg:
    def test_healthy_reports_pass(self, tmp_path, capsys):
        report = _report(sequential=4.0, pool=8.0)
        code, out = _run(tmp_path, report, report, capsys)
        assert code == 0
        assert "perf gate passed" in out

    def test_missing_sequential_in_current_fails(self, tmp_path, capsys):
        baseline = _report(sequential=4.0, pool=8.0)
        current = _report(pool=8.0)
        code, out = _run(tmp_path, current, baseline, capsys)
        assert code == 1
        assert "PERF GATE FAILED" in out
        assert "no 'sequential' backend leg" in out

    def test_zero_sequential_rate_fails(self, tmp_path, capsys):
        baseline = _report(sequential=4.0, pool=8.0)
        current = _report(sequential=0.0, pool=8.0)
        code, out = _run(tmp_path, current, baseline, capsys)
        assert code == 1
        assert "invalid throughput" in out

    def test_missing_sequential_in_baseline_fails(self, tmp_path, capsys):
        baseline = _report(pool=8.0)
        current = _report(sequential=4.0, pool=8.0)
        code, out = _run(tmp_path, current, baseline, capsys)
        assert code == 1
        assert "baseline report has no 'sequential' backend leg" in out

    def test_speedups_raises_not_empty(self):
        with pytest.raises(bench_gate.MalformedReport):
            bench_gate.speedups({"backends": {"pool": {"cells_per_s": 8.0}}})
        with pytest.raises(bench_gate.MalformedReport):
            bench_gate.speedups(
                {"backends": {"sequential": {"cells_per_s": 0.0}}}
            )


class TestBaselineRates:
    def test_zero_baseline_rate_is_failure_not_inf(self, tmp_path, capsys):
        baseline = _report(sequential=4.0, pool=0.0)
        current = _report(sequential=4.0, pool=8.0)
        code, out = _run(tmp_path, current, baseline, capsys)
        assert code == 1
        assert "not a positive number" in out
        assert "baseline" in out

    def test_missing_baseline_rate_is_failure(self, tmp_path, capsys):
        baseline = _report(sequential=4.0, pool=8.0)
        del baseline["backends"]["pool"]["cells_per_s"]
        current = _report(sequential=4.0, pool=8.0)
        code, out = _run(tmp_path, current, baseline, capsys)
        assert code == 1
        assert "not a positive number" in out

    def test_zero_current_rate_is_failure(self, tmp_path, capsys):
        baseline = _report(sequential=4.0, pool=8.0)
        current = _report(sequential=4.0, pool=0.0)
        code, out = _run(tmp_path, current, baseline, capsys)
        assert code == 1
        assert "did not produce a measurement" in out


class TestRegression:
    def test_throughput_regression_fails(self, tmp_path, capsys):
        baseline = _report(sequential=4.0, pool=8.0)
        current = _report(sequential=4.0, pool=4.0)
        code, out = _run(tmp_path, current, baseline, capsys)
        assert code == 1
        assert "below baseline" in out

    def test_within_tolerance_passes(self, tmp_path, capsys):
        baseline = _report(sequential=4.0, pool=8.0)
        current = _report(sequential=3.6, pool=7.2)
        code, out = _run(tmp_path, current, baseline, capsys)
        assert code == 0

    def test_committed_sweep_baseline_self_gates(self, capsys):
        baseline = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks" / "baselines" / "BENCH_sweep.json"
        )
        code = bench_gate.main([str(baseline), "--baseline", str(baseline)])
        capsys.readouterr()
        assert code == 0
