"""Tests for the resilient experiment runner (repro.sim.runner).

Covers: SweepConfig/ResilienceConfig construction validation, the bounded
base-run cache, failure reporting and bounded retry with deterministic
re-seeding, per-cell timeouts, the checkpoint write/resume round trip
(killed mid-sweep -> resumed summary byte-identical to an uninterrupted
one), and the experiment registry's name suggestions and flag plumbing.
"""

import dataclasses
import json

import pytest

from repro.core import ResonanceTuningController
from repro.errors import ConfigurationError, FaultError
from repro.sim import (
    BenchmarkRunner,
    FailureReport,
    ResilienceConfig,
    SweepConfig,
    load_checkpoint,
)
from repro.sim.runner import _cell_key


def tuning_factory(supply, processor):
    return ResonanceTuningController(supply, processor)


def summary_fingerprint(summary):
    """Byte-exact serialisation of a TechniqueSummary for equality checks."""
    return json.dumps(dataclasses.asdict(summary), sort_keys=True)


SMALL = SweepConfig(n_cycles=3000, warmup_cycles=200)


# ----------------------------------------------------------------------
# Construction validation
# ----------------------------------------------------------------------

class TestSweepConfigValidation:
    def test_rejects_non_positive_cycles(self):
        with pytest.raises(ConfigurationError):
            SweepConfig(n_cycles=0)
        with pytest.raises(ConfigurationError):
            SweepConfig(n_cycles=-5)

    def test_rejects_negative_warmup(self):
        with pytest.raises(ConfigurationError):
            SweepConfig(warmup_cycles=-1)

    def test_rejects_non_positive_trace_instructions(self):
        with pytest.raises(ConfigurationError):
            SweepConfig(trace_instructions=0)

    def test_valid_config_constructs(self):
        config = SweepConfig(n_cycles=1000, warmup_cycles=0,
                             trace_instructions=60_000)
        assert config.instructions() == 60_000


class TestResilienceConfigValidation:
    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(timeout_s=0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(max_retries=-1)

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(resume=True)

    def test_runner_rejects_unbounded_cache(self):
        with pytest.raises(ConfigurationError):
            BenchmarkRunner(SMALL, max_base_cache_entries=0)

    def test_rejects_negative_workers(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(workers=-1)

    def test_rejects_negative_backoff(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(backoff_base_s=-0.5)

    def test_rejects_non_positive_heartbeat_staleness(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(heartbeat_stale_s=0)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(backend="carrier-pigeon")

    def test_rejects_non_positive_lease_timeout(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(lease_timeout_s=0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(lease_timeout_s=-1.0)

    def test_rejects_zero_quarantine_threshold(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(quarantine_failures=0)

    def test_rejects_non_positive_connect_deadline(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(connect_deadline_s=0)

    def test_rejects_unknown_dist_transport(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(dist_transport="infiniband")

    def test_dist_validation_error_is_a_harness_error(self):
        from repro.errors import HarnessError

        with pytest.raises(HarnessError) as caught:
            ResilienceConfig(backend="nope")
        # The message must name the knob and the offending value.
        assert "backend" in str(caught.value)
        assert "nope" in str(caught.value)

    def test_valid_dist_config_constructs(self):
        config = ResilienceConfig(
            backend="dist", workers=2, lease_timeout_s=5.0,
            quarantine_failures=1, connect_deadline_s=0.5,
            dist_transport="tcp",
        )
        assert config.backend == "dist"


# ----------------------------------------------------------------------
# Base-run cache bound
# ----------------------------------------------------------------------

class TestBaseCache:
    def test_cache_hit_reuses_result(self):
        runner = BenchmarkRunner(SMALL)
        first = runner.run_base("swim")
        assert runner.run_base("swim") is first

    def test_cache_is_bounded_lru(self):
        runner = BenchmarkRunner(SMALL, max_base_cache_entries=2)
        a = runner.run_base("swim", seed=1)
        runner.run_base("swim", seed=2)
        runner.run_base("swim", seed=1)      # refresh a
        runner.run_base("swim", seed=3)      # evicts seed=2, not a
        assert len(runner._base_cache) == 2
        assert runner.run_base("swim", seed=1) is a
        assert runner._base_key("swim", 2) not in runner._base_cache

    def test_cache_key_includes_config(self):
        """Mutating runner.config must not serve stale base runs."""
        runner = BenchmarkRunner(SMALL)
        short = runner.run_base("swim")
        runner.config = SweepConfig(n_cycles=4000, warmup_cycles=200)
        longer = runner.run_base("swim")
        assert longer is not short
        assert longer.cycles > short.cycles

    def test_clear_cache_forces_recompute(self):
        runner = BenchmarkRunner(SMALL)
        first = runner.run_base("swim")
        runner.clear_cache()
        assert len(runner._base_cache) == 0
        second = runner.run_base("swim")
        assert second is not first
        # deterministic: the recomputed run matches the original
        assert second.cycles == first.cycles
        assert second.violation_cycles == first.violation_cycles


# ----------------------------------------------------------------------
# Failure handling and retries
# ----------------------------------------------------------------------

class BrokenSupply:
    """A supply stand-in whose step always explodes."""

    def __init__(self, supply):
        self._supply = supply

    def step(self, cpu_current):
        raise RuntimeError("melted")

    def __getattr__(self, name):
        return getattr(self._supply, name)


def break_benchmark(target):
    def transform(supply, benchmark):
        return BrokenSupply(supply) if benchmark == target else supply

    return transform


class TestFailureReports:
    def test_failed_cell_becomes_failure_report(self):
        runner = BenchmarkRunner(SMALL, supply_transform=break_benchmark("swim"))
        summary = runner.sweep(tuning_factory, benchmarks=("swim", "gzip"))
        assert len(summary.failures) == 1
        failure = summary.failures[0]
        assert isinstance(failure, FailureReport)
        assert failure.benchmark == "swim"
        assert failure.technique == "resonance-tuning"
        assert failure.error_type == "RuntimeError"
        assert "melted" in failure.message
        assert failure.attempts == 1
        # the healthy benchmark still produced its row
        assert [row.benchmark for row in summary.per_benchmark] == ["gzip"]

    def test_retry_budget_is_spent_and_recorded(self):
        runner = BenchmarkRunner(SMALL, supply_transform=break_benchmark("swim"))
        summary = runner.sweep(
            tuning_factory,
            benchmarks=("swim", "gzip"),
            resilience=ResilienceConfig(max_retries=2),
        )
        assert summary.failures[0].attempts == 3
        assert summary.failures[0].seed is not None  # last retry was re-seeded

    def test_all_cells_failing_raises_fault_error(self):
        runner = BenchmarkRunner(
            SMALL, supply_transform=lambda supply, name: BrokenSupply(supply)
        )
        with pytest.raises(FaultError, match="every cell"):
            runner.sweep(tuning_factory, benchmarks=("swim",))

    def test_flaky_cell_recovers_on_retry(self):
        calls = {"count": 0}

        class FlakyOnce:
            def __init__(self, supply):
                self._supply = supply

            def step(self, cpu_current):
                if calls["count"] == 0:
                    calls["count"] += 1
                    raise RuntimeError("transient")
                return self._supply.step(cpu_current)

            def __getattr__(self, name):
                return getattr(self._supply, name)

        runner = BenchmarkRunner(
            SMALL, supply_transform=lambda supply, name: FlakyOnce(supply)
        )
        summary = runner.sweep(
            tuning_factory,
            benchmarks=("swim",),
            resilience=ResilienceConfig(max_retries=1),
        )
        assert summary.failures == ()
        assert len(summary.per_benchmark) == 1


class TestTimeout:
    def test_hung_cell_times_out_into_failure_report(self):
        import time

        class HungSupply:
            def __init__(self, supply):
                self._supply = supply

            def step(self, cpu_current):
                time.sleep(30)
                return self._supply.step(cpu_current)

            def __getattr__(self, name):
                return getattr(self._supply, name)

        def hang_swim(supply, benchmark):
            return HungSupply(supply) if benchmark == "swim" else supply

        runner = BenchmarkRunner(SMALL, supply_transform=hang_swim)
        summary = runner.sweep(
            tuning_factory,
            benchmarks=("swim", "gzip"),
            resilience=ResilienceConfig(timeout_s=2.0),
        )
        assert len(summary.failures) == 1
        failure = summary.failures[0]
        assert failure.benchmark == "swim"
        assert failure.error_type == "FaultError"
        assert "timeout" in failure.message
        assert [row.benchmark for row in summary.per_benchmark] == ["gzip"]


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------

class TestCheckpointResume:
    BENCHMARKS = ("swim", "gzip", "parser")

    def uninterrupted(self):
        runner = BenchmarkRunner(SMALL)
        return runner.sweep(tuning_factory, benchmarks=self.BENCHMARKS)

    def test_checkpoint_written_after_each_cell(self, tmp_path):
        path = str(tmp_path / "ck.json")
        seen = []

        runner = BenchmarkRunner(SMALL)
        runner.sweep(
            tuning_factory,
            benchmarks=self.BENCHMARKS,
            progress=lambda name, metrics: seen.append(
                len(load_checkpoint(path)["cells"])
            ),
            resilience=ResilienceConfig(checkpoint_path=path),
        )
        # after cell k completes the checkpoint already holds k+1 cells
        assert seen == [1, 2, 3]
        data = load_checkpoint(path)
        assert data["n_cycles"] == SMALL.n_cycles
        assert set(data["cells"]) == {
            _cell_key(0, name, "resonance-tuning", None)
            for name in self.BENCHMARKS
        }

    def test_killed_mid_sweep_resume_is_byte_identical(self, tmp_path):
        path = str(tmp_path / "ck.json")

        class Kill(BaseException):
            """Out of Exception's reach: the runner must not retry it."""

        remaining = {"cells": 2}

        def kill_after_two(name, metrics):
            remaining["cells"] -= 1
            if remaining["cells"] == 0:
                raise Kill()

        first = BenchmarkRunner(
            SMALL, resilience=ResilienceConfig(checkpoint_path=path)
        )
        with pytest.raises(Kill):
            first.sweep(
                tuning_factory,
                benchmarks=self.BENCHMARKS,
                progress=kill_after_two,
            )
        assert len(load_checkpoint(path)["cells"]) == 2

        resumed_runner = BenchmarkRunner(
            SMALL,
            resilience=ResilienceConfig(checkpoint_path=path, resume=True),
        )
        computed = []
        resumed = resumed_runner.sweep(
            tuning_factory,
            benchmarks=self.BENCHMARKS,
            progress=lambda name, metrics: computed.append(name),
        )
        assert summary_fingerprint(resumed) == summary_fingerprint(
            self.uninterrupted()
        )
        assert resumed == self.uninterrupted()

    def test_resume_skips_completed_cells(self, tmp_path):
        path = str(tmp_path / "ck.json")
        warm = BenchmarkRunner(
            SMALL, resilience=ResilienceConfig(checkpoint_path=path)
        )
        warm.sweep(tuning_factory, benchmarks=self.BENCHMARKS)

        # a resumed sweep touches no simulation at all: even an
        # always-broken supply cannot fail it
        resumed = BenchmarkRunner(
            SMALL,
            resilience=ResilienceConfig(checkpoint_path=path, resume=True),
            supply_transform=lambda supply, name: BrokenSupply(supply),
        )
        summary = resumed.sweep(tuning_factory, benchmarks=self.BENCHMARKS)
        assert summary.failures == ()
        assert summary == self.uninterrupted()

    def test_mismatched_checkpoint_is_rejected(self, tmp_path):
        path = str(tmp_path / "ck.json")
        warm = BenchmarkRunner(
            SMALL, resilience=ResilienceConfig(checkpoint_path=path)
        )
        warm.sweep(tuning_factory, benchmarks=("swim",))

        other = BenchmarkRunner(
            SweepConfig(n_cycles=4000, warmup_cycles=200),
            resilience=ResilienceConfig(checkpoint_path=path, resume=True),
        )
        with pytest.raises(ConfigurationError, match="does not match"):
            other.sweep(tuning_factory, benchmarks=("swim",))

    def test_corrupt_version_is_rejected(self, tmp_path):
        from repro.errors import CheckpointError

        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"version": 99, "cells": {}}))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(str(path))

    def test_multiple_sweeps_on_one_runner_get_distinct_keys(self, tmp_path):
        path = str(tmp_path / "ck.json")
        runner = BenchmarkRunner(
            SMALL, resilience=ResilienceConfig(checkpoint_path=path)
        )
        runner.sweep(tuning_factory, benchmarks=("swim",))
        runner.sweep(tuning_factory, benchmarks=("swim",))
        keys = set(load_checkpoint(path)["cells"])
        assert keys == {
            _cell_key(0, "swim", "resonance-tuning", None),
            _cell_key(1, "swim", "resonance-tuning", None),
        }


# ----------------------------------------------------------------------
# Empty / zero-byte checkpoint salvage
# ----------------------------------------------------------------------

class TestEmptyCheckpointSalvage:
    """A checkpoint truncated to nothing (crash during the very first
    durable write, or a filesystem that zeroed the file) must never be
    mistaken for valid state -- and must never block a resume either."""

    def test_zero_byte_checkpoint_raises_without_salvage(self, tmp_path):
        from repro.errors import CheckpointError

        path = tmp_path / "ck.json"
        path.write_bytes(b"")
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_whitespace_only_checkpoint_raises_without_salvage(
        self, tmp_path
    ):
        from repro.errors import CheckpointError

        path = tmp_path / "ck.json"
        path.write_text("   \n\n  ")
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_salvage_of_zero_byte_checkpoint_quarantines_it(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_bytes(b"")
        with pytest.warns(RuntimeWarning, match="salvaged 0"):
            data = load_checkpoint(str(path), salvage=True)
        assert data["salvaged"] is True
        assert data["cells"] == {}
        # The empty original moved aside; the path is free for a clean write.
        assert not path.exists()
        assert (tmp_path / "ck.json.corrupt-0").exists()

    def test_resume_from_zero_byte_checkpoint_recomputes_everything(
        self, tmp_path
    ):
        path = tmp_path / "ck.json"
        path.write_bytes(b"")
        golden = BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=("swim",)
        )
        with pytest.warns(RuntimeWarning):
            resumed = BenchmarkRunner(SMALL).sweep(
                tuning_factory,
                benchmarks=("swim",),
                resilience=ResilienceConfig(
                    checkpoint_path=str(path), resume=True
                ),
            )
        assert summary_fingerprint(resumed) == summary_fingerprint(golden)
        # And the rewritten checkpoint is whole again.
        assert len(load_checkpoint(str(path))["cells"]) == 1


# ----------------------------------------------------------------------
# Registry integration
# ----------------------------------------------------------------------

class TestRegistry:
    def test_unknown_name_suggests_close_matches(self):
        from repro.experiments.registry import run_experiment

        with pytest.raises(KeyError) as excinfo:
            run_experiment("tabel3")
        assert "table3" in str(excinfo.value)

    def test_unknown_name_without_match_lists_catalogue(self):
        from repro.experiments.registry import run_experiment

        with pytest.raises(KeyError) as excinfo:
            run_experiment("zzzz")
        assert "table2" in str(excinfo.value)

    def test_fault_injection_experiment_is_registered(self):
        from repro.experiments.registry import EXTENSIONS

        assert "ablation-fault-injection" in EXTENSIONS

    def test_resilience_flags_round_trip(self):
        from repro.cli import build_parser
        from repro.experiments.registry import resilience_from_args

        parser = build_parser()
        args = parser.parse_args([
            "experiment", "table3", "--quick",
            "--checkpoint", "/tmp/x.json", "--resume",
            "--max-retries", "2", "--timeout-s", "5",
        ])
        resilience = resilience_from_args(args)
        assert resilience == ResilienceConfig(
            timeout_s=5.0, max_retries=2,
            checkpoint_path="/tmp/x.json", resume=True,
        )

    def test_default_flags_mean_no_resilience(self):
        from repro.cli import build_parser
        from repro.experiments.registry import resilience_from_args

        parser = build_parser()
        args = parser.parse_args(["experiment", "table3"])
        assert resilience_from_args(args) is None
