"""Edge-case coverage for workload diagnostics and relative metrics.

Pins ``dominant_period_cycles`` (short-input error path, recovery of
known periods from synthetic waveforms, noise robustness) and the
``RelativeMetrics`` guards: a zero-IPC technique run and a zero-energy
base run must yield ``inf`` sentinels, never a ZeroDivisionError.
"""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.metrics import SimulationResult
from repro.uarch.diagnostics import dominant_period_cycles


def result(
    benchmark="swim",
    technique="base",
    cycles=1000,
    instructions=2000,
    energy_joules=1.0,
):
    return SimulationResult(
        benchmark=benchmark,
        technique=technique,
        cycles=cycles,
        instructions=instructions,
        energy_joules=energy_joules,
        phantom_energy_joules=0.0,
        violation_cycles=0,
        violation_events=0,
    )


class TestDominantPeriod:
    @pytest.mark.parametrize("length", [0, 1, 15])
    def test_short_input_raises(self, length):
        with pytest.raises(SimulationError, match="at least 16 samples"):
            dominant_period_cycles(np.zeros(length))

    def test_minimum_length_accepted(self):
        cycles = np.arange(16)
        wave = np.sin(2 * math.pi * cycles / 8.0)
        assert dominant_period_cycles(wave) == pytest.approx(8.0, rel=0.25)

    @pytest.mark.parametrize("period", [10.0, 25.0, 50.0, 128.0])
    def test_recovers_known_period(self, period):
        cycles = np.arange(4096)
        wave = np.sin(2 * math.pi * cycles / period)
        assert dominant_period_cycles(wave) == pytest.approx(
            period, rel=0.05
        )

    def test_dc_offset_ignored(self):
        cycles = np.arange(2048)
        wave = 40.0 + np.sin(2 * math.pi * cycles / 50.0)
        assert dominant_period_cycles(wave) == pytest.approx(50.0, rel=0.05)

    def test_strongest_component_wins(self):
        cycles = np.arange(4096)
        wave = (
            3.0 * np.sin(2 * math.pi * cycles / 64.0)
            + 0.5 * np.sin(2 * math.pi * cycles / 10.0)
        )
        assert dominant_period_cycles(wave) == pytest.approx(64.0, rel=0.05)

    def test_noise_robustness(self):
        rng = np.random.default_rng(42)
        cycles = np.arange(4096)
        wave = np.sin(2 * math.pi * cycles / 48.0) + 0.3 * rng.standard_normal(
            len(cycles)
        )
        assert dominant_period_cycles(wave) == pytest.approx(48.0, rel=0.1)

    def test_accepts_plain_lists(self):
        wave = [math.sin(2 * math.pi * n / 20.0) for n in range(512)]
        assert dominant_period_cycles(wave) == pytest.approx(20.0, rel=0.05)


class TestRelativeMetricsGuards:
    def test_benchmark_mismatch_rejected(self):
        with pytest.raises(SimulationError, match="comparing"):
            result(benchmark="swim").relative_to(result(benchmark="gzip"))

    def test_nominal_ratios(self):
        technique = result(
            technique="tuning", instructions=1000, energy_joules=1.5
        )
        metrics = technique.relative_to(result())
        assert metrics.slowdown == pytest.approx(2.0)
        assert metrics.energy == pytest.approx(3.0)
        assert metrics.energy_delay == pytest.approx(6.0)

    def test_zero_ipc_yields_inf_slowdown(self):
        stalled = result(technique="tuning", cycles=0)
        metrics = stalled.relative_to(result())
        assert math.isinf(metrics.slowdown)
        assert math.isinf(metrics.energy_delay)

    def test_zero_energy_base_yields_inf_energy(self):
        technique = result(technique="tuning")
        metrics = technique.relative_to(result(energy_joules=0.0))
        assert math.isinf(metrics.energy)
        assert math.isinf(metrics.energy_delay)
        assert metrics.slowdown == pytest.approx(1.0)

    def test_zero_instruction_run_still_raises(self):
        # No instructions at all cannot be normalized; the explicit
        # SimulationError (not a ZeroDivisionError) is the contract.
        empty = result(technique="tuning", instructions=0)
        with pytest.raises(SimulationError, match="no instructions"):
            empty.relative_to(result())
