"""Tests for the Heun integrator and the cycle-level power supply."""

import math

import numpy as np
import pytest

from repro.config import PowerSupplyConfig, TABLE1_SUPPLY
from repro.errors import ConfigurationError
from repro.power import HeunIntegrator, PowerSupply, RLCAnalysis, waveforms


class TestHeunIntegrator:
    def test_steady_state_is_stable(self):
        integrator = HeunIntegrator(TABLE1_SUPPLY)
        integrator.reset(70.0)
        for _ in range(1000):
            integrator.step(70.0)
        # Raw voltage holds at the IR droop with no drift.
        expected = -TABLE1_SUPPLY.resistance_ohms * 70.0
        assert integrator.state.voltage == pytest.approx(expected, rel=1e-6)
        assert integrator.state.inductor_current == pytest.approx(70.0, rel=1e-6)

    def test_step_response_rings_at_damped_frequency(self):
        integrator = HeunIntegrator(TABLE1_SUPPLY, substeps=4)
        integrator.reset(0.0)
        voltages = [integrator.step(20.0) for _ in range(400)]
        analysis = RLCAnalysis(TABLE1_SUPPLY)
        # Zero crossings of the ring should be half a damped period apart.
        centred = np.asarray(voltages) + TABLE1_SUPPLY.resistance_ohms * 20.0
        signs = np.sign(centred)
        crossings = np.where(np.diff(signs) != 0)[0]
        assert len(crossings) >= 3
        half_period = np.mean(np.diff(crossings[:4]))
        expected = math.pi / analysis.damped_angular_frequency
        expected_cycles = expected * TABLE1_SUPPLY.clock_hz
        assert half_period == pytest.approx(expected_cycles, rel=0.06)

    def test_ring_decays_at_damping_rate(self):
        integrator = HeunIntegrator(TABLE1_SUPPLY)
        integrator.reset(0.0)
        voltages = np.asarray([integrator.step(40.0) for _ in range(500)])
        centred = voltages + TABLE1_SUPPLY.resistance_ohms * 40.0
        analysis = RLCAnalysis(TABLE1_SUPPLY)
        period = analysis.resonant_period_cycles
        peak1 = np.max(np.abs(centred[:period]))
        peak2 = np.max(np.abs(centred[period : 2 * period]))
        assert peak2 / peak1 == pytest.approx(
            analysis.amplitude_decay_per_period, rel=0.12
        )

    def test_substeps_converge(self):
        coarse = HeunIntegrator(TABLE1_SUPPLY, substeps=1)
        fine = HeunIntegrator(TABLE1_SUPPLY, substeps=8)
        for integrator in (coarse, fine):
            integrator.reset(0.0)
        for _ in range(300):
            v1 = coarse.step(30.0)
            v2 = fine.step(30.0)
        assert v1 == pytest.approx(v2, abs=2e-4)

    def test_rejects_bad_substeps(self):
        with pytest.raises(ConfigurationError):
            HeunIntegrator(TABLE1_SUPPLY, substeps=0)


class TestPowerSupply:
    def test_constant_current_reports_zero_deviation(self):
        supply = PowerSupply(TABLE1_SUPPLY, initial_current=105.0)
        voltages = supply.run(waveforms.constant(500, 105.0))
        assert np.max(np.abs(voltages)) < 1e-9
        assert supply.violation_cycles == 0

    def test_ir_drop_is_subtracted(self):
        """A large constant current must not register as noise (Section 4.1)."""
        supply = PowerSupply(TABLE1_SUPPLY, initial_current=0.0)
        # Without IR correction a 105 A step would settle at -39 mV.
        supply.run(waveforms.constant(3000, 105.0))
        assert abs(supply.last_voltage) < 1e-3

    def test_resonant_square_wave_violates(self):
        analysis = RLCAnalysis(TABLE1_SUPPLY)
        wave = waveforms.square_wave(
            2000, analysis.resonant_period_cycles, amplitude_pp=50.0, mean=70.0
        )
        supply = PowerSupply(TABLE1_SUPPLY, initial_current=70.0)
        supply.run(wave)
        assert supply.violation_cycles > 0

    def test_same_amplitude_off_band_is_absorbed(self):
        """Key observation 1: variations outside the band are absorbed."""
        wave = waveforms.square_wave(2000, 10, amplitude_pp=50.0, mean=70.0)
        supply = PowerSupply(TABLE1_SUPPLY, initial_current=70.0)
        supply.run(wave)
        assert supply.violation_cycles == 0

    def test_low_frequency_square_wave_absorbed(self):
        wave = waveforms.square_wave(4000, 1500, amplitude_pp=60.0, mean=70.0)
        supply = PowerSupply(TABLE1_SUPPLY, initial_current=70.0)
        supply.run(wave)
        assert supply.violation_cycles == 0

    def test_violation_counters(self):
        analysis = RLCAnalysis(TABLE1_SUPPLY)
        wave = waveforms.square_wave(
            1500, analysis.resonant_period_cycles, amplitude_pp=60.0, mean=0.0
        )
        supply = PowerSupply(TABLE1_SUPPLY)
        supply.run(wave)
        assert supply.violation_events >= 1
        assert 0 < supply.violation_fraction < 1
        assert supply.first_violation_cycle is not None

    def test_trace_recording(self):
        supply = PowerSupply(TABLE1_SUPPLY, record=True)
        supply.run(waveforms.constant(50, 10.0))
        currents, voltages, violations = supply.trace.as_arrays()
        assert len(currents) == len(voltages) == len(violations) == 50
        assert np.all(currents == 10.0)

    def test_reset_clears_state(self):
        supply = PowerSupply(TABLE1_SUPPLY, record=True)
        analysis = RLCAnalysis(TABLE1_SUPPLY)
        supply.run(
            waveforms.square_wave(
                1500, analysis.resonant_period_cycles, 60.0, mean=0.0
            )
        )
        assert supply.violation_cycles > 0
        supply.reset(70.0)
        assert supply.cycle == 0
        assert supply.violation_cycles == 0
        assert supply.first_violation_cycle is None
        assert supply.trace.currents == []

    def test_violation_fraction_zero_before_run(self):
        supply = PowerSupply(TABLE1_SUPPLY)
        assert supply.violation_fraction == 0.0

    def test_reset_violation_tracking_keeps_cumulative_counters(self):
        analysis = RLCAnalysis(TABLE1_SUPPLY)
        wave = waveforms.square_wave(
            1500, analysis.resonant_period_cycles, amplitude_pp=60.0, mean=70.0
        )
        supply = PowerSupply(TABLE1_SUPPLY, initial_current=70.0)
        supply.run(wave)
        assert supply.first_violation_cycle is not None
        cycles_before = supply.violation_cycles
        events_before = supply.violation_events
        boundary = supply.cycle

        supply.reset_violation_tracking()
        # Cumulative counters survive -- callers difference them against
        # their own snapshots -- but the in-progress bookkeeping is gone.
        assert supply.violation_cycles == cycles_before
        assert supply.violation_events == events_before
        assert supply.first_violation_cycle is None

        # Violations after the boundary register afresh: a new first cycle
        # on the post-boundary side and at least one new event.
        supply.run(wave)
        assert supply.first_violation_cycle is not None
        assert supply.first_violation_cycle >= boundary
        assert supply.violation_events > events_before


class TestWaveforms:
    def test_square_wave_levels(self):
        wave = waveforms.square_wave(100, 10, amplitude_pp=20.0, mean=50.0)
        assert set(np.unique(wave)) == {40.0, 60.0}

    def test_square_wave_window(self):
        wave = waveforms.square_wave(
            100, 10, amplitude_pp=20.0, mean=50.0, start=20, end=60
        )
        assert np.all(wave[:20] == 50.0)
        assert np.all(wave[60:] == 50.0)
        assert np.any(wave[20:60] != 50.0)

    def test_sine_wave_bounds(self):
        wave = waveforms.sine_wave(1000, 50, amplitude_pp=30.0, mean=70.0)
        assert np.max(wave) == pytest.approx(85.0, abs=0.1)
        assert np.min(wave) == pytest.approx(55.0, abs=0.1)

    def test_triangle_wave_mean(self):
        wave = waveforms.triangle_wave(1000, 50, amplitude_pp=30.0, mean=70.0)
        assert np.mean(wave) == pytest.approx(70.0, abs=0.5)

    def test_step_waveform(self):
        wave = waveforms.step(100, before=35.0, after=105.0, at_cycle=40)
        assert np.all(wave[:40] == 35.0)
        assert np.all(wave[40:] == 105.0)

    def test_burst_half_wave_count(self):
        wave = waveforms.burst(
            1000, 100, amplitude_pp=20.0, mean=0.0, start=100, half_waves=3
        )
        active = np.nonzero(wave != 0.0)[0]
        assert active[0] == 100
        assert active[-1] == 100 + 3 * 50 - 1

    def test_chirp_length(self):
        wave = waveforms.chirp(500, 80, 120, amplitude_pp=10.0)
        assert len(wave) == 500

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            waveforms.square_wave(0, 10, 1.0)
        with pytest.raises(ConfigurationError):
            waveforms.square_wave(10, 1, 1.0)
        with pytest.raises(ConfigurationError):
            waveforms.step(10, 0.0, 1.0, at_cycle=50)
        with pytest.raises(ConfigurationError):
            waveforms.burst(100, 10, 1.0, 0.0, start=0, half_waves=0)
        with pytest.raises(ConfigurationError):
            waveforms.square_wave(100, 10, 1.0, start=50, end=10)
