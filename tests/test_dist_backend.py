"""End-to-end tests for the distributed sweep backend (repro.dist).

The invariants under test are the ones ROADMAP.md promises for every
backend: byte-identical aggregates against the sequential reference,
checkpoints that resume across backends, graceful degradation (never a
stalled or wrong sweep), and deterministic incident reporting when the
network misbehaves.  Each test launches real worker subprocesses over
the unix (or TCP) transport -- nothing is mocked.
"""

import dataclasses
import json

from repro.core import ResonanceTuningController
from repro.faults.chaos import PartitionWorkerOnce
from repro.sim import (
    BenchmarkRunner,
    ResilienceConfig,
    SequentialBackend,
    SweepConfig,
    select_backend,
)


def tuning_factory(supply, processor):
    """Module-level factory: picklable by reference into dist workers."""
    return ResonanceTuningController(supply, processor)


def fingerprint(summary):
    return json.dumps(dataclasses.asdict(summary), sort_keys=True)


SMALL = SweepConfig(n_cycles=2500, warmup_cycles=200)
BENCHMARKS = ("swim", "parser")


def dist_resilience(**overrides):
    base = dict(workers=2, backend="dist", connect_deadline_s=30.0)
    base.update(overrides)
    return ResilienceConfig(**base)


class TestDistEquivalence:
    def test_dist_matches_sequential_byte_for_byte(self):
        golden = BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=BENCHMARKS
        )
        dist = BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=BENCHMARKS,
            resilience=dist_resilience(),
        )
        assert fingerprint(dist) == fingerprint(golden)
        assert getattr(dist, "incidents", ()) == ()

    def test_tcp_transport_matches_sequential(self):
        golden = BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=("swim",)
        )
        dist = BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=("swim",),
            resilience=dist_resilience(dist_transport="tcp"),
        )
        assert fingerprint(dist) == fingerprint(golden)

    def test_dist_resumes_a_sequential_checkpoint(self, tmp_path):
        """A sweep interrupted on one backend finishes on another."""
        checkpoint = str(tmp_path / "sweep.json")
        golden = BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=BENCHMARKS
        )
        # First leg: sequential, covering only the first benchmark.
        BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=BENCHMARKS[:1],
            resilience=ResilienceConfig(checkpoint_path=checkpoint),
        )
        # Second leg: distributed resume of the same checkpoint.
        resumed = BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=BENCHMARKS,
            resilience=dist_resilience(
                checkpoint_path=checkpoint, resume=True
            ),
        )
        assert fingerprint(resumed) == fingerprint(golden)


class TestDistDegradation:
    def test_degrades_when_no_worker_connects_in_time(self):
        """An impossible connect deadline must not stall the sweep: the
        scheduler falls back to a local backend, records a DistDegraded
        incident, and still produces the golden aggregates."""
        golden = BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=BENCHMARKS
        )
        degraded = BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=BENCHMARKS,
            resilience=dist_resilience(connect_deadline_s=0.01),
        )
        assert fingerprint(degraded) == fingerprint(golden)
        incidents = getattr(degraded, "incidents", ())
        assert any(i.error_type == "DistDegraded" for i in incidents)

    def test_main_bound_factory_degrades_to_sequential(self, monkeypatch):
        """Factories living in __main__ cannot be imported by a fresh
        worker interpreter; select_backend must degrade up front even
        though such a factory pickles fine inside this process."""
        import sys

        def main_factory(supply, processor):  # pragma: no cover - not run
            return ResonanceTuningController(supply, processor)

        # Masquerade as a script-defined factory: pickling by reference
        # resolves through sys.modules["__main__"], so it succeeds here
        # and would only explode inside the worker.
        main_factory.__module__ = "__main__"
        main_factory.__qualname__ = "main_factory"
        monkeypatch.setattr(
            sys.modules["__main__"], "main_factory", main_factory,
            raising=False,
        )
        runner = BenchmarkRunner(SMALL)
        backend = select_backend(
            runner, dist_resilience(), main_factory, n_pending=4
        )
        assert isinstance(backend, SequentialBackend)

    def test_importable_factory_selects_distributed(self):
        from repro.dist.backend import DistributedBackend

        runner = BenchmarkRunner(SMALL)
        backend = select_backend(
            runner, dist_resilience(), tuning_factory, n_pending=4
        )
        assert isinstance(backend, DistributedBackend)


class TestLeaseExpiryDeterminism:
    def run_partitioned_sweep(self, tmp_path, tag):
        """One sweep with a worker partitioned past its lease deadline."""
        marker = str(tmp_path / f"partition-{tag}.marker")
        transform = PartitionWorkerOnce(
            marker, "swim", after_cycles=300, silence_s=2.5
        )
        runner = BenchmarkRunner(SMALL, supply_transform=transform)
        return runner.sweep(
            tuning_factory, benchmarks=BENCHMARKS,
            resilience=dist_resilience(lease_timeout_s=0.75),
        )

    def test_expired_lease_requeues_deterministically(self, tmp_path):
        """Same partition, same seed: the stolen cell is retried in the
        same order and yields the same incident trail both times -- and
        the aggregates still match an undisturbed sequential sweep."""
        golden = BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=BENCHMARKS
        )
        first = self.run_partitioned_sweep(tmp_path, "a")
        second = self.run_partitioned_sweep(tmp_path, "b")

        assert fingerprint(first) == fingerprint(golden)
        assert fingerprint(second) == fingerprint(golden)

        def trail(summary):
            return [
                (i.error_type, i.benchmark)
                for i in getattr(summary, "incidents", ())
            ]

        assert trail(first) == trail(second)
        assert ("LeaseExpired", "swim") in trail(first)
