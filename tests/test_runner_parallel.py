"""Tests for the parallel sweep backend (ResilienceConfig.workers).

The contract under test: a sweep dispatched to worker processes produces
aggregates, checkpoint files and failure reports bit-identical to the
sequential path, resumes interchangeably with it, degrades to sequential
when the cell spec cannot pickle, and enforces per-cell timeouts without
leaving a live background thread behind.
"""

import dataclasses
import json
import threading
import time

import pytest

from repro.core import ResonanceTuningController
from repro.errors import ConfigurationError
from repro.sim import (
    BenchmarkRunner,
    ResilienceConfig,
    SweepConfig,
    load_checkpoint,
)
from repro.sim.runner import _cell_key


def tuning_factory(supply, processor):
    """Module-level (hence picklable) controller factory."""
    return ResonanceTuningController(supply, processor)


def summary_fingerprint(summary):
    """Byte-exact serialisation of a TechniqueSummary for equality checks.

    ``timings`` is attached outside the dataclass fields, so fingerprints
    are timing-independent by construction.
    """
    return json.dumps(dataclasses.asdict(summary), sort_keys=True)


SMALL = SweepConfig(n_cycles=2500, warmup_cycles=200)
BENCHMARKS = ("swim", "gzip", "parser")


class HungSupply:
    """Supply whose step blocks far beyond any test timeout."""

    def __init__(self, supply):
        self._supply = supply

    def step(self, cpu_current):
        time.sleep(60)
        return self._supply.step(cpu_current)

    def __getattr__(self, name):
        return getattr(self._supply, name)


class HangBenchmark:
    """Picklable supply transform hanging one chosen benchmark."""

    def __init__(self, target):
        self.target = target

    def __call__(self, supply, benchmark):
        return HungSupply(supply) if benchmark == self.target else supply


# ----------------------------------------------------------------------
# Sequential / parallel equivalence
# ----------------------------------------------------------------------

class TestParallelEquivalence:
    def sequential(self, **kwargs):
        runner = BenchmarkRunner(SMALL)
        return runner.sweep(tuning_factory, benchmarks=BENCHMARKS, **kwargs)

    def test_aggregates_bit_identical(self):
        expected = self.sequential()
        with BenchmarkRunner(SMALL) as runner:
            parallel = runner.sweep(
                tuning_factory,
                benchmarks=BENCHMARKS,
                resilience=ResilienceConfig(workers=3),
            )
        assert summary_fingerprint(parallel) == summary_fingerprint(expected)
        assert parallel == expected
        assert parallel.timings["workers"] == 3.0

    def test_checkpoint_files_byte_identical(self, tmp_path):
        seq_path = str(tmp_path / "seq.json")
        par_path = str(tmp_path / "par.json")
        self.sequential(
            resilience=ResilienceConfig(checkpoint_path=seq_path)
        )
        with BenchmarkRunner(SMALL) as runner:
            runner.sweep(
                tuning_factory,
                benchmarks=BENCHMARKS,
                resilience=ResilienceConfig(checkpoint_path=par_path, workers=3),
            )
        seq_bytes = (tmp_path / "seq.json").read_bytes()
        par_bytes = (tmp_path / "par.json").read_bytes()
        assert seq_bytes == par_bytes

    def test_seed_grid_matches_and_keys_cells_by_seed(self, tmp_path):
        path = str(tmp_path / "ck.json")
        seeds = (None, 7, 8)
        expected = self.sequential(seeds=seeds)
        with BenchmarkRunner(SMALL) as runner:
            parallel = runner.sweep(
                tuning_factory,
                benchmarks=BENCHMARKS,
                seeds=seeds,
                resilience=ResilienceConfig(checkpoint_path=path, workers=4),
            )
        assert summary_fingerprint(parallel) == summary_fingerprint(expected)
        assert len(parallel.per_benchmark) == len(BENCHMARKS) * len(seeds)
        assert set(load_checkpoint(path)["cells"]) == {
            _cell_key(0, name, "resonance-tuning", seed)
            for name in BENCHMARKS
            for seed in seeds
        }

    def test_sequential_resume_of_parallel_checkpoint(self, tmp_path):
        """Checkpoints are backend-agnostic: write parallel, resume sequential."""
        path = str(tmp_path / "ck.json")
        with BenchmarkRunner(SMALL) as runner:
            runner.sweep(
                tuning_factory,
                benchmarks=BENCHMARKS[:2],
                resilience=ResilienceConfig(checkpoint_path=path, workers=2),
            )
        resumed = BenchmarkRunner(SMALL).sweep(
            tuning_factory,
            benchmarks=BENCHMARKS,
            resilience=ResilienceConfig(checkpoint_path=path, resume=True),
        )
        assert summary_fingerprint(resumed) == summary_fingerprint(
            self.sequential()
        )

    def test_parallel_resume_after_simulated_kill(self, tmp_path):
        path = str(tmp_path / "ck.json")

        class Kill(BaseException):
            """Out of Exception's reach: must abort, not retry."""

        remaining = {"cells": 2}

        def kill_after_two(name, metrics):
            remaining["cells"] -= 1
            if remaining["cells"] == 0:
                raise Kill()

        with pytest.raises(Kill):
            self.sequential(
                progress=kill_after_two,
                resilience=ResilienceConfig(checkpoint_path=path),
            )
        assert len(load_checkpoint(path)["cells"]) == 2

        with BenchmarkRunner(SMALL) as runner:
            resumed = runner.sweep(
                tuning_factory,
                benchmarks=BENCHMARKS,
                resilience=ResilienceConfig(
                    checkpoint_path=path, resume=True, workers=3
                ),
            )
        assert summary_fingerprint(resumed) == summary_fingerprint(
            self.sequential()
        )

    def test_kill_mid_parallel_sweep_checkpoints_completed_cells(self, tmp_path):
        path = str(tmp_path / "ck.json")

        class Kill(BaseException):
            pass

        def kill_on_first(name, metrics):
            raise Kill()

        with BenchmarkRunner(SMALL) as runner:
            with pytest.raises(Kill):
                runner.sweep(
                    tuning_factory,
                    benchmarks=BENCHMARKS,
                    progress=kill_on_first,
                    resilience=ResilienceConfig(checkpoint_path=path, workers=3),
                )
        # whatever completed before the kill is durable and resumable
        assert len(load_checkpoint(path)["cells"]) >= 1
        resumed = BenchmarkRunner(SMALL).sweep(
            tuning_factory,
            benchmarks=BENCHMARKS,
            resilience=ResilienceConfig(checkpoint_path=path, resume=True),
        )
        assert summary_fingerprint(resumed) == summary_fingerprint(
            self.sequential()
        )


# ----------------------------------------------------------------------
# Degraded modes
# ----------------------------------------------------------------------

class TestFallbacks:
    def test_unpicklable_factory_degrades_to_sequential(self):
        expected = BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=BENCHMARKS[:2]
        )
        unpicklable = lambda s, p: ResonanceTuningController(s, p)  # noqa: E731
        with BenchmarkRunner(SMALL) as runner:
            with pytest.warns(RuntimeWarning, match="not picklable"):
                summary = runner.sweep(
                    unpicklable,
                    benchmarks=BENCHMARKS[:2],
                    resilience=ResilienceConfig(workers=4),
                )
        assert summary_fingerprint(summary) == summary_fingerprint(expected)
        assert summary.timings["workers"] == 1.0

    def test_single_pending_cell_runs_in_process(self):
        with BenchmarkRunner(SMALL) as runner:
            summary = runner.sweep(
                tuning_factory,
                benchmarks=("gzip",),
                resilience=ResilienceConfig(workers=4),
            )
        assert summary.timings["workers"] == 1.0
        assert runner._executor is None  # the pool was never spun up

    def test_workers_validation(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(workers=-1)

    def test_zero_workers_runs_sequentially_on_auto(self):
        # 0 = "no local workers": meaningful for the distributed backend
        # (external workers only); on auto it degrades to sequential.
        with BenchmarkRunner(SMALL) as runner:
            summary = runner.sweep(
                tuning_factory,
                benchmarks=("gzip",),
                resilience=ResilienceConfig(workers=0),
            )
        assert summary.timings["workers"] == 1.0
        assert runner._executor is None


# ----------------------------------------------------------------------
# Timeouts
# ----------------------------------------------------------------------

class TestParallelTimeouts:
    def test_parallel_timeout_becomes_failure_report(self):
        with BenchmarkRunner(
            SMALL, supply_transform=HangBenchmark("swim")
        ) as runner:
            summary = runner.sweep(
                tuning_factory,
                benchmarks=("swim", "gzip"),
                resilience=ResilienceConfig(timeout_s=1.5, workers=2),
            )
        assert len(summary.failures) == 1
        failure = summary.failures[0]
        assert failure.benchmark == "swim"
        assert failure.error_type == "FaultError"
        assert "timeout" in failure.message
        assert [row.benchmark for row in summary.per_benchmark] == ["gzip"]

    def test_timed_out_cell_leaves_no_background_thread(self):
        """The sequential timeout preempts in place: thread count returns
        to baseline instead of leaking an abandoned daemon thread."""
        baseline = threading.active_count()
        runner = BenchmarkRunner(SMALL, supply_transform=HangBenchmark("swim"))
        summary = runner.sweep(
            tuning_factory,
            benchmarks=("swim", "gzip"),
            resilience=ResilienceConfig(timeout_s=0.5),
        )
        assert len(summary.failures) == 1
        assert threading.active_count() == baseline

    def test_sequential_and_parallel_failures_identical(self):
        def run(workers):
            with BenchmarkRunner(
                SMALL, supply_transform=HangBenchmark("swim")
            ) as runner:
                return runner.sweep(
                    tuning_factory,
                    benchmarks=("swim", "gzip"),
                    resilience=ResilienceConfig(timeout_s=1.0, workers=workers),
                )

        assert summary_fingerprint(run(1)) == summary_fingerprint(run(2))


# ----------------------------------------------------------------------
# Timings diagnostics
# ----------------------------------------------------------------------

class TestTimings:
    def test_timings_breakdown_present(self):
        summary = BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=("gzip",)
        )
        timings = summary.timings
        for key in (
            "setup", "execute", "checkpoint_io", "aggregate", "total",
            "workers", "cells_total", "cells_cached",
        ):
            assert key in timings
        assert timings["total"] >= timings["execute"] >= 0.0
        assert timings["cells_total"] == 1.0
        assert timings["cells_cached"] == 0.0

    def test_timings_do_not_leak_into_equality_or_serialisation(self):
        first = BenchmarkRunner(SMALL).sweep(tuning_factory, benchmarks=("gzip",))
        second = BenchmarkRunner(SMALL).sweep(tuning_factory, benchmarks=("gzip",))
        assert first.timings["total"] != second.timings["total"] or True
        assert first == second
        assert "timings" not in dataclasses.asdict(first)


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------

class TestWorkersFlag:
    def test_workers_flag_round_trip(self):
        from repro.cli import build_parser
        from repro.experiments.registry import resilience_from_args

        parser = build_parser()
        args = parser.parse_args(["experiment", "table3", "--workers", "2"])
        resilience = resilience_from_args(args)
        assert resilience == ResilienceConfig(workers=2)

    def test_default_workers_mean_no_resilience(self):
        from repro.cli import build_parser
        from repro.experiments.registry import resilience_from_args

        parser = build_parser()
        args = parser.parse_args(["experiment", "table3"])
        assert resilience_from_args(args) is None
