"""Tests for the fault-injection subsystem (repro.faults).

Covers: determinism of every fault model under a fixed seed, the semantics
of each model, composition through FaultySensor, the resonant attacker
(supply wrapper and workload mutator), and detector/controller behaviour
when each fault model is mounted -- including the bounded second-level
hold under 20 % dropped samples the acceptance criteria require.
"""

import math

import pytest

from repro.config import (
    TABLE1_PROCESSOR,
    TABLE1_SUPPLY,
    TABLE1_TUNING,
    TuningConfig,
)
from repro.core import CurrentSensor, ResonanceTuningController
from repro.errors import ConfigurationError, FaultError
from repro.faults import (
    BurstNoiseFault,
    DelayJitterFault,
    DriftFault,
    DroppedSampleFault,
    FaultySensor,
    ResonantAttacker,
    SaturationFault,
    StuckAtFault,
    resonant_attack_profile,
)
from repro.power.rlc import RLCAnalysis
from repro.power.supply import PowerSupply
from repro.sim import BenchmarkRunner, SweepConfig
from repro.uarch import SPEC2K


def drive(controller, wave, start_cycle=0):
    """Open-loop drive: feed a current waveform through the control loop."""
    directives = []
    for offset, current in enumerate(wave):
        cycle = start_cycle + offset
        directives.append(controller.directives(cycle))
        controller.observe(cycle, current, 0.0)
    return directives


def square_wave(period, n_cycles, low=40.0, high=90.0):
    half = period // 2
    return [high if (c // half) % 2 == 0 else low for c in range(n_cycles)]


RESONANT_PERIOD = RLCAnalysis(TABLE1_SUPPLY).resonant_period_cycles


# ----------------------------------------------------------------------
# Determinism and reset
# ----------------------------------------------------------------------

ALL_MODELS = [
    lambda seed: StuckAtFault(70.0, start_cycle=100, duration_cycles=200, seed=seed),
    lambda seed: DroppedSampleFault(0.3, seed=seed),
    lambda seed: BurstNoiseFault(20.0, burst_probability=0.05,
                                 burst_length_cycles=10, seed=seed),
    lambda seed: DriftFault(5.0, max_offset_amps=30.0, seed=seed),
    lambda seed: SaturationFault(80.0, seed=seed),
    lambda seed: DelayJitterFault(5, 0.4, seed=seed),
]


@pytest.mark.parametrize("build", ALL_MODELS)
def test_fault_model_deterministic_under_fixed_seed(build):
    wave = square_wave(20, 600)
    outputs = []
    for _ in range(2):
        fault = build(42)
        outputs.append([fault.apply(c, v) for c, v in enumerate(wave)])
    assert outputs[0] == outputs[1]


@pytest.mark.parametrize("build", ALL_MODELS)
def test_fault_model_reset_restores_initial_state(build):
    wave = square_wave(14, 400)
    fault = build(7)
    first = [fault.apply(c, v) for c, v in enumerate(wave)]
    fault.reset()
    second = [fault.apply(c, v) for c, v in enumerate(wave)]
    assert first == second


def test_faulty_sensor_deterministic_end_to_end():
    readings = []
    for _ in range(2):
        sensor = FaultySensor([
            DroppedSampleFault(0.2, seed=1),
            BurstNoiseFault(10.0, burst_probability=0.1, seed=2),
        ])
        readings.append(
            [sensor.read(v) for v in square_wave(18, 500)]
        )
    assert readings[0] == readings[1]


# ----------------------------------------------------------------------
# Individual model semantics
# ----------------------------------------------------------------------

class TestStuckAt:
    def test_sticks_only_inside_window(self):
        fault = StuckAtFault(55.0, start_cycle=10, duration_cycles=5)
        assert fault.apply(9, 80.0) == 80.0
        assert fault.apply(10, 80.0) == 55.0
        assert fault.apply(14, 80.0) == 55.0
        assert fault.apply(15, 80.0) == 80.0

    def test_sticks_forever_without_duration(self):
        fault = StuckAtFault(55.0, start_cycle=0)
        assert fault.apply(10 ** 6, 80.0) == 55.0

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            StuckAtFault(55.0, start_cycle=-1)
        with pytest.raises(ConfigurationError):
            StuckAtFault(55.0, duration_cycles=0)


class TestDroppedSamples:
    def test_drop_holds_last_delivered_value(self):
        fault = DroppedSampleFault(1.0, seed=0)  # drops everything possible
        assert fault.apply(0, 61.0) == 61.0      # nothing to hold yet
        assert fault.apply(1, 99.0) == 61.0
        assert fault.apply(2, 12.0) == 61.0

    def test_zero_probability_is_transparent(self):
        fault = DroppedSampleFault(0.0, seed=0)
        wave = square_wave(12, 200)
        assert [fault.apply(c, v) for c, v in enumerate(wave)] == wave

    def test_drop_rate_close_to_requested(self):
        fault = DroppedSampleFault(0.3, seed=5)
        wave = [float(i) for i in range(4000)]  # all distinct
        out = [fault.apply(c, v) for c, v in enumerate(wave)]
        dropped = sum(1 for v, o in zip(wave, out) if v != o)
        assert 0.25 < dropped / len(wave) < 0.35

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            DroppedSampleFault(1.5)


class TestBurstNoise:
    def test_noise_confined_to_bursts(self):
        fault = BurstNoiseFault(30.0, burst_probability=0.02,
                                burst_length_cycles=8, seed=3)
        wave = [70.0] * 3000
        out = [fault.apply(c, v) for c, v in enumerate(wave)]
        noisy = [abs(o - 70.0) for o in out]
        assert any(n > 0 for n in noisy)            # bursts occurred
        assert max(noisy) <= 15.0 + 1e-9            # bounded by half p-p
        # quiet cycles dominate at this burst probability
        assert sum(1 for n in noisy if n == 0) > len(wave) / 2


class TestDrift:
    def test_offset_grows_then_clamps(self):
        fault = DriftFault(10.0, max_offset_amps=20.0)
        assert fault.apply(0, 50.0) == 50.0
        assert fault.apply(1000, 50.0) == pytest.approx(60.0)
        assert fault.apply(10_000, 50.0) == pytest.approx(70.0)  # clamped


class TestSaturation:
    def test_clips_full_scale_and_floor(self):
        fault = SaturationFault(80.0, min_amps=20.0)
        assert fault.apply(0, 95.0) == 80.0
        assert fault.apply(1, 10.0) == 20.0
        assert fault.apply(2, 50.0) == 50.0

    def test_rejects_inverted_range(self):
        with pytest.raises(ConfigurationError):
            SaturationFault(10.0, min_amps=10.0)


class TestDelayJitter:
    def test_jittered_reports_are_stale_readings(self):
        fault = DelayJitterFault(4, 1.0, seed=9)  # always jitter
        wave = [float(i) for i in range(100)]
        out = [fault.apply(c, v) for c, v in enumerate(wave)]
        # every report is a value seen at most 4 cycles earlier
        for cycle, report in enumerate(out):
            assert report in wave[max(0, cycle - 4): cycle + 1]
        assert out != wave  # and staleness actually happened


# ----------------------------------------------------------------------
# Composition
# ----------------------------------------------------------------------

class TestFaultySensor:
    def test_composes_in_order(self):
        # drift (+20 A after clamp) then saturation at 80 A: order matters.
        drift_then_sat = FaultySensor(
            [DriftFault(1000.0, max_offset_amps=20.0), SaturationFault(80.0)],
            base=CurrentSensor(),
        )
        sat_then_drift = FaultySensor(
            [SaturationFault(80.0), DriftFault(1000.0, max_offset_amps=20.0)],
            base=CurrentSensor(),
        )
        for _ in range(100):
            a = drift_then_sat.read(75.0)
            b = sat_then_drift.read(75.0)
        assert a == 80.0   # saturation last clips the drifted reading
        assert b == 95.0   # drift last escapes the clamp

    def test_base_sensor_still_quantizes(self):
        sensor = FaultySensor([], base=CurrentSensor(quantum_amps=4.0))
        assert sensor.read(69.0) == 68.0

    def test_reset_restores_determinism(self):
        sensor = FaultySensor([DroppedSampleFault(0.5, seed=11)])
        wave = square_wave(16, 300)
        first = [sensor.read(v) for v in wave]
        sensor.reset()
        second = [sensor.read(v) for v in wave]
        assert first == second

    def test_rejects_non_fault_entries(self):
        with pytest.raises(ConfigurationError):
            FaultySensor([object()])


# ----------------------------------------------------------------------
# Resonant attacker
# ----------------------------------------------------------------------

class TestResonantAttacker:
    def test_defaults_to_supply_resonant_period(self):
        attacker = ResonantAttacker(PowerSupply(TABLE1_SUPPLY), 10.0)
        assert attacker.period_cycles == RESONANT_PERIOD

    def test_square_wave_alternates_at_half_period(self):
        supply = PowerSupply(TABLE1_SUPPLY, initial_current=35.0)
        attacker = ResonantAttacker(supply, 10.0, period_cycles=20, seed=0)
        injections = []
        for _ in range(200):
            injections.append(attacker.attack_current())
            attacker.step(35.0)
        assert set(injections) == {0.0, 10.0}
        # runs of equal value are exactly half a period long (after phase)
        runs = []
        count = 1
        for a, b in zip(injections, injections[1:]):
            if a == b:
                count += 1
            else:
                runs.append(count)
                count = 1
        assert set(runs[1:]) == {10}

    def test_deterministic_given_seed(self):
        def run(seed):
            supply = PowerSupply(TABLE1_SUPPLY, initial_current=35.0)
            attacker = ResonantAttacker(supply, 8.0, seed=seed)
            return [attacker.step(40.0) for _ in range(500)]

        assert run(3) == run(3)

    def test_episodes_include_quiet_gaps(self):
        supply = PowerSupply(TABLE1_SUPPLY, initial_current=35.0)
        attacker = ResonantAttacker(
            supply, 10.0, period_cycles=10, episode_periods=2,
            gap_cycles=30, seed=0,
        )
        injections = []
        for _ in range(200):
            injections.append(attacker.attack_current())
            attacker.step(35.0)
        assert 0.0 in injections and 10.0 in injections
        # a 20-cycle episode then 30 quiet cycles: at most 40 % duty
        assert sum(1 for i in injections if i) <= 0.45 * len(injections)

    def test_attack_at_resonance_builds_larger_swing_than_off_band(self):
        def peak_deviation(period):
            supply = PowerSupply(TABLE1_SUPPLY, initial_current=35.0)
            attacker = ResonantAttacker(supply, 10.0, period_cycles=period,
                                        seed=0)
            return max(abs(attacker.step(35.0)) for _ in range(3000))

        assert peak_deviation(RESONANT_PERIOD) > 2 * peak_deviation(10)

    def test_delegates_supply_attributes(self):
        supply = PowerSupply(TABLE1_SUPPLY, initial_current=35.0)
        attacker = ResonantAttacker(supply, 5.0)
        assert attacker.config is supply.config
        attacker.step(35.0)
        assert attacker.violation_cycles == supply.violation_cycles

    def test_rejects_bad_parameters(self):
        supply = PowerSupply(TABLE1_SUPPLY)
        with pytest.raises(ConfigurationError):
            ResonantAttacker(supply, -1.0)
        with pytest.raises(ConfigurationError):
            ResonantAttacker(supply, 1.0, period_cycles=1)


class TestAttackProfileMutator:
    def test_mutated_profile_oscillates_at_resonant_period(self):
        profile = resonant_attack_profile(SPEC2K["gzip"], TABLE1_SUPPLY,
                                          ipc_estimate=4.0)
        assert profile.osc_period_instrs == pytest.approx(
            RESONANT_PERIOD * 4.0, rel=0.05
        )
        assert profile.osc_kind == "serial"
        assert profile.osc_boost_ilp
        assert "resonant attacker" in profile.description

    def test_mutated_profile_is_still_valid(self):
        # replace() re-runs WorkloadProfile validation; success is the test.
        for name in ("gzip", "mcf", "fma3d"):
            resonant_attack_profile(SPEC2K[name])

    def test_mutant_provokes_more_violations_than_original(self):
        from repro.power import PowerSupply as Supply
        from repro.sim import Simulation
        from repro.uarch import Processor

        def violations(profile):
            processor = Processor.from_profile(
                profile, n_instructions=80_000,
                config=TABLE1_PROCESSOR, supply_config=TABLE1_SUPPLY,
            )
            supply = Supply(TABLE1_SUPPLY, initial_current=35.0)
            result = Simulation(processor, supply, warmup_cycles=500).run(12_000)
            return result.violation_cycles

        base = violations(SPEC2K["gzip"])
        attacked = violations(resonant_attack_profile(SPEC2K["gzip"]))
        assert attacked > base

    def test_rejects_bad_ipc(self):
        with pytest.raises(ConfigurationError):
            resonant_attack_profile(SPEC2K["gzip"], ipc_estimate=0)


# ----------------------------------------------------------------------
# Detector / controller behaviour under faults
# ----------------------------------------------------------------------

def faulty_controller(faults, **tuning_kwargs):
    tuning = TuningConfig(**tuning_kwargs) if tuning_kwargs else TABLE1_TUNING
    return ResonanceTuningController(
        TABLE1_SUPPLY, TABLE1_PROCESSOR, tuning,
        sensor=FaultySensor(faults),
    )


class TestDetectorUnderFaults:
    RESONANT_WAVE = square_wave(2 * 50, 4000)  # inside the 84-119 band

    @pytest.mark.parametrize("faults", [
        [StuckAtFault(70.0, start_cycle=1500, duration_cycles=600)],
        [DroppedSampleFault(0.2, seed=1)],
        [BurstNoiseFault(16.0, burst_probability=0.03, seed=2)],
        [DriftFault(4.0, max_offset_amps=30.0)],
        [SaturationFault(85.0)],
        [DelayJitterFault(6, 0.2, seed=4)],
    ], ids=["stuck", "drop", "burst", "drift", "saturate", "jitter"])
    def test_each_model_runs_without_crashing_and_stays_live(self, faults):
        controller = faulty_controller(faults)
        drive(controller, self.RESONANT_WAVE)
        # detection survived the fault: events seen, counters sane
        assert controller.detector.total_events > 0
        assert controller.first_level_cycles + controller.second_level_cycles > 0
        assert controller.max_second_level_hold_cycles <= controller.watchdog_hold_cycles

    def test_nan_readings_are_held_not_propagated(self):
        controller = faulty_controller([])
        wave = list(self.RESONANT_WAVE[:1000])
        for index in range(100, 1000, 7):
            wave[index] = float("nan")
        drive(controller, wave)
        assert controller.detector.nonfinite_samples > 0
        assert controller.detector.total_events > 0
        count = controller.detector.current_count(len(wave) - 1)
        assert isinstance(count, int) and count >= 0

    def test_twenty_percent_drops_still_engage_responses(self):
        """Acceptance criterion: 20 % dropped samples, no crash, no
        permanently stuck stall, responses still engage."""
        controller = faulty_controller([DroppedSampleFault(0.2, seed=6)])
        drive(controller, square_wave(2 * 50, 12_000))
        assert controller.second_level_engagements > 0
        assert controller.max_second_level_hold_cycles <= controller.watchdog_hold_cycles
        # the stall is a bounded fraction of the run, not a latch-up
        assert controller.second_level_cycles < 12_000


class TestWatchdog:
    def test_watchdog_releases_stuck_second_level(self):
        # Open-loop resonant drive never quiets (the "stall" cannot change
        # the injected waveform), so without the watchdog the second-level
        # response would never release.
        controller = faulty_controller([], second_level_watchdog_cycles=300)
        wave = square_wave(2 * 50, 6000)
        directives = drive(controller, wave)
        assert controller.second_level_engagements > 0
        assert controller.watchdog_releases > 0
        assert controller.max_second_level_hold_cycles <= 300
        # after a release the pipeline actually runs: not every later cycle
        # is stalled
        stalled = [d.stall_issue for d in directives]
        first_stall = stalled.index(True)
        assert not all(stalled[first_stall:])

    def test_longest_hold_is_bounded_by_watchdog(self):
        controller = faulty_controller([], second_level_watchdog_cycles=200)
        directives = drive(controller, square_wave(2 * 50, 8000))
        longest = run_length = 0
        for directive in directives:
            run_length = run_length + 1 if directive.stall_issue else 0
            longest = max(longest, run_length)
        assert 0 < longest <= 200

    def test_watchdog_never_preempts_healthy_release(self):
        healthy = faulty_controller([], second_level_watchdog_cycles=50_000)
        # an episodic wave: resonance then quiet, the normal release path
        wave = square_wave(2 * 50, 1200) + [65.0] * 2000
        drive(healthy, wave)
        assert healthy.second_level_engagements > 0
        assert healthy.watchdog_releases == 0

    def test_watchdog_must_exceed_response_time(self):
        with pytest.raises(ConfigurationError):
            TuningConfig(second_level_response_time=100,
                         second_level_watchdog_cycles=100)


class TestSweepWithFaultySensorIsDeterministic:
    def test_same_seed_same_summary(self):
        def summary():
            runner = BenchmarkRunner(SweepConfig(n_cycles=4000))
            return runner.sweep(
                lambda s, p: ResonanceTuningController(
                    s, p,
                    sensor=FaultySensor([DroppedSampleFault(0.2, seed=13)]),
                ),
                benchmarks=("swim",),
            )

        assert summary() == summary()


class TestPowerGuards:
    def test_supply_rejects_non_finite_current(self):
        supply = PowerSupply(TABLE1_SUPPLY, initial_current=35.0)
        with pytest.raises(FaultError):
            supply.step(float("nan"))
        with pytest.raises(FaultError):
            supply.step(math.inf)

    def test_rlc_rejects_non_finite_parameters(self):
        from dataclasses import replace
        from repro.errors import CircuitError

        bad = replace(TABLE1_SUPPLY, inductance_henries=float("nan"))
        with pytest.raises(CircuitError):
            RLCAnalysis(bad)
