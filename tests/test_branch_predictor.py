"""Tests for the gshare predictor and synthetic branch outcome streams."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.uarch import (
    GSharePredictor,
    SyntheticBranchSpace,
    WorkloadProfile,
    generate_trace,
    simulate_mispredicts,
)
from repro.uarch.isa import OpClass


class TestGSharePredictor:
    def test_learns_always_taken_branch(self):
        predictor = GSharePredictor(history_bits=0)
        for _ in range(20):
            predictor.update(pc=0x1234, taken=True)
        assert predictor.predict(0x1234)
        assert predictor.mispredict_rate < 0.2

    def test_learns_never_taken_branch(self):
        predictor = GSharePredictor(history_bits=0)
        for _ in range(20):
            predictor.update(pc=0x4321, taken=False)
        assert not predictor.predict(0x4321)

    def test_alternating_pattern_learned_with_history(self):
        """T,N,T,N is hopeless for bimodal but trivial for gshare."""
        bimodal = GSharePredictor(history_bits=0)
        gshare = GSharePredictor(history_bits=8)
        for predictor in (bimodal, gshare):
            for step in range(400):
                predictor.update(pc=0x777, taken=(step % 2 == 0))
        assert gshare.mispredict_rate < 0.2
        assert bimodal.mispredict_rate > 0.4

    def test_counters_saturate(self):
        predictor = GSharePredictor(history_bits=0)
        for _ in range(100):
            predictor.update(0x1, True)
        # One contrary outcome must not flip the prediction (hysteresis).
        predictor.update(0x1, False)
        assert predictor.predict(0x1)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            GSharePredictor(table_bits=1)
        with pytest.raises(ConfigurationError):
            GSharePredictor(table_bits=10, history_bits=12)

    def test_rate_zero_before_predictions(self):
        assert GSharePredictor().mispredict_rate == 0.0


class TestSyntheticBranchSpace:
    def test_deterministic_for_seeded_rng(self):
        a = SyntheticBranchSpace(rng=np.random.default_rng(5))
        b = SyntheticBranchSpace(rng=np.random.default_rng(5))
        for _ in range(200):
            assert a.next_branch() == b.next_branch()

    def test_loop_branches_exit_periodically(self):
        space = SyntheticBranchSpace(
            n_static=1, loop_fraction=1.0, rng=np.random.default_rng(3)
        )
        outcomes = [space.next_branch()[1] for _ in range(200)]
        # A pure loop branch must be mostly taken with periodic exits.
        not_taken = outcomes.count(False)
        assert 2 <= not_taken <= 60

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            SyntheticBranchSpace(n_static=0)
        with pytest.raises(ConfigurationError):
            SyntheticBranchSpace(loop_fraction=1.5)
        with pytest.raises(ConfigurationError):
            SyntheticBranchSpace(bias_concentration=0.4)


class TestSimulatedMispredicts:
    def test_rate_is_plausible(self):
        flags = simulate_mispredicts(20_000, np.random.default_rng(1))
        assert 0.03 < flags.mean() < 0.25

    def test_mispredicts_cluster(self):
        """The whole point of the model: bursts, not independence."""
        flags = simulate_mispredicts(30_000, np.random.default_rng(1))
        rate = flags.mean()
        adjacent = np.mean(flags[1:] & flags[:-1])
        assert adjacent > 1.5 * rate * rate

    def test_profile_integration(self):
        profile = WorkloadProfile(
            name="g", branch_model="gshare", frac_branch=0.15
        )
        trace = generate_trace(profile, 30_000)
        branches = trace.op_class == int(OpClass.BRANCH)
        rate = trace.mispredict[branches].mean()
        assert 0.03 < rate < 0.25

    def test_unknown_branch_model_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(name="x", branch_model="tage")

    def test_gshare_profile_runs_on_pipeline(self):
        from repro.config import TABLE1_PROCESSOR
        from repro.uarch import Pipeline

        profile = WorkloadProfile(
            name="g", branch_model="gshare", frac_branch=0.15
        )
        trace = generate_trace(profile, 20_000)
        pipeline = Pipeline(trace, TABLE1_PROCESSOR)
        for _ in range(2_000):
            pipeline.step()
        assert pipeline.total_committed > 0
        assert pipeline.branch_unit.mispredicts > 0
