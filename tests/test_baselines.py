"""Tests for the compared techniques: voltage threshold [10] and damping [14]."""

import pytest

from repro.config import TABLE1_PROCESSOR, TABLE1_SUPPLY
from repro.baselines import PipelineDampingController, VoltageThresholdController
from repro.errors import ConfigurationError
from repro.sim import BenchmarkRunner, SweepConfig
from repro.uarch.pipeline import CycleStats


def make_stats(cycle, estimate=0.0, phantom=0.0):
    return CycleStats(
        cycle=cycle,
        current_amps=70.0,
        phantom_amps=phantom,
        dispatched=0,
        issued=0,
        committed=0,
        issued_estimate_amps=estimate,
        rob_occupancy=0,
    )


class TestVoltageThresholdUnit:
    def test_actual_threshold_degraded_by_noise(self):
        controller = VoltageThresholdController(
            TABLE1_SUPPLY, TABLE1_PROCESSOR,
            target_threshold_volts=0.030, sensor_noise_pp_volts=0.015,
        )
        assert controller.actual_threshold_volts == pytest.approx(0.0225)

    def test_rejects_threshold_swallowed_by_noise(self):
        with pytest.raises(ConfigurationError):
            VoltageThresholdController(
                TABLE1_SUPPLY, TABLE1_PROCESSOR,
                target_threshold_volts=0.010, sensor_noise_pp_volts=0.025,
            )

    def test_rejects_bad_hold_and_delay(self):
        with pytest.raises(ConfigurationError):
            VoltageThresholdController(
                TABLE1_SUPPLY, TABLE1_PROCESSOR, delay_cycles=-1
            )
        with pytest.raises(ConfigurationError):
            VoltageThresholdController(
                TABLE1_SUPPLY, TABLE1_PROCESSOR, hold_cycles=0
            )

    def test_low_voltage_stalls(self):
        controller = VoltageThresholdController(
            TABLE1_SUPPLY, TABLE1_PROCESSOR, target_threshold_volts=0.030
        )
        controller.observe(0, 90.0, -0.040)
        directives = controller.directives(1)
        assert directives.stall_issue and directives.stall_fetch

    def test_high_voltage_phantom_fires(self):
        controller = VoltageThresholdController(
            TABLE1_SUPPLY, TABLE1_PROCESSOR, target_threshold_volts=0.030
        )
        controller.observe(0, 40.0, 0.040)
        directives = controller.directives(1)
        assert directives.current_floor_amps > 0
        assert not directives.stall_issue

    def test_inside_threshold_no_response_after_hold(self):
        controller = VoltageThresholdController(
            TABLE1_SUPPLY, TABLE1_PROCESSOR,
            target_threshold_volts=0.030, hold_cycles=2,
        )
        controller.observe(0, 90.0, -0.040)
        assert controller.directives(1).stall_issue
        for cycle in range(1, 6):
            controller.observe(cycle, 70.0, 0.0)
        assert not controller.directives(6).stall_issue

    def test_hold_keeps_response_active(self):
        controller = VoltageThresholdController(
            TABLE1_SUPPLY, TABLE1_PROCESSOR,
            target_threshold_volts=0.030, hold_cycles=8,
        )
        controller.observe(0, 90.0, -0.040)
        controller.observe(1, 70.0, 0.0)  # back inside threshold
        assert controller.directives(2).stall_issue  # still held

    def test_delay_shifts_reaction(self):
        controller = VoltageThresholdController(
            TABLE1_SUPPLY, TABLE1_PROCESSOR,
            target_threshold_volts=0.030, delay_cycles=3,
        )
        controller.observe(0, 90.0, -0.040)
        assert not controller.directives(1).stall_issue  # not seen yet
        for cycle in range(1, 4):
            controller.observe(cycle, 70.0, 0.0)
        assert controller.directives(4).stall_issue  # delayed reading arrives

    def test_response_counted_as_second_level(self):
        controller = VoltageThresholdController(TABLE1_SUPPLY, TABLE1_PROCESSOR)
        controller.observe(0, 90.0, -0.040)
        controller.directives(1)
        fractions = controller.response_cycle_fractions
        assert fractions["second_level_cycles"] == 1
        assert fractions["first_level_cycles"] == 0


class TestPipelineDampingUnit:
    def test_rejects_bad_delta(self):
        with pytest.raises(ConfigurationError):
            PipelineDampingController(TABLE1_SUPPLY, TABLE1_PROCESSOR, 0.0)

    def test_window_defaults_to_half_resonant_period(self):
        controller = PipelineDampingController(
            TABLE1_SUPPLY, TABLE1_PROCESSOR, 26.0
        )
        assert controller.window_cycles == 50

    def test_requires_stats(self):
        controller = PipelineDampingController(
            TABLE1_SUPPLY, TABLE1_PROCESSOR, 26.0
        )
        with pytest.raises(ConfigurationError):
            controller.observe(0, 70.0, 0.0, stats=None)

    def test_no_bounds_until_window_seeded(self):
        controller = PipelineDampingController(
            TABLE1_SUPPLY, TABLE1_PROCESSOR, 26.0
        )
        assert controller.directives(0).issue_estimate_bounds is None

    def test_bounds_track_window_extremes(self):
        controller = PipelineDampingController(
            TABLE1_SUPPLY, TABLE1_PROCESSOR, delta_amps=10.0, window_cycles=4
        )
        for cycle, estimate in enumerate([20.0, 25.0, 30.0]):
            controller.observe(cycle, 70.0, 0.0, make_stats(cycle, estimate))
        low, high = controller.directives(3).issue_estimate_bounds
        assert low == pytest.approx(30.0 - 10.0)
        assert high == pytest.approx(20.0 + 10.0)

    def test_lower_bound_clamped_at_zero(self):
        controller = PipelineDampingController(
            TABLE1_SUPPLY, TABLE1_PROCESSOR, delta_amps=50.0, window_cycles=4
        )
        controller.observe(0, 70.0, 0.0, make_stats(0, 5.0))
        low, _ = controller.directives(1).issue_estimate_bounds
        assert low == 0.0


class TestBaselinesClosedLoop:
    @pytest.fixture(scope="class")
    def runner(self):
        return BenchmarkRunner(SweepConfig(n_cycles=40_000))

    def test_ideal_voltage_threshold_eliminates_violations(self, runner):
        base = runner.run_base("swim")
        assert base.violation_cycles > 0
        metrics = runner.compare(
            "swim",
            lambda s, p: VoltageThresholdController(
                s, p, target_threshold_volts=0.030
            ),
        )
        assert metrics.violation_fraction == 0.0
        assert metrics.slowdown < 1.10

    def test_noise_and_delay_degrade_voltage_threshold(self, runner):
        """The paper's core critique of [10] (Table 4's bottom rows)."""
        ideal = runner.compare(
            "swim",
            lambda s, p: VoltageThresholdController(s, p, 0.030, 0.0, 0),
        )
        realistic = runner.compare(
            "swim",
            lambda s, p: VoltageThresholdController(s, p, 0.020, 0.015, 3),
        )
        assert realistic.slowdown > ideal.slowdown
        assert realistic.energy_delay > ideal.energy_delay

    def test_loose_damping_misses_band_violations(self, runner):
        """Damping at delta = threshold covers only the resonant frequency;
        variations elsewhere in the band still violate (Section 5.3.2)."""
        metrics = runner.compare(
            "swim",
            lambda s, p: PipelineDampingController(s, p, delta_amps=26.0),
        )
        assert metrics.violation_fraction > 0

    def test_tight_damping_eliminates_but_costs(self, runner):
        loose = runner.compare(
            "swim", lambda s, p: PipelineDampingController(s, p, 13.0)
        )
        tight = runner.compare(
            "swim", lambda s, p: PipelineDampingController(s, p, 6.5)
        )
        assert tight.violation_fraction == 0.0
        assert tight.slowdown > loose.slowdown

    def test_damping_costs_rise_as_delta_tightens(self, runner):
        slowdowns = []
        for delta in (26.0, 13.0, 6.5):
            metrics = runner.compare(
                "bzip", lambda s, p, d=delta: PipelineDampingController(s, p, d)
            )
            slowdowns.append(metrics.slowdown)
        assert slowdowns[0] <= slowdowns[1] <= slowdowns[2]


class TestMultiWindowDamping:
    def test_accepts_window_sequence(self):
        controller = PipelineDampingController(
            TABLE1_SUPPLY, TABLE1_PROCESSOR, 26.0, (42, 50, 59)
        )
        assert controller.window_lengths == (42, 50, 59)
        assert controller.window_cycles == 59

    def test_duplicate_windows_collapse(self):
        controller = PipelineDampingController(
            TABLE1_SUPPLY, TABLE1_PROCESSOR, 26.0, (50, 50, 42)
        )
        assert controller.window_lengths == (42, 50)

    def test_rejects_tiny_windows(self):
        import pytest as _pytest
        with _pytest.raises(ConfigurationError):
            PipelineDampingController(TABLE1_SUPPLY, TABLE1_PROCESSOR, 26.0, (1,))
        with _pytest.raises(ConfigurationError):
            PipelineDampingController(TABLE1_SUPPLY, TABLE1_PROCESSOR, 26.0, ())

    def test_bounds_are_intersection(self):
        controller = PipelineDampingController(
            TABLE1_SUPPLY, TABLE1_PROCESSOR, delta_amps=10.0,
            window_cycles=(2, 4),
        )
        # Estimates 30, 5, 20: short window sees (5, 20), long (30, 5, 20).
        for cycle, estimate in enumerate([30.0, 5.0, 20.0]):
            controller.observe(cycle, 70.0, 0.0, make_stats(cycle, estimate))
        low, high = controller.directives(3).issue_estimate_bounds
        assert low == pytest.approx(30.0 - 10.0)   # long window max binds
        assert high == pytest.approx(5.0 + 10.0)   # both see min 5

    def test_multiwindow_no_better_than_single_at_equal_delta(self):
        """The negative result: band coverage of the estimate is not the
        leak at delta = 1x (see bench_multiwindow_damping)."""
        runner = BenchmarkRunner(SweepConfig(n_cycles=15_000))
        single = runner.compare(
            "swim",
            lambda s, p: PipelineDampingController(s, p, 26.0, 50),
        )
        multi = runner.compare(
            "swim",
            lambda s, p: PipelineDampingController(s, p, 26.0, (42, 50, 59)),
        )
        assert multi.violation_fraction >= 0.3 * single.violation_fraction
