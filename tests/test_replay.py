"""Differential conformance suite for trace record/replay (repro.trace).

The contract: a sweep running against a trace store -- cold (recording)
or warm (replaying) -- produces aggregates **bit-identical** to the same
sweep with no store at all, across random workloads, supply variants,
controller variants, all six sensor fault models, resonant-attacker
overlays, both execution paths (vectorized kernel and ``REPRO_KERNEL=0``
scalar loop) and every sweep backend.  Replay is an optimization with a
guard, never an approximation; any byte of drift here is a bug.
"""

import dataclasses
import json
import tempfile
from dataclasses import asdict, replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TABLE1_PROCESSOR, TABLE1_SUPPLY
from repro.core import ResonanceTuningController
from repro.core.controller import NullController
from repro.faults import FaultySensor, ResonantAttacker
from repro.oracles import golden
from repro.power import PowerSupply
from repro.sim import BenchmarkRunner, ResilienceConfig, SweepConfig
from repro.sim.simulation import Simulation
from repro.trace import (
    ReplaySimulation,
    TraceCapture,
    TraceKey,
    TracePayload,
    stream_digest,
)
from repro.uarch import Processor
from tests.strategies import fault_overlays, workload_profiles

SMALL = SweepConfig(n_cycles=1100, warmup_cycles=150)


def fingerprint(summary):
    return json.dumps(dataclasses.asdict(summary), sort_keys=True)


def tuning_factory(supply, processor):
    """Module-level factory: picklable into pool and dist workers."""
    return ResonanceTuningController(supply, processor)


class FaultedTuningFactory:
    """Picklable factory mounting a seeded fault chain on the sensor.

    Fault models carry RNG state, so every cell gets pristine copies --
    the same discipline as the fault-injection campaign's per-cell
    builder -- keeping repeated sweeps bit-identical.
    """

    def __init__(self, faults):
        self.faults = tuple(faults)

    def __call__(self, supply, processor):
        import copy

        faults = copy.deepcopy(list(self.faults))
        sensor = FaultySensor(faults) if faults else None
        return ResonanceTuningController(supply, processor, sensor=sensor)


class Attack:
    """Picklable supply transform wrapping every supply in an attacker."""

    def __init__(self, amplitude_amps):
        self.amplitude_amps = amplitude_amps

    def __call__(self, supply, benchmark):
        return ResonantAttacker(
            supply, amplitude_amps=self.amplitude_amps, seed=99
        )


def run_differential(config, factory, benchmarks, supply_transform=None,
                     expect_hits=True):
    """Plain vs cold-store vs warm-store sweeps; assert byte-identical."""
    plain = BenchmarkRunner(
        config, supply_transform=supply_transform
    ).sweep(factory, benchmarks=benchmarks)
    with tempfile.TemporaryDirectory() as store_dir:
        resilience = ResilienceConfig(trace_store_path=store_dir)
        cold = BenchmarkRunner(
            config, supply_transform=supply_transform
        ).sweep(factory, benchmarks=benchmarks, resilience=resilience)
        warm = BenchmarkRunner(
            config, supply_transform=supply_transform
        ).sweep(factory, benchmarks=benchmarks, resilience=resilience)
    assert fingerprint(cold) == fingerprint(plain)
    assert fingerprint(warm) == fingerprint(plain)
    assert warm == plain
    if expect_hits:
        assert cold.timings["trace_records"] >= 1.0
        assert warm.timings["trace_hits"] >= 1.0
        assert warm.timings["trace_guard_failures"] == 0.0
    return plain, cold, warm


# ----------------------------------------------------------------------
# Committed goldens carry the replay fingerprint
# ----------------------------------------------------------------------

class TestGoldenReplayFingerprints:
    def test_base_cells_have_trace_addresses(self):
        cells = golden.load_goldens()["cells"]
        for key, record in cells.items():
            sha = record["replay_trace_sha256"]
            if key.endswith("/base"):
                assert isinstance(sha, str) and len(sha) == 64
            else:
                # Feedback controllers have no replayable schedule.
                assert sha is None

    def test_recomputed_cell_matches_committed_fingerprint(self):
        # compute_cell runs the in-memory replay self-check internally; a
        # divergence raises rather than returning a digest.
        cell = next(
            c for c in golden.GOLDEN_CELLS
            if c.benchmark == "gzip" and c.technique == "base"
        )
        record = golden.compute_cell(cell)
        committed = golden.load_goldens()["cells"]["gzip/base"]
        assert record["replay_trace_sha256"] == committed["replay_trace_sha256"]


# ----------------------------------------------------------------------
# Direct-API differential over random workloads
# ----------------------------------------------------------------------

def _full_run(profile, supply_config, n_cycles, warmup, capture_key=None):
    processor = Processor.from_profile(
        profile,
        n_instructions=6 * (n_cycles + warmup),
        config=TABLE1_PROCESSOR,
        supply_config=supply_config,
    )
    supply = PowerSupply(
        supply_config, initial_current=TABLE1_PROCESSOR.min_current_amps
    )
    simulation = Simulation(
        processor, supply, None, record=True,
        benchmark=profile.name, warmup_cycles=warmup,
    )
    if capture_key is not None:
        simulation.capture = TraceCapture(capture_key)
    result = simulation.run(n_cycles)
    return simulation, result


class TestDirectReplayDifferential:
    @given(
        profile=workload_profiles(),
        n_cycles=st.integers(400, 900),
        warmup=st.integers(50, 200),
        cap_scale=st.sampled_from([0.5, 1.0, 2.0]),
    )
    @settings(max_examples=8, deadline=None)
    def test_replay_is_bit_identical_across_supply_variants(
        self, profile, n_cycles, warmup, cap_scale
    ):
        """Record once, replay bit-exactly -- against a *different* supply.

        The store key deliberately omits the supply: a feedback-free trace
        is supply-independent, so one record must serve every RLC variant.
        This is the design-space reuse the ``>=5x`` bench speedup rests on.
        """
        key = TraceKey(
            benchmark=profile.name,
            workload=asdict(profile),
            seed=profile.seed,
            n_instructions=6 * (n_cycles + warmup),
            processor=asdict(TABLE1_PROCESSOR),
            n_cycles=n_cycles,
            warmup_cycles=warmup,
            schedule="null",
            overlay="none",
        )
        recorded_sim, recorded = _full_run(
            profile, TABLE1_SUPPLY, n_cycles, warmup, capture_key=key
        )
        capture = recorded_sim.capture
        assert capture.completed, "base capture must pass the replay proof"
        payload = TracePayload(
            content_sha256=stream_digest(capture.currents),
            config_digest=key.digest(),
            n_cycles=n_cycles,
            warmup_cycles=warmup,
            instructions_warmup=capture.instructions_warmup,
            instructions_total=capture.instructions_total,
            currents=list(capture.currents),
        )

        variant = replace(
            TABLE1_SUPPLY,
            capacitance_farads=TABLE1_SUPPLY.capacitance_farads * cap_scale,
        )
        for supply_config, reference_sim, reference in (
            (TABLE1_SUPPLY, recorded_sim, recorded),
            (variant, *_full_run(profile, variant, n_cycles, warmup)),
        ):
            supply = PowerSupply(
                supply_config,
                initial_current=TABLE1_PROCESSOR.min_current_amps,
            )
            replay_sim = ReplaySimulation(
                payload, supply, None, record=True, benchmark=profile.name
            )
            replayed = replay_sim.run(n_cycles)
            assert replayed == reference
            assert replay_sim.currents == reference_sim.currents
            assert replay_sim.voltages == reference_sim.voltages


# ----------------------------------------------------------------------
# Runner-level differential: fault models, attackers, supply variants
# ----------------------------------------------------------------------

class TestRunnerReplayDifferential:
    def test_clean_tuning_sweep(self):
        run_differential(SMALL, tuning_factory, ("gzip", "swim"))

    @given(faults=fault_overlays(max_faults=3))
    @settings(max_examples=6, deadline=None)
    def test_faulted_sensor_sweeps(self, faults):
        """Seeded fault chains (all 6 models reachable) on the technique
        sensor: technique cells are not replayable, base cells are; the
        aggregates must stay byte-identical either way."""
        run_differential(SMALL, FaultedTuningFactory(faults), ("swim",))

    @given(
        amplitude=st.sampled_from([6.0, 12.0, 20.0]),
        cap_scale=st.sampled_from([0.5, 1.0, 2.0]),
    )
    @settings(max_examples=4, deadline=None)
    def test_attacker_overlay_and_supply_variants(self, amplitude, cap_scale):
        """Attacker-wrapped supplies force the scalar replay loop; the
        overlay token keys the store so attacked and clean traces never
        alias."""
        config = replace(
            SMALL,
            supply=replace(
                TABLE1_SUPPLY,
                capacitance_farads=(
                    TABLE1_SUPPLY.capacitance_farads * cap_scale
                ),
            ),
        )
        run_differential(
            config, tuning_factory, ("gzip",),
            supply_transform=Attack(amplitude),
        )

    def test_unpicklable_overlay_disables_replay_not_correctness(self):
        plain = BenchmarkRunner(
            SMALL, supply_transform=lambda s, b: s
        ).sweep(tuning_factory, benchmarks=("gzip",))
        with tempfile.TemporaryDirectory() as store_dir:
            stored = BenchmarkRunner(
                SMALL, supply_transform=lambda s, b: s
            ).sweep(
                tuning_factory, benchmarks=("gzip",),
                resilience=ResilienceConfig(trace_store_path=store_dir),
            )
            assert stored.timings["trace_records"] == 0.0
            assert stored.timings["trace_hits"] == 0.0
        assert fingerprint(stored) == fingerprint(plain)

    def test_scalar_path_replay(self, monkeypatch):
        """REPRO_KERNEL=0: the per-cycle replay loop, not run_supply."""
        from repro.core import kernel as core_kernel

        monkeypatch.setenv(core_kernel.KERNEL_ENV, "0")
        assert not core_kernel.kernel_enabled()
        run_differential(SMALL, tuning_factory, ("swim",))

    def test_no_replay_flag_disables_the_store(self):
        with tempfile.TemporaryDirectory() as store_dir:
            resilience = ResilienceConfig(
                trace_store_path=store_dir, replay=False
            )
            summary = BenchmarkRunner(SMALL).sweep(
                tuning_factory, benchmarks=("gzip",), resilience=resilience
            )
            assert "trace_hits" not in summary.timings
            import os

            assert not os.path.exists(os.path.join(store_dir, "index"))


# ----------------------------------------------------------------------
# Cross-backend equivalence over one shared store
# ----------------------------------------------------------------------

class TestCrossBackendReplay:
    BENCHMARKS = ("swim", "gzip")

    def test_sequential_pool_dist_share_one_store(self, tmp_path):
        store_dir = str(tmp_path / "store")
        plain = BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=self.BENCHMARKS
        )
        sequential = BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=self.BENCHMARKS,
            resilience=ResilienceConfig(trace_store_path=store_dir),
        )
        with BenchmarkRunner(SMALL) as pool_runner:
            pooled = pool_runner.sweep(
                tuning_factory, benchmarks=self.BENCHMARKS,
                resilience=ResilienceConfig(
                    workers=2, trace_store_path=store_dir
                ),
            )
        dist = BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=self.BENCHMARKS,
            resilience=ResilienceConfig(
                workers=2, backend="dist", connect_deadline_s=30.0,
                trace_store_path=store_dir,
            ),
        )
        assert fingerprint(sequential) == fingerprint(plain)
        assert fingerprint(pooled) == fingerprint(plain)
        assert fingerprint(dist) == fingerprint(plain)

    def test_cold_then_warm_summaries_identical(self, tmp_path):
        store_dir = str(tmp_path / "store")
        resilience = ResilienceConfig(trace_store_path=store_dir)
        cold = BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=self.BENCHMARKS, resilience=resilience
        )
        warm = BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=self.BENCHMARKS, resilience=resilience
        )
        assert warm == cold
        assert fingerprint(warm) == fingerprint(cold)
        # Only the out-of-band diagnostics may differ.
        assert cold.timings["trace_records"] >= 1.0
        assert warm.timings["trace_records"] == 0.0
        assert warm.timings["trace_hits"] >= 1.0
