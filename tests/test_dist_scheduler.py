"""Tests for lease bookkeeping in the distributed scheduler.

The LeaseQueue is the determinism-critical core of the distributed
backend: whatever the timing of worker failures, the order cells are
retried must be a pure function of the grid order and the sequence of
lease events.  These tests drive it directly with synthetic clocks --
no sockets, no subprocesses.
"""

from repro.dist.scheduler import Lease, LeaseQueue

GRID = [("swim", 0), ("swim", 1), ("parser", 0), ("gzip", 0)]
INDEX = {cell: i for i, cell in enumerate(GRID)}


def make_queue(cells=GRID):
    return LeaseQueue(cells, INDEX)


class TestLeaseLifecycle:
    def test_lease_pops_pending_in_grid_order(self):
        q = make_queue()
        lease = q.lease("w0", now=0.0, timeout_s=10.0)
        assert lease.cell == ("swim", 0)
        assert lease.deadline == 10.0
        assert q.pending == (("swim", 1), ("parser", 0), ("gzip", 0))
        assert q.holder(("swim", 0)) == "w0"

    def test_lease_on_empty_queue_returns_none(self):
        q = make_queue(cells=[])
        assert q.lease("w0", now=0.0, timeout_s=10.0) is None

    def test_complete_clears_lease_and_marks_done(self):
        q = make_queue(cells=GRID[:1])
        q.lease("w0", now=0.0, timeout_s=10.0)
        assert q.complete(("swim", 0), "w0") is True
        assert q.is_completed(("swim", 0))
        assert q.done

    def test_duplicate_complete_returns_false(self):
        q = make_queue(cells=GRID[:1])
        q.lease("w0", now=0.0, timeout_s=10.0)
        assert q.complete(("swim", 0), "w0") is True
        assert q.complete(("swim", 0), "w0") is False

    def test_renew_extends_only_the_holder(self):
        q = make_queue()
        q.lease("w0", now=0.0, timeout_s=5.0)
        assert q.renew(("swim", 0), "w1", now=1.0, timeout_s=5.0) is False
        assert q.renew(("swim", 0), "w0", now=4.0, timeout_s=5.0) is True
        # renewed deadline is 9.0: nothing expires at t=8
        assert q.expire(now=8.0) == []
        assert [l.cell for l in q.expire(now=9.5)] == [("swim", 0)]

    def test_park_abandons_a_cell_for_good(self):
        q = make_queue(cells=GRID[:2])
        q.lease("w0", now=0.0, timeout_s=5.0)
        q.park(("swim", 0))
        assert q.holder(("swim", 0)) is None
        assert q.is_completed(("swim", 0))
        assert q.pending == (("swim", 1),)


class TestExpiryDeterminism:
    def test_expired_leases_requeue_at_front_in_grid_order(self):
        q = make_queue()
        # Lease the first three cells; let all three expire together.
        q.lease("w2", now=0.0, timeout_s=1.0)   # (swim, 0)
        q.lease("w0", now=0.0, timeout_s=1.0)   # (swim, 1)
        q.lease("w1", now=0.0, timeout_s=1.0)   # (parser, 0)
        expired = q.expire(now=2.0)
        assert [l.cell for l in expired] == GRID[:3]
        # Stolen cells outrank the untouched tail, in grid order.
        assert q.pending == (
            ("swim", 0), ("swim", 1), ("parser", 0), ("gzip", 0)
        )

    def test_expiry_order_is_independent_of_lease_order(self):
        orders = [("w0", "w1", "w2"), ("w2", "w1", "w0")]
        requeues = []
        for workers in orders:
            q = make_queue()
            for worker_id in workers:
                q.lease(worker_id, now=0.0, timeout_s=1.0)
            q.expire(now=2.0)
            requeues.append(q.pending)
        assert requeues[0] == requeues[1]

    def test_unexpired_leases_survive(self):
        q = make_queue()
        q.lease("w0", now=0.0, timeout_s=1.0)
        q.lease("w1", now=0.0, timeout_s=100.0)
        expired = q.expire(now=2.0)
        assert [l.cell for l in expired] == [("swim", 0)]
        assert q.holder(("swim", 1)) == "w1"

    def test_late_result_after_expiry_is_accepted_once(self):
        q = make_queue(cells=GRID[:1])
        q.lease("w0", now=0.0, timeout_s=1.0)
        q.expire(now=2.0)
        # The original holder's result lands after the steal: the cell is
        # still uncompleted, so the (deterministic) result is accepted and
        # the requeued copy is withdrawn.
        assert q.complete(("swim", 0), "w0") is True
        assert q.pending == ()
        # The stolen re-run finishing later is the duplicate.
        assert q.complete(("swim", 0), "w1") is False


class TestWorkerRelease:
    def test_release_worker_steals_only_its_leases_in_grid_order(self):
        q = make_queue()
        q.lease("w0", now=0.0, timeout_s=50.0)  # (swim, 0)
        q.lease("w1", now=0.0, timeout_s=50.0)  # (swim, 1)
        q.lease("w0", now=0.0, timeout_s=50.0)  # (parser, 0)
        stolen = q.release_worker("w0")
        assert [l.cell for l in stolen] == [("swim", 0), ("parser", 0)]
        assert q.pending == (("swim", 0), ("parser", 0), ("gzip", 0))
        assert q.holder(("swim", 1)) == "w1"

    def test_release_worker_with_no_leases_is_a_noop(self):
        q = make_queue()
        assert q.release_worker("w9") == []
        assert q.pending == tuple(GRID)


class TestLeaseValue:
    def test_lease_is_frozen_and_carries_grid_index(self):
        lease = Lease(
            cell=("gzip", 0), worker_id="w0", deadline=3.0, grid_index=3
        )
        assert lease.grid_index == 3
        try:
            lease.deadline = 99.0
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("Lease should be immutable")
