"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import PowerSupplyConfig, TABLE1_SUPPLY
from repro.core import (
    CurrentHistoryRegister,
    CurrentSensor,
    EventHistoryRegister,
    ResonanceDetector,
)
from repro.power import HeunIntegrator, PowerSupply, RLCAnalysis, waveforms
from repro.uarch import Pipeline, WorkloadProfile, generate_trace
from repro.config import ProcessorConfig


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
def underdamped_configs():
    """Random physically plausible underdamped supplies.

    Restricted to quality factors of at least 1 -- the regime the paper
    considers (its examples have Q of 2.8 and 6.3).  Below Q ~ 1 the
    impedance peak detaches from the natural frequency and the half-power
    band loses meaning.
    """
    return st.builds(
        PowerSupplyConfig,
        resistance_ohms=st.floats(1e-4, 1e-3),
        inductance_henries=st.floats(1e-12, 1e-11),
        capacitance_farads=st.floats(2e-7, 3e-6),
        vdd_volts=st.just(1.0),
        clock_hz=st.just(10e9),
    ).filter(lambda c: RLCAnalysis(c).quality_factor >= 1.0)


class TestRLCProperties:
    @given(underdamped_configs())
    @settings(max_examples=30, deadline=None)
    def test_band_brackets_resonant_frequency(self, config):
        analysis = RLCAnalysis(config)
        band = analysis.band
        assert band.low_hz < analysis.resonant_frequency_hz < band.high_hz
        assert 0 < analysis.dissipation_per_period < 1

    @given(underdamped_configs())
    @settings(max_examples=20, deadline=None)
    def test_impedance_peaks_inside_band(self, config):
        analysis = RLCAnalysis(config)
        f0 = analysis.resonant_frequency_hz
        frequencies = np.linspace(0.2 * f0, 5 * f0, 400)
        z = analysis.impedance_ohms(frequencies)
        peak_freq = frequencies[int(np.argmax(z))]
        band = analysis.band
        assert band.low_hz * 0.9 <= peak_freq <= band.high_hz * 1.1

    @given(underdamped_configs())
    @settings(max_examples=20, deadline=None)
    def test_band_period_ordering(self, config):
        band = RLCAnalysis(config).band
        assert 2 <= band.min_period_cycles <= band.max_period_cycles


class TestCircuitPhysicsProperties:
    @given(
        st.floats(5.0, 60.0),
        st.integers(0, 50),
    )
    @settings(max_examples=20, deadline=None)
    def test_free_ringing_energy_never_grows(self, kick_amps, settle):
        """With no drive, the stored circuit energy must decay (passivity)."""
        config = TABLE1_SUPPLY
        integrator = HeunIntegrator(config)
        integrator.reset(kick_amps)
        for _ in range(settle):
            integrator.step(kick_amps)
        # Cut the current to zero: the stored energy rings down.
        def energy():
            state = integrator.state
            return (
                0.5 * config.capacitance_farads * state.voltage**2
                + 0.5 * config.inductance_henries * state.inductor_current**2
            )

        integrator.step(0.0)
        previous = energy()
        for _ in range(300):
            integrator.step(0.0)
        assert energy() <= previous * 1.0001

    @given(st.floats(1.0, 30.0), st.floats(0.2, 3.0))
    @settings(max_examples=15, deadline=None)
    def test_supply_response_is_linear(self, amplitude, scale):
        """Scaling the stimulus scales the response (the circuit is LTI)."""
        analysis = RLCAnalysis(TABLE1_SUPPLY)
        wave = waveforms.square_wave(
            600, analysis.resonant_period_cycles, amplitude, mean=0.0
        )
        v1 = PowerSupply(TABLE1_SUPPLY).run(wave)
        v2 = PowerSupply(TABLE1_SUPPLY).run(scale * wave)
        assert np.allclose(scale * v1, v2, atol=1e-9 + 1e-6 * amplitude * scale)


class TestHistoryProperties:
    @given(
        st.lists(st.floats(0.0, 120.0), min_size=20, max_size=200),
        st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_quarter_diff_matches_bruteforce(self, stream, quarter):
        register = CurrentHistoryRegister(max_quarter_period=8)
        for value in stream:
            register.append(value)
        if len(stream) < 2 * quarter:
            return
        recent = sum(stream[-quarter:])
        previous = sum(stream[-2 * quarter : -quarter])
        assert register.quarter_diff(quarter) == pytest.approx(
            recent - previous, abs=1e-6
        )

    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_event_history_matches_reference(self, bits):
        length = 64
        register = EventHistoryRegister(length_cycles=length)
        for cycle, bit in enumerate(bits):
            register.shift(cycle, bit)
        last = len(bits) - 1
        for cycle, bit in enumerate(bits):
            in_window = last - cycle < length
            assert register.has_event_at(cycle) == (bit and in_window)

    @given(
        st.lists(st.booleans(), min_size=5, max_size=120),
        st.integers(0, 119),
        st.integers(0, 119),
    )
    @settings(max_examples=40, deadline=None)
    def test_latest_event_in_window_is_correct(self, bits, a, b):
        start, end = min(a, b), max(a, b)
        register = EventHistoryRegister(length_cycles=256)
        for cycle, bit in enumerate(bits):
            register.shift(cycle, bit)
        expected = None
        for cycle in range(min(end, len(bits) - 1), start - 1, -1):
            if 0 <= cycle < len(bits) and bits[cycle]:
                expected = cycle
                break
        assert register.latest_event_in(start, end) == expected


class TestSensorProperties:
    @given(
        st.floats(0.0, 200.0),
        st.floats(0.25, 5.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_quantization_error_bounded(self, current, quantum):
        sensor = CurrentSensor(quantum_amps=quantum)
        reading = sensor.read(current)
        assert abs(reading - current) <= quantum / 2 + 1e-9

    @given(st.lists(st.floats(0.0, 150.0), min_size=5, max_size=60),
           st.integers(0, 4))
    @settings(max_examples=30, deadline=None)
    def test_delayed_reading_is_a_past_value(self, stream, delay):
        sensor = CurrentSensor(delay_cycles=delay)
        readings = [sensor.read(v) for v in stream]
        for index in range(delay, len(stream)):
            expected = stream[index - delay]
            assert readings[index] == pytest.approx(round(expected), abs=0.51)


class TestDetectorProperties:
    @given(st.floats(20.0, 110.0), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_flat_current_never_triggers(self, level, tolerance):
        detector = ResonanceDetector(range(42, 60), 26.0, tolerance)
        for cycle in range(300):
            assert detector.observe(cycle, level) is None

    @given(st.integers(2, 6), st.floats(30.0, 60.0))
    @settings(max_examples=15, deadline=None)
    def test_count_never_exceeds_tolerance_plus_one(self, tolerance, amplitude):
        detector = ResonanceDetector(range(42, 60), 26.0, tolerance)
        wave = waveforms.square_wave(1200, 100, amplitude, mean=70.0)
        max_count = 0
        for cycle, current in enumerate(wave):
            event = detector.observe(cycle, current)
            if event is not None:
                max_count = max(max_count, event.count)
        assert max_count <= tolerance + 1


class TestTraceProperties:
    @given(
        st.floats(0.05, 0.35),
        st.floats(0.0, 0.15),
        st.floats(1.0, 15.0),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_generated_traces_are_well_formed(
        self, frac_load, frac_store, dep, seed
    ):
        profile = WorkloadProfile(
            name="prop",
            frac_load=frac_load,
            frac_store=frac_store,
            frac_branch=0.1,
            mean_dep_distance=dep,
            seed=seed,
        )
        trace = generate_trace(profile, 2000)
        indices = np.arange(len(trace))
        assert np.all(trace.dep1 >= 0)
        assert np.all(trace.dep1 <= indices)
        assert np.all(trace.dep2 <= indices)
        assert np.all((trace.op_class >= 0) & (trace.op_class <= 6))


class TestPipelineProperties:
    @given(st.integers(0, 2**31 - 1), st.floats(2.0, 12.0))
    @settings(max_examples=10, deadline=None)
    def test_pipeline_invariants_hold(self, seed, dep):
        profile = WorkloadProfile(name="prop", mean_dep_distance=dep, seed=seed)
        trace = generate_trace(profile, 8000)
        config = ProcessorConfig()
        pipeline = Pipeline(trace, config)
        for _ in range(600):
            stats = pipeline.step()
            assert 0 <= stats.issued <= config.issue_width
            assert 0 <= stats.committed <= config.commit_width
            assert 0 <= stats.rob_occupancy <= config.rob_entries
            assert stats.current_amps >= config.min_current_amps - 1e-9
            assert stats.current_amps <= config.max_current_amps * 1.05
        assert pipeline.total_committed <= pipeline.seq_dispatch
        assert pipeline.ipc <= config.issue_width
