"""Tests for the command-line interface and the export helpers."""

import json

import pytest

from repro.cli import build_parser, main
from repro.sim.export import (
    metrics_to_csv,
    results_to_csv,
    summary_to_dict,
    to_json,
    write_csv,
)
from repro.sim.metrics import RelativeMetrics, SimulationResult
from repro.sim.runner import summarize


def make_result(**kwargs):
    defaults = dict(
        benchmark="swim", technique="base", cycles=1000, instructions=2000,
        energy_joules=1e-6, phantom_energy_joules=0.0,
        violation_cycles=3, violation_events=1,
    )
    defaults.update(kwargs)
    return SimulationResult(**defaults)


def make_metrics(benchmark="swim", slowdown=1.1):
    return RelativeMetrics(
        benchmark=benchmark, technique="tuning", slowdown=slowdown,
        energy=1.05, energy_delay=slowdown * 1.05,
        violation_fraction=0.0, base_violation_fraction=1e-3,
        first_level_fraction=0.1, second_level_fraction=0.01,
    )


class TestExport:
    def test_results_csv_round_trip(self):
        text = results_to_csv([make_result(), make_result(benchmark="gzip")])
        lines = text.strip().splitlines()
        assert lines[0].startswith("benchmark,technique")
        assert len(lines) == 3
        assert lines[1].split(",")[0] == "swim"

    def test_metrics_csv(self):
        text = metrics_to_csv([make_metrics()])
        lines = text.strip().splitlines()
        assert "slowdown" in lines[0]
        assert "1.1" in lines[1]

    def test_summary_dict_and_json(self):
        summary = summarize([make_metrics(), make_metrics("gzip", 1.2)])
        data = summary_to_dict(summary)
        assert data["avg_slowdown"] == pytest.approx(1.15)
        assert len(data["per_benchmark"]) == 2
        parsed = json.loads(to_json(summary))
        assert parsed["worst_benchmark"] == "gzip"

    def test_metrics_json(self):
        parsed = json.loads(to_json([make_metrics()]))
        assert parsed[0]["benchmark"] == "swim"

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(str(path), [make_result()])
        assert path.read_text().startswith("benchmark")


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_table1(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "100.00 MHz" in out or "99.96 MHz" in out
        assert "84-119 cycles" in out

    def test_analyze_overdamped(self, capsys):
        assert main([
            "analyze", "--resistance-uohm", "1000000",
            "--capacitance-nf", "100000",
        ]) == 0
        assert "not underdamped" in capsys.readouterr().out

    def test_calibrate(self, capsys):
        assert main(["calibrate"]) == 0
        out = capsys.readouterr().out
        assert "threshold" in out
        assert "half-waves" in out

    def test_classify_subset(self, capsys):
        assert main(["classify", "gzip", "--cycles", "4000"]) == 0
        assert "gzip" in capsys.readouterr().out

    def test_compare_tuning(self, capsys):
        assert main(["compare", "tuning", "gzip", "--cycles", "4000"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out
        assert "gzip" in out

    def test_compare_damping(self, capsys):
        assert main([
            "compare", "damping", "gzip",
            "--cycles", "4000", "--delta-amps", "13",
        ]) == 0
        assert "gzip" in capsys.readouterr().out

    def test_experiment_quick(self, capsys):
        assert main(["experiment", "figure1", "--quick"]) == 0
        assert "Figure 1(c)" in capsys.readouterr().out

    def test_experiment_unknown(self):
        with pytest.raises(KeyError):
            main(["experiment", "table42"])


class TestCLITechniques:
    def test_compare_voltage_threshold(self, capsys):
        assert main([
            "compare", "voltage-threshold", "gzip",
            "--cycles", "3000", "--threshold-mv", "30",
        ]) == 0
        assert "gzip" in capsys.readouterr().out

    def test_compare_convolution(self, capsys):
        assert main([
            "compare", "convolution", "gzip",
            "--cycles", "3000", "--estimate-gain", "0.9",
        ]) == 0
        assert "gzip" in capsys.readouterr().out

    def test_compare_rejects_unknown_technique(self):
        with pytest.raises(SystemExit):
            main(["compare", "magic", "gzip"])

    def test_experiment_ablation_id(self, capsys):
        assert main(["experiment", "ablation-sensing", "--quick"]) == 0
        assert "Ablation" in capsys.readouterr().out
