"""Tests for the simulation loop, metrics and batch runner."""

import pytest

from repro.config import TABLE1_PROCESSOR, TABLE1_SUPPLY
from repro.core import NullController, ResonanceTuningController
from repro.errors import SimulationError
from repro.power import PowerSupply
from repro.sim import (
    BenchmarkRunner,
    Simulation,
    SimulationResult,
    SweepConfig,
    summarize,
)
from repro.uarch import Processor, SPEC2K, WorkloadProfile


def build_simulation(name="gzip", record=False, warmup=0, controller=None):
    processor = Processor.from_profile(
        SPEC2K[name], n_instructions=60_000,
        config=TABLE1_PROCESSOR, supply_config=TABLE1_SUPPLY,
    )
    supply = PowerSupply(TABLE1_SUPPLY, initial_current=35.0)
    return Simulation(
        processor, supply, controller, record=record,
        benchmark=name, warmup_cycles=warmup,
    )


class TestSimulation:
    def test_basic_run_produces_result(self):
        result = build_simulation().run(2000)
        assert result.cycles == 2000
        assert result.instructions > 0
        assert result.energy_joules > 0
        assert 0 < result.ipc < 8

    def test_record_collects_traces(self):
        simulation = build_simulation(record=True)
        simulation.run(500)
        assert len(simulation.currents) == 500
        assert len(simulation.voltages) == 500

    def test_warmup_excluded_from_stats(self):
        with_warmup = build_simulation(warmup=1000).run(2000)
        assert with_warmup.cycles == 2000
        # IPC should be steady-state, similar to a longer plain run's tail.
        plain = build_simulation().run(3000)
        assert with_warmup.ipc == pytest.approx(plain.ipc, rel=0.1)

    def test_warmup_recorded_traces_exclude_warmup(self):
        simulation = build_simulation(record=True, warmup=300)
        simulation.run(200)
        assert len(simulation.currents) == 200

    def test_runs_exactly_once(self):
        simulation = build_simulation()
        simulation.run(100)
        with pytest.raises(SimulationError):
            simulation.run(100)

    def test_rejects_bad_cycle_counts(self):
        with pytest.raises(SimulationError):
            build_simulation().run(0)
        with pytest.raises(SimulationError):
            build_simulation(warmup=-1)

    def test_controller_identity_recorded(self):
        result = build_simulation(
            controller=NullController()
        ).run(100)
        assert result.technique == "base"


class TestRecordReplay:
    """Recorded streams are a faithful, reproducible account of a run."""

    def test_reentry_rejected_without_corrupting_state(self):
        """The _ran guard fires before any stepping: a rejected re-entry
        must leave recorded streams and supply counters untouched."""
        simulation = build_simulation(record=True)
        simulation.run(250)
        currents = list(simulation.currents)
        cycle_count = simulation.supply.cycle
        for n_cycles in (250, 1):  # same and different arguments
            with pytest.raises(SimulationError):
                simulation.run(n_cycles)
        assert simulation.currents == currents
        assert simulation.supply.cycle == cycle_count

    def test_recorded_streams_match_fresh_identical_run(self):
        """record=True must not perturb, and the stack must be
        deterministic: two identically built runs agree cycle-for-cycle,
        bit-for-bit, on both recorded streams."""
        def run_once():
            controller = ResonanceTuningController(
                TABLE1_SUPPLY, TABLE1_PROCESSOR
            )
            simulation = build_simulation(
                name="swim", record=True, warmup=200, controller=controller
            )
            simulation.run(800)
            return simulation.currents, simulation.voltages

        first_currents, first_voltages = run_once()
        second_currents, second_voltages = run_once()
        assert first_currents == second_currents
        assert first_voltages == second_voltages


class _ScriptedStats:
    def __init__(self, current):
        self.current_amps = current


class _ScriptedPower:
    def attach_supply(self, vdd_volts, cycle_seconds):
        pass


class _ScriptedProcessor:
    """Plays back a fixed current waveform, one instruction per cycle."""

    def __init__(self, currents):
        self._currents = list(currents)
        self._cycle = 0
        self.power = _ScriptedPower()
        self.committed_instructions = 0
        self.total_energy_joules = 0.0
        self.phantom_energy_joules = 0.0

    def step(self, directives):
        current = self._currents[self._cycle]
        self._cycle += 1
        self.committed_instructions += 1
        self.total_energy_joules += 1e-12
        return _ScriptedStats(current)


class TestWarmupIsolation:
    """Warmup transients must leave no trace in steady-state statistics."""

    def _run_scripted(self, currents, warmup, steady):
        from repro.power import PowerSupply

        supply = PowerSupply(TABLE1_SUPPLY, initial_current=70.0)
        simulation = Simulation(
            _ScriptedProcessor(currents), supply,
            benchmark="scripted", warmup_cycles=warmup,
        )
        return supply, simulation.run(steady)

    def test_warmup_burst_does_not_leak_into_steady_state(self):
        from repro.power import RLCAnalysis, waveforms

        analysis = RLCAnalysis(TABLE1_SUPPLY)
        warmup, steady = 2000, 1500
        # Resonant burst confined to the first 600 warmup cycles; the ring
        # has 14 periods to decay before steady state begins.
        currents = waveforms.square_wave(
            warmup + steady, analysis.resonant_period_cycles,
            amplitude_pp=60.0, mean=70.0, start=0, end=600,
        )
        supply, result = self._run_scripted(currents, warmup, steady)
        assert supply.violation_cycles > 0       # the burst did violate...
        assert result.violation_cycles == 0      # ...but only during warmup
        assert result.violation_events == 0
        # The fixed leak: a warmup transient used to pin this forever.
        assert supply.first_violation_cycle is None

    def test_first_violation_cycle_reflects_steady_state(self):
        from repro.power import RLCAnalysis, waveforms

        analysis = RLCAnalysis(TABLE1_SUPPLY)
        warmup, steady = 1000, 2000
        # Resonant drive throughout: violations occur in warmup and after.
        currents = waveforms.square_wave(
            warmup + steady, analysis.resonant_period_cycles,
            amplitude_pp=60.0, mean=70.0,
        )
        supply, result = self._run_scripted(currents, warmup, steady)
        assert result.violation_cycles > 0
        # Before the fix this reported the warmup-era cycle (< warmup).
        assert supply.first_violation_cycle >= warmup


class TestMetrics:
    def make_result(self, **kwargs):
        defaults = dict(
            benchmark="x", technique="t", cycles=1000, instructions=2000,
            energy_joules=1e-6, phantom_energy_joules=0.0,
            violation_cycles=10, violation_events=2,
        )
        defaults.update(kwargs)
        return SimulationResult(**defaults)

    def test_derived_properties(self):
        result = self.make_result()
        assert result.ipc == 2.0
        assert result.violation_fraction == 0.01
        assert result.energy_per_instruction == pytest.approx(5e-10)

    def test_relative_metrics(self):
        base = self.make_result()
        slower = self.make_result(
            technique="slow", instructions=1000, energy_joules=1e-6
        )
        relative = slower.relative_to(base)
        assert relative.slowdown == pytest.approx(2.0)
        assert relative.energy == pytest.approx(2.0)
        assert relative.energy_delay == pytest.approx(4.0)

    def test_relative_requires_same_benchmark(self):
        base = self.make_result()
        other = self.make_result(benchmark="y")
        with pytest.raises(SimulationError):
            other.relative_to(base)

    def test_zero_instruction_guard(self):
        result = self.make_result(instructions=0)
        with pytest.raises(SimulationError):
            _ = result.energy_per_instruction


class TestRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return BenchmarkRunner(SweepConfig(n_cycles=5_000, warmup_cycles=500))

    def test_base_runs_are_cached(self, runner):
        first = runner.run_base("gzip")
        second = runner.run_base("gzip")
        assert first is second

    def test_compare_produces_relative_metrics(self, runner):
        metrics = runner.compare(
            "gzip", lambda s, p: ResonanceTuningController(s, p)
        )
        assert metrics.benchmark == "gzip"
        assert metrics.slowdown >= 0.9

    def test_sweep_aggregates(self, runner):
        seen = []
        summary = runner.sweep(
            lambda s, p: ResonanceTuningController(s, p),
            benchmarks=["gzip", "vpr"],
            progress=lambda name, metrics: seen.append(name),
        )
        assert seen == ["gzip", "vpr"]
        assert len(summary.per_benchmark) == 2
        assert summary.avg_slowdown >= 0.9
        assert summary.worst_benchmark in ("gzip", "vpr")

    def test_summarize_counts_over_15_percent(self):
        from repro.sim.metrics import RelativeMetrics

        rows = [
            RelativeMetrics("a", "t", 1.20, 1.0, 1.2, 0, 0),
            RelativeMetrics("b", "t", 1.05, 1.0, 1.05, 0, 0),
        ]
        summary = summarize(rows)
        assert summary.apps_over_15_percent == 1
        assert summary.worst_benchmark == "a"

    def test_summarize_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])


class TestSeedStatistics:
    def test_compare_seeds_aggregates(self):
        runner = BenchmarkRunner(SweepConfig(n_cycles=4_000, warmup_cycles=500))
        stats = runner.compare_seeds(
            "gzip",
            lambda s, p: ResonanceTuningController(s, p),
            n_seeds=2,
        )
        assert stats.n_seeds == 2
        assert len(stats.runs) == 2
        assert stats.mean_slowdown >= 0.9
        assert stats.std_slowdown >= 0.0
        # Different seeds generate different traces (stats rarely identical).
        assert stats.runs[0].slowdown != stats.runs[1].slowdown

    def test_compare_seeds_rejects_zero(self):
        runner = BenchmarkRunner(SweepConfig(n_cycles=2_000))
        with pytest.raises(ValueError):
            runner.compare_seeds("gzip", lambda s, p: NullController(), 0)

    def test_base_cache_keyed_by_seed(self):
        runner = BenchmarkRunner(SweepConfig(n_cycles=2_000, warmup_cycles=200))
        a = runner.run_base("gzip")
        b = runner.run_base("gzip", seed=123)
        assert a is not b
        assert a is runner.run_base("gzip")


class TestDeterminism:
    def test_identical_runs_produce_identical_results(self):
        def run():
            runner = BenchmarkRunner(
                SweepConfig(n_cycles=5_000, warmup_cycles=500)
            )
            return runner.compare(
                "swim", lambda s, p: ResonanceTuningController(s, p)
            )

        a = run()
        b = run()
        assert a.slowdown == b.slowdown
        assert a.energy == b.energy
        assert a.violation_fraction == b.violation_fraction
        assert a.first_level_fraction == b.first_level_fraction

    def test_recorded_traces_are_reproducible(self):
        def currents():
            simulation = build_simulation("parser", record=True)
            simulation.run(1_000)
            return simulation.currents

        assert currents() == currents()
