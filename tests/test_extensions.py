"""Tests for the extension components: convolution baseline and wavelet
detection."""

import pytest

from repro.baselines import ConvolutionController
from repro.config import TABLE1_PROCESSOR, TABLE1_SUPPLY
from repro.core import ResonanceDetector, WaveletDetector, dyadic_scales_for_band
from repro.errors import ConfigurationError
from repro.power import waveforms
from repro.sim import BenchmarkRunner, SweepConfig


class TestConvolutionController:
    def make(self, **kwargs):
        return ConvolutionController(TABLE1_SUPPLY, TABLE1_PROCESSOR, **kwargs)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            self.make(guard_band_fraction=0.0)
        with pytest.raises(ConfigurationError):
            self.make(guard_band_fraction=1.5)
        with pytest.raises(ConfigurationError):
            self.make(lookahead_cycles=-1)
        with pytest.raises(ConfigurationError):
            self.make(estimate_gain=0.0)
        with pytest.raises(ConfigurationError):
            self.make(hold_cycles=0)

    def test_quiet_current_no_response(self):
        controller = self.make()
        for cycle in range(500):
            assert not controller.directives(cycle).stall_issue
            controller.observe(cycle, 70.0, 0.0)
        assert controller.response_cycles == 0

    def test_resonant_wave_triggers_response(self):
        controller = self.make()
        wave = waveforms.square_wave(1500, 100, 45.0, mean=70.0)
        responded = False
        for cycle, current in enumerate(wave):
            directives = controller.directives(cycle)
            if directives.stall_issue or directives.current_floor_amps:
                responded = True
            controller.observe(cycle, current, 0.0)
        assert responded
        assert controller.projections > 0

    def test_low_mode_stalls_high_mode_fires(self):
        controller = self.make()
        # Drive the internal model hard upward: current spike -> voltage dip.
        controller.observe(0, 70.0, 0.0)
        for cycle in range(1, 40):
            controller.observe(cycle, 110.0 if cycle % 2 else 36.0, 0.0)
        # Just check both directive kinds exist and are well-formed.
        assert controller._low_directives.stall_issue
        assert controller._high_directives.current_floor_amps > 0

    def test_estimate_model(self):
        controller = self.make(estimate_gain=0.5, estimate_offset_amps=3.0)
        assert controller._estimate(100.0) == pytest.approx(53.0)

    def test_closed_loop_eliminates_violations(self):
        runner = BenchmarkRunner(SweepConfig(n_cycles=20_000))
        base = runner.run_base("swim")
        assert base.violation_cycles > 0
        metrics = runner.compare(
            "swim", lambda s, p: ConvolutionController(s, p)
        )
        assert metrics.violation_fraction == 0.0


class TestDyadicScales:
    def test_table1_band_uses_16_and_32(self):
        assert dyadic_scales_for_band(range(42, 60)) == [16, 32]

    def test_single_period_band(self):
        scales = dyadic_scales_for_band([50])
        assert scales == [16, 32]

    def test_wide_band_includes_intermediate_scales(self):
        scales = dyadic_scales_for_band(range(20, 300))
        assert scales[0] <= 10
        assert scales[-1] >= 128
        for a, b in zip(scales, scales[1:]):
            assert b == 2 * a

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            dyadic_scales_for_band([])


class TestWaveletDetector:
    def test_fewer_adders_than_full_detector(self):
        full = ResonanceDetector(range(42, 60), 26.0, 4)
        wavelet = WaveletDetector(range(42, 60), 26.0, 4)
        assert wavelet.adder_count < full.adder_count
        assert wavelet.adder_count == 2

    def test_detects_resonant_wave(self):
        detector = WaveletDetector(range(42, 60), 26.0, 4)
        wave = waveforms.square_wave(1200, 100, 40.0, mean=70.0)
        max_count = 0
        for cycle, current in enumerate(wave):
            event = detector.observe(cycle, current)
            if event is not None:
                max_count = max(max_count, event.count)
        assert max_count >= 4

    def test_flat_current_quiet(self):
        detector = WaveletDetector(range(42, 60), 26.0, 4)
        for cycle in range(300):
            assert detector.observe(cycle, 70.0) is None

    def test_less_selective_than_full_detector(self):
        """The 16-cycle scale also fires on above-band variations (28-cycle
        period, quarter 14) that the quarter-period detector, whose smallest
        adder is 21 cycles, largely ignores."""
        fast_wave = waveforms.square_wave(1200, 28, 45.0, mean=70.0)

        def events(detector):
            count = 0
            for cycle, current in enumerate(fast_wave):
                if detector.observe(cycle, current) is not None:
                    count += 1
            return count

        full = events(ResonanceDetector(range(42, 60), 26.0, 4))
        wavelet = events(WaveletDetector(range(42, 60), 26.0, 4))
        assert wavelet > 3 * full
