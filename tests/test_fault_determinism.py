"""Seed-determinism properties for every fault model and the attacker.

The robustness campaign's reproducibility rests on each fault stream being
a pure function of ``(seed, cycle)``.  For all six sensor-fault models and
the resonant attacker this suite checks:

* **same seed => identical stream**, including after ``reset()`` (every
  model is replayable);
* **different seed => different stream** for the *stochastic* models
  (dropped samples, burst noise, delay jitter) and the attacker's phase.
  Stuck-at, drift and saturation are deterministic transfer functions that
  ignore their RNG by design, so seed variation must (and does) leave them
  unchanged -- asserted explicitly rather than skipped.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import TABLE1_SUPPLY
from repro.faults import (
    BurstNoiseFault,
    DelayJitterFault,
    DriftFault,
    DroppedSampleFault,
    ResonantAttacker,
    SaturationFault,
    StuckAtFault,
)
from repro.power import PowerSupply

SEEDS = st.integers(0, 2**31 - 1)


def _input_stream(n=300, seed=7):
    rng = np.random.default_rng(seed)
    return 60.0 + 20.0 * np.sin(np.arange(n) / 9.0) + rng.normal(0, 3.0, n)


def _stream(fault, inputs):
    return [fault.apply(cycle, float(x)) for cycle, x in enumerate(inputs)]


def _replayed(fault, inputs):
    first = _stream(fault, inputs)
    fault.reset()
    second = _stream(fault, inputs)
    return first, second


# Builders keyed by name; parameters chosen so the stochastic models have
# overwhelming probability of visible divergence over a 300-cycle stream.
_BUILDERS = {
    "stuck": lambda seed: StuckAtFault(
        value_amps=45.0, start_cycle=30, duration_cycles=90, seed=seed
    ),
    "drop": lambda seed: DroppedSampleFault(drop_probability=0.35, seed=seed),
    "burst": lambda seed: BurstNoiseFault(
        amplitude_pp_amps=12.0, burst_probability=0.05,
        burst_length_cycles=20, seed=seed,
    ),
    "drift": lambda seed: DriftFault(
        drift_amps_per_kilocycle=15.0, max_offset_amps=10.0, seed=seed
    ),
    "sat": lambda seed: SaturationFault(full_scale_amps=70.0, seed=seed),
    "jitter": lambda seed: DelayJitterFault(
        max_extra_delay_cycles=5, jitter_probability=0.3, seed=seed
    ),
}
_STOCHASTIC = ("drop", "burst", "jitter")
_DETERMINISTIC = ("stuck", "drift", "sat")


class TestSameSeedIdentical:
    @pytest.mark.parametrize("name", sorted(_BUILDERS))
    @given(seed=SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_two_instances_agree(self, name, seed):
        inputs = _input_stream()
        a = _stream(_BUILDERS[name](seed), inputs)
        b = _stream(_BUILDERS[name](seed), inputs)
        assert a == b

    @pytest.mark.parametrize("name", sorted(_BUILDERS))
    @given(seed=SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_reset_replays_exactly(self, name, seed):
        inputs = _input_stream()
        first, second = _replayed(_BUILDERS[name](seed), inputs)
        assert first == second


class TestDifferentSeedDiverges:
    @pytest.mark.parametrize("name", _STOCHASTIC)
    @given(seed_a=SEEDS, seed_b=SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_stochastic_streams_differ(self, name, seed_a, seed_b):
        if seed_a == seed_b:
            return
        inputs = _input_stream()
        a = _stream(_BUILDERS[name](seed_a), inputs)
        b = _stream(_BUILDERS[name](seed_b), inputs)
        assert a != b

    @pytest.mark.parametrize("name", _DETERMINISTIC)
    @given(seed_a=SEEDS, seed_b=SEEDS)
    @settings(max_examples=15, deadline=None)
    def test_deterministic_models_ignore_their_seed(self, name, seed_a, seed_b):
        """Stuck-at, drift and saturation are pure transfer functions: the
        seed exists only for interface uniformity and must not leak into
        the stream."""
        inputs = _input_stream()
        a = _stream(_BUILDERS[name](seed_a), inputs)
        b = _stream(_BUILDERS[name](seed_b), inputs)
        assert a == b


class TestResonantAttackerDeterminism:
    def _attack_stream(self, seed, n=400):
        attacker = ResonantAttacker(
            PowerSupply(TABLE1_SUPPLY, initial_current=40.0),
            amplitude_amps=20.0,
            seed=seed,
        )
        stream = []
        for _ in range(n):
            stream.append(attacker.attack_current())
            attacker.step(40.0)
        return stream

    @given(seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_same_seed_identical_injection(self, seed):
        assert self._attack_stream(seed) == self._attack_stream(seed)

    def test_different_seed_shifts_the_phase(self):
        """The seed draws the square wave's phase: among a handful of seeds
        at least two must produce different injection streams (100 possible
        phases for the Table 1 resonant period)."""
        streams = {tuple(self._attack_stream(seed)) for seed in range(6)}
        assert len(streams) > 1

    @given(seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_voltage_response_reproducible_end_to_end(self, seed):
        """Same seed through the full supply wrapper: bit-identical voltage
        streams (the property the checkpoint/resume machinery relies on)."""
        def run():
            attacker = ResonantAttacker(
                PowerSupply(TABLE1_SUPPLY, initial_current=40.0),
                amplitude_amps=25.0, episode_periods=3, gap_cycles=50,
                seed=seed,
            )
            return [attacker.step(40.0) for _ in range(500)]

        assert run() == run()
