"""Tests for trace-context propagation, the sampling profiler, and the
ops report (the second tier of ``repro.obs``).

The propagation tests exercise the whole seam chain with real sweeps:
fixed-seed runs must produce byte-identical trace linkage per backend,
the pool and dist backends must agree on the sweep's ``trace_id``, and a
multi-process sweep must land spans from at least two pids in one trace.
"""

import dataclasses
import json
import pathlib

import pytest

from repro import obs
from repro.core import ResonanceTuningController
from repro.obs import context as obs_context
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.obs.context import TraceContext, current_context, use_context
from repro.obs.log import reset_warn_dedup
from repro.obs.profile import SamplingProfiler
from repro.obs.report import build_report, render_html
from repro.obs.trace import load_trace_events
from repro.sim import BenchmarkRunner, ResilienceConfig, SweepConfig


def tuning_factory(supply, processor):
    """Module-level (hence picklable) controller factory."""
    return ResonanceTuningController(supply, processor)


SMALL = SweepConfig(n_cycles=2000, warmup_cycles=200)
BENCHMARKS = ("swim", "gzip")


def _reset_obs():
    obs_trace.set_active_tracer(None)
    obs_metrics.set_active_registry(None)
    profiler = obs_profile.active_profiler()
    if profiler is not None:
        profiler.stop()
    obs_profile.set_active_profiler(None)
    obs._trace_out = None
    obs._metrics_out = None
    obs._profile_out = None
    reset_warn_dedup()


@pytest.fixture(autouse=True)
def clean_obs_state():
    _reset_obs()
    yield
    _reset_obs()


# ----------------------------------------------------------------------
# TraceContext unit behaviour
# ----------------------------------------------------------------------

class TestTraceContext:
    def test_ids_are_deterministic(self):
        a = TraceContext.root("sweep|tuning|0")
        b = TraceContext.root("sweep|tuning|0")
        assert a == b
        assert len(a.trace_id) == 32
        assert len(a.span_id) == 16
        assert a.parent_id is None
        assert TraceContext.root("sweep|tuning|1") != a

    def test_child_links_to_parent(self):
        root = TraceContext.root("job|j1")
        child = root.child("cell|swim")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id
        assert root.child("cell|swim") == child
        assert root.child("cell|gzip") != child

    def test_dict_round_trip(self):
        ctx = TraceContext.root("x").child("y")
        assert TraceContext.from_dict(ctx.to_dict()) == ctx
        assert TraceContext.from_dict(None) is None
        assert TraceContext.from_dict({"trace_id": 7}) is None
        assert TraceContext.from_dict("nope") is None

    def test_traceparent_round_trip(self):
        ctx = TraceContext.root("job|abc")
        parsed = TraceContext.from_traceparent(ctx.to_traceparent())
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id
        assert TraceContext.from_traceparent(None) is None
        assert TraceContext.from_traceparent("garbage") is None
        assert TraceContext.from_traceparent("00-zz-ff-01") is None

    def test_use_context_is_scoped_and_nestable(self):
        outer = TraceContext.root("outer")
        inner = outer.child("inner")
        assert current_context() is None
        with use_context(outer):
            assert current_context() == outer
            assert obs_context.context_is_remote() is False
            with use_context(inner, remote=True):
                assert current_context() == inner
                assert obs_context.context_is_remote() is True
            assert current_context() == outer
        assert current_context() is None

    def test_use_context_none_is_noop(self):
        with use_context(None) as installed:
            assert installed is None
            assert current_context() is None


# ----------------------------------------------------------------------
# Sampling profiler
# ----------------------------------------------------------------------

def _busy(deadline_s=0.25):
    import time
    total = 0
    end = time.perf_counter() + deadline_s
    while time.perf_counter() < end:
        total += sum(range(200))
    return total


class TestSamplingProfiler:
    def test_collects_samples_from_busy_thread(self):
        profiler = SamplingProfiler(interval_s=0.001)
        profiler.start()
        try:
            with profiler.attribute("swim|tuning|-"):
                _busy()
        finally:
            profiler.stop()
        assert profiler.sample_count() > 0
        labels = {label for (label, _stack) in profiler.snapshot()}
        assert "swim|tuning|-" in labels
        stacks = [
            stack for (label, stack) in profiler.snapshot()
            if label == "swim|tuning|-"
        ]
        assert any("_busy" in frame for stack in stacks for frame in stack)

    def test_attribute_restores_previous_label(self):
        profiler = SamplingProfiler()
        with profiler.attribute("outer"):
            with profiler.attribute("inner"):
                pass
            import threading
            assert profiler._labels[threading.get_ident()] == "outer"

    def test_speedscope_and_collapsed_output(self, tmp_path):
        processes = [{
            "pid": 42,
            "label": "sweep",
            "samples": [
                ["swim|tuning|-", ["main (cli.py:1)", "run (sim.py:2)"], 3],
                ["-", ["idle (x.py:9)"], 1],
            ],
        }]
        speedscope = tmp_path / "profile.json"
        collapsed = tmp_path / "profile.collapsed"
        obs_profile.write_speedscope(str(speedscope), processes)
        obs_profile.write_collapsed(str(collapsed), processes)

        payload = json.loads(speedscope.read_text())
        assert payload["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json"
        )
        frames = [f["name"] for f in payload["shared"]["frames"]]
        assert "[cell swim|tuning|-]" in frames
        assert "main (cli.py:1)" in frames
        profile = payload["profiles"][0]
        assert profile["type"] == "sampled"
        assert profile["endValue"] == sum(profile["weights"]) == 4
        assert len(profile["samples"]) == len(profile["weights"])
        for sample in profile["samples"]:
            assert all(0 <= i < len(frames) for i in sample)

        lines = collapsed.read_text().splitlines()
        assert (
            "[cell swim|tuning|-];main (cli.py:1);run (sim.py:2) 3" in lines
        )
        assert "idle (x.py:9) 1" in lines

    def test_shard_merge(self, tmp_path):
        shard_dir = tmp_path / "profile.json.shards"
        shard_dir.mkdir()
        (shard_dir / "pid-7.json").write_text(json.dumps({
            "pid": 7, "label": "worker-0",
            "samples": [["a|b|1", ["f (m.py:1)"], 2]],
        }))
        (shard_dir / "pid-8.json").write_text('{"torn": tru')
        own = SamplingProfiler(process_label="sweep")
        processes = obs_profile.merge_profiles(own, str(shard_dir))
        labels = [p["label"] for p in processes]
        assert labels == ["sweep", "worker-0"]

    def test_configure_finalize_writes_profile(self, tmp_path):
        profile_path = tmp_path / "profile.json"
        obs.configure(profile_out=str(profile_path))
        assert obs.is_configured()
        _busy(0.1)
        written = obs.finalize()
        assert [pathlib.Path(p).name for p in written] == [
            "profile.json", "profile.json.collapsed",
        ]
        payload = json.loads(profile_path.read_text())
        assert payload["profiles"]
        assert not (tmp_path / "profile.json.shards").exists()
        assert obs_profile.active_profiler() is None


# ----------------------------------------------------------------------
# Context propagation through real sweeps
# ----------------------------------------------------------------------

def _traced_sweep(tmp_path, tag, workers=1, backend=None):
    """Run one traced sweep; return (summary, events)."""
    trace_path = tmp_path / f"trace-{tag}.json"
    obs.configure(trace_out=str(trace_path))
    try:
        resilience = ResilienceConfig(workers=workers)
        if backend is not None:
            resilience = dataclasses.replace(resilience, backend=backend)
        with BenchmarkRunner(SMALL) as runner:
            summary = runner.sweep(
                tuning_factory, benchmarks=BENCHMARKS, resilience=resilience
            )
    finally:
        obs.finalize()
    return summary, load_trace_events(str(trace_path))


def _linkage(events):
    """The deterministic id triples of every context-carrying span."""
    triples = set()
    for event in events:
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        if "trace_id" in args:
            triples.add((
                event.get("name"),
                args["trace_id"],
                args["span_id"],
                args.get("parent_id"),
            ))
    return triples


class TestContextPropagation:
    def test_sequential_linkage_is_deterministic(self, tmp_path):
        _, first = _traced_sweep(tmp_path, "a")
        _, second = _traced_sweep(tmp_path, "b")
        linkage = _linkage(first)
        assert linkage == _linkage(second)
        trace_ids = {t[1] for t in linkage}
        assert len(trace_ids) == 1
        # every cell span hangs under the sweep span; kernel runs hang
        # under their cell -- except the staged base-processor runs,
        # which are shared by the whole sweep and parent under it
        by_span = {t[2]: t for t in linkage}
        sweep = next(t for t in linkage if t[0] == "sweep")
        cell_spans = set()
        for name, _trace, _span, parent in linkage:
            if name.startswith("cell "):
                assert parent == sweep[2]
                cell_spans.add(_span)
        run_parents = {
            t[3] for t in linkage if t[0].startswith("run ")
        }
        assert run_parents <= cell_spans | {sweep[2]}
        assert cell_spans <= run_parents  # each cell ran its kernel

    def test_pool_backend_matches_sequential_ids(self, tmp_path):
        _, sequential = _traced_sweep(tmp_path, "seq")
        _, pooled = _traced_sweep(tmp_path, "pool", workers=2)
        seq_linkage = _linkage(sequential)
        pool_linkage = _linkage(pooled)

        def split(linkage):
            runs = {t for t in linkage if t[0].startswith("run ")}
            return linkage - runs, runs

        seq_tree, seq_runs = split(seq_linkage)
        pool_tree, pool_runs = split(pool_linkage)
        # Identical sweep/cell linkage on both backends -- the ids are
        # derived, not random.
        assert seq_tree == pool_tree
        # Kernel runs also derive identically; the backends only differ
        # in where the *base-processor* run executes (staged under the
        # sweep span sequentially, on demand under the cell span in a
        # worker), so the technique runs -- the cell-parented sequential
        # ones -- must appear verbatim in the pool linkage.
        cell_spans = {t[2] for t in seq_tree if t[0].startswith("cell ")}
        seq_cell_runs = {t for t in seq_runs if t[3] in cell_spans}
        assert seq_cell_runs and seq_cell_runs <= pool_runs
        assert {t[1] for t in pool_runs} == {t[1] for t in seq_runs}

    def test_pool_spans_cross_processes_in_one_trace(self, tmp_path):
        _, events = _traced_sweep(tmp_path, "pids", workers=2)
        trace_ids = {
            e["args"]["trace_id"]
            for e in events
            if e.get("ph") == "X" and "trace_id" in e.get("args", {})
        }
        assert len(trace_ids) == 1
        pids = {
            e["pid"]
            for e in events
            if e.get("ph") == "X"
            and e.get("args", {}).get("trace_id") in trace_ids
        }
        assert len(pids) >= 2

    def test_pool_emits_bound_flow_events(self, tmp_path):
        _, events = _traced_sweep(tmp_path, "flow", workers=2)
        starts = {e["id"] for e in events if e.get("ph") == "s"}
        ends = {e["id"] for e in events if e.get("ph") == "f"}
        assert starts  # dispatcher emitted flow arrows
        assert ends <= starts  # every arrowhead has a tail
        cell_span_ids = {
            e["args"]["span_id"]
            for e in events
            if e.get("ph") == "X" and e.get("cat") == "cell"
            and "span_id" in e.get("args", {})
        }
        assert ends and ends <= cell_span_ids

    @pytest.mark.slow
    def test_dist_backend_shares_trace_id_with_pool(self, tmp_path):
        _, pooled = _traced_sweep(tmp_path, "pool", workers=2)
        _, dist_a = _traced_sweep(
            tmp_path, "dist-a", workers=2, backend="dist"
        )
        _, dist_b = _traced_sweep(
            tmp_path, "dist-b", workers=2, backend="dist"
        )
        # dist linkage is deterministic run to run ...
        assert _linkage(dist_a) == _linkage(dist_b)
        # ... and shares the sweep trace with the pool backend (the
        # lease tier adds spans, so the *sets* differ by design).
        pool_traces = {t[1] for t in _linkage(pooled)}
        dist_traces = {t[1] for t in _linkage(dist_a)}
        assert pool_traces == dist_traces and len(dist_traces) == 1
        # the lease tier parents the dist cells
        lease_spans = {
            t[2] for t in _linkage(dist_a) if t[0].startswith("lease ")
        }
        cell_parents = {
            t[3] for t in _linkage(dist_a) if t[0].startswith("cell ")
        }
        assert lease_spans and cell_parents <= lease_spans


# ----------------------------------------------------------------------
# Ops report
# ----------------------------------------------------------------------

class TestOpsReport:
    def test_report_from_real_artifacts(self, tmp_path):
        obs.configure(
            trace_out=str(tmp_path / "trace.json"),
            metrics_out=str(tmp_path / "metrics.json"),
            profile_out=str(tmp_path / "profile.json"),
        )
        try:
            with BenchmarkRunner(SMALL) as runner:
                runner.sweep(tuning_factory, benchmarks=BENCHMARKS)
        finally:
            obs.finalize()
        report = build_report(
            str(tmp_path / "trace.json"),
            metrics_path=str(tmp_path / "metrics.json"),
            profile_path=str(tmp_path / "profile.json"),
        )
        assert report["event_count"] > 0
        assert report["trace_ids"]
        assert report["waterfall"]
        assert report["histogram"]["count"] == len(BENCHMARKS)
        html_text = render_html(report)
        assert html_text.startswith("<!doctype html>")
        assert "Phase waterfall" in html_text
        assert "cell swim" in html_text
        assert "<script" not in html_text  # self-contained, no assets

    def test_report_escapes_hostile_names(self, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps({"traceEvents": [
            {"ph": "X", "name": "cell <img src=x>", "cat": "cell",
             "ts": 0.0, "dur": 5.0, "pid": 1, "tid": 1,
             "args": {"technique": '"><script>alert(1)</script>'}},
        ]}))
        html_text = render_html(build_report(str(trace)))
        assert "<script>alert" not in html_text
        assert "<img" not in html_text

    def test_cli_entrypoint_writes_html(self, tmp_path, capsys):
        from repro.obs import report as obs_report
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps({"traceEvents": []}))
        out = tmp_path / "report.html"
        assert obs_report.main(
            ["--trace", str(trace), "--out", str(out)]
        ) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_cli_entrypoint_rejects_missing_trace(self, tmp_path, capsys):
        from repro.obs import report as obs_report
        assert obs_report.main(
            ["--trace", str(tmp_path / "nope.json"),
             "--out", str(tmp_path / "r.html")]
        ) == 2
        assert "cannot read" in capsys.readouterr().err
