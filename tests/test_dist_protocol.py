"""Tests for the distributed wire protocol (repro.dist.protocol).

Covers frame encode/decode round trips over a real socket pair, the
incremental FrameBuffer under arbitrary segmentation, the hostile-input
paths (oversized lengths, malformed JSON, untyped payloads, mid-frame
EOF), and the base64/pickle blob helpers that carry binary payloads
inside JSON frames.
"""

import socket
import struct
import threading

import pytest

from repro.dist.protocol import (
    MAX_FRAME_BYTES,
    FrameBuffer,
    decode_blob,
    encode_blob,
    encode_frame,
    pickle_blob,
    recv_message,
    send_message,
    unpickle_blob,
)
from repro.errors import DistributedError, HarnessError


class TestFraming:
    def test_encode_frame_layout(self):
        frame = encode_frame({"type": "heartbeat"})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert frame[4:] == b'{"type":"heartbeat"}'

    def test_encode_frame_is_canonical(self):
        # sort_keys + tight separators: same dict, same bytes.
        a = encode_frame({"b": 1, "a": 2, "type": "x"})
        b = encode_frame({"type": "x", "a": 2, "b": 1})
        assert a == b

    def test_socket_round_trip(self):
        left, right = socket.socketpair()
        try:
            messages = [
                {"type": "hello", "pid": 1234},
                {"type": "result", "metrics": None, "failure": {"x": 1.5}},
            ]
            writer = threading.Thread(
                target=lambda: [send_message(left, m) for m in messages]
            )
            writer.start()
            received = [recv_message(right), recv_message(right)]
            writer.join()
            assert received == messages
        finally:
            left.close()
            right.close()

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_message(right) is None
        finally:
            right.close()

    def test_eof_mid_frame_raises(self):
        left, right = socket.socketpair()
        try:
            frame = encode_frame({"type": "hello"})
            left.sendall(frame[:7])  # header + 3 payload bytes, then EOF
            left.close()
            with pytest.raises(DistributedError):
                recv_message(right)
        finally:
            right.close()

    def test_oversize_length_prefix_rejected_before_allocation(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(DistributedError):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_untyped_payload_rejected(self):
        left, right = socket.socketpair()
        try:
            payload = b'{"no_type_field": 1}'
            left.sendall(struct.pack(">I", len(payload)) + payload)
            with pytest.raises(DistributedError):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_distributed_error_is_a_harness_error(self):
        assert issubclass(DistributedError, HarnessError)


class TestFrameBuffer:
    def test_byte_at_a_time_segmentation(self):
        frames = encode_frame({"type": "a"}) + encode_frame(
            {"type": "b", "n": 7}
        )
        buffer = FrameBuffer()
        seen = []
        for i in range(len(frames)):
            buffer.feed(frames[i:i + 1])
            seen.extend(buffer.messages())
        assert seen == [{"type": "a"}, {"type": "b", "n": 7}]

    def test_incomplete_frame_yields_nothing(self):
        frame = encode_frame({"type": "hello"})
        buffer = FrameBuffer()
        buffer.feed(frame[:-1])
        assert list(buffer.messages()) == []
        buffer.feed(frame[-1:])
        assert list(buffer.messages()) == [{"type": "hello"}]

    def test_oversize_length_poisons_stream(self):
        buffer = FrameBuffer()
        buffer.feed(struct.pack(">I", MAX_FRAME_BYTES + 1) + b"x")
        with pytest.raises(DistributedError):
            list(buffer.messages())

    def test_malformed_json_poisons_stream(self):
        payload = b"{not json"
        buffer = FrameBuffer()
        buffer.feed(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(DistributedError):
            list(buffer.messages())

    def test_untyped_message_poisons_stream(self):
        payload = b"[1,2,3]"
        buffer = FrameBuffer()
        buffer.feed(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(DistributedError):
            list(buffer.messages())


class TestBlobs:
    def test_bytes_round_trip(self):
        data = bytes(range(256)) * 3
        assert decode_blob(encode_blob(data)) == data

    def test_invalid_base64_raises(self):
        with pytest.raises(DistributedError):
            decode_blob("!!! not base64 !!!")

    def test_pickle_round_trip(self):
        obj = {"cells": [("swim", 0), ("gzip", 3)], "tuning": 1.25}
        assert unpickle_blob(pickle_blob(obj)) == obj
