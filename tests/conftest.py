"""Shared pytest fixtures and Hypothesis profiles.

Profiles (select with ``HYPOTHESIS_PROFILE``, default ``dev``):

* ``dev`` -- random exploration, no deadline (local runs keep finding new
  counterexamples over time).
* ``ci`` -- derandomized with a fixed 5-second per-example deadline:
  reruns of the same commit execute the identical example set, so a CI
  failure is always reproducible locally with the same profile and never
  a fuzz-lottery flake.
"""

import os
from datetime import timedelta

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=timedelta(seconds=5),
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
