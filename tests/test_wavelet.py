"""Unit tests for the wavelet-based alternative detector (core/wavelet.py)."""

import pytest

from repro.config import TABLE1_SUPPLY
from repro.core import ResonanceDetector, WaveletDetector, dyadic_scales_for_band
from repro.errors import ConfigurationError
from repro.power import RLCAnalysis, waveforms


class TestDyadicScales:
    def test_table1_band_needs_two_scales(self):
        """Quarter periods 21-29 bracket to [16, 32] -- the docstring's own
        example and the '2 adders vs 9' hardware claim."""
        assert dyadic_scales_for_band(range(42, 60)) == [16, 32]

    def test_exact_power_of_two_band_collapses_to_one_scale(self):
        # Half-periods 32..32 -> quarter 16, already dyadic on both ends.
        assert dyadic_scales_for_band([32]) == [16]

    def test_wide_band_includes_intermediate_scales(self):
        # Quarters 3..33: low bracket 2, high bracket 64, intermediates kept.
        scales = dyadic_scales_for_band(range(6, 67))
        assert scales == [2, 4, 8, 16, 32, 64]

    def test_scales_bracket_the_quarters(self):
        for h_lo in (4, 10, 25, 41):
            for width in (0, 5, 20):
                half = range(h_lo, h_lo + width + 1)
                quarters = sorted({h // 2 for h in half})
                scales = dyadic_scales_for_band(half)
                assert scales[0] <= quarters[0]
                assert scales[-1] >= quarters[-1]
                assert all(s & (s - 1) == 0 for s in scales)

    def test_empty_band_rejected(self):
        with pytest.raises(ConfigurationError):
            dyadic_scales_for_band([])

    def test_sub_two_cycle_half_period_rejected(self):
        with pytest.raises(ConfigurationError):
            dyadic_scales_for_band([1])


class TestWaveletDetector:
    def _band(self):
        return RLCAnalysis(TABLE1_SUPPLY).band.half_periods

    def test_uses_fewer_adders_than_full_detector(self):
        full = ResonanceDetector(self._band(), 26.0, 4)
        wavelet = WaveletDetector(self._band(), 26.0, 4)
        assert wavelet.adder_count == 2
        assert full.adder_count == 9
        assert wavelet.adder_count < full.adder_count

    def test_flat_current_never_triggers(self):
        detector = WaveletDetector(self._band(), 26.0, 4)
        for cycle in range(400):
            assert detector.observe(cycle, 70.0) is None

    def test_detects_resonant_square_wave(self):
        """A strong band-centre square wave must still be caught despite the
        coarser dyadic frequency resolution."""
        detector = WaveletDetector(self._band(), 26.0, 4)
        wave = waveforms.square_wave(1500, 100, 45.0, mean=70.0)
        events = [
            detector.observe(cycle, float(amps))
            for cycle, amps in enumerate(wave)
        ]
        hits = [e for e in events if e is not None]
        assert hits, "wavelet detector missed a band-centre resonance"
        assert max(e.count for e in hits) >= 4

    def test_count_respects_repetition_tolerance_cap(self):
        detector = WaveletDetector(self._band(), 26.0, 4)
        wave = waveforms.square_wave(2000, 100, 50.0, mean=70.0)
        counts = [
            event.count
            for cycle, amps in enumerate(wave)
            if (event := detector.observe(cycle, float(amps))) is not None
        ]
        assert counts and max(counts) <= 5  # tolerance + 1

    def test_in_band_sine_onset_comparable_to_full_detector(self):
        """Two dyadic adders buy nearly the full detector's sensitivity:
        the in-band sine detection-onset amplitudes of the two detectors
        stay within 2 A of each other across the band (measured: the
        wavelet detector's onset is equal or up to ~1 A *lower*, because
        the scale-16 window needs less integrated charge than an aligned
        quarter; the chaining machinery, which both share, provides the
        frequency selectivity)."""
        band = self._band()

        def onset(detector_cls, period_cycles):
            for tenth in range(120, 400, 5):
                detector = detector_cls(band, 26.0, 4)
                wave = waveforms.sine_wave(1500, period_cycles, tenth / 10.0,
                                           mean=70.0)
                if any(
                    detector.observe(cycle, float(amps)) is not None
                    for cycle, amps in enumerate(wave)
                ):
                    return tenth / 10.0
            return None

        for period in (2 * min(band), 100, 2 * max(band)):
            full = onset(ResonanceDetector, period)
            wavelet = onset(WaveletDetector, period)
            assert full is not None and wavelet is not None
            assert abs(full - wavelet) <= 2.0, (period, full, wavelet)
