"""Differential tests pinning the vectorized cycle kernel to the scalar path.

``repro.core.kernel`` promises bit-for-bit agreement with the per-cycle
``ResonanceDetector.observe`` / ``PowerSupply.step`` loops on exactly
representable traces (the dyadic sensor grid -- the same contract as
``repro.oracles.ReferenceDetector``).  Hypothesis drives both
implementations over fuzzed band configs, segmented traces, NaN drops and
mounted fault chains; any divergence is a real bug, never float noise.
"""

import dataclasses
import json
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import TABLE1_PROCESSOR, TABLE1_SUPPLY, TABLE1_TUNING
from repro.core import (
    CurrentSensor,
    NullController,
    ResonanceDetector,
    ResonanceTuningController,
    kernel_enabled,
    run_detector,
    run_supply,
    run_supply_batch,
)
from repro.core.kernel import KERNEL_ENV
from repro.errors import FaultError, SimulationError
from repro.faults import FaultySensor
from repro.power import PowerSupply
from repro.sim.simulation import Simulation, run_batch
from repro.uarch import SPEC2K, Processor

from tests.strategies import (
    band_configs,
    band_traces,
    fault_overlays,
    quantize_to_grid,
    supply_stimuli,
    underdamped_supply_configs,
)


# ----------------------------------------------------------------------
# Detector kernel vs scalar observe loop
# ----------------------------------------------------------------------
def _scalar_events(config, trace):
    detector = ResonanceDetector(**config)
    events = []
    for cycle, amps in enumerate(trace):
        event = detector.observe(cycle, float(amps))
        if event is not None:
            events.append(event)
    return detector, events


def _assert_kernel_matches_scalar(config, trace):
    scalar, expected = _scalar_events(config, trace)
    kernel = ResonanceDetector(**config)
    got = run_detector(kernel, [float(amps) for amps in trace])
    assert got == expected
    assert kernel.comparisons == scalar.comparisons
    assert kernel.total_events == scalar.total_events
    assert kernel.nonfinite_samples == scalar.nonfinite_samples
    assert kernel.events_by_polarity == scalar.events_by_polarity
    assert kernel.last_event == scalar.last_event
    assert kernel._last_finite_amps == scalar._last_finite_amps


class TestDetectorKernelDifferential:
    @given(data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_matches_scalar_on_fuzzed_traces(self, data):
        """Fuzzed traces, including NaN drops (the hold-last-finite path)."""
        config = data.draw(band_configs())
        trace = data.draw(band_traces(config))
        _assert_kernel_matches_scalar(config, trace)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_under_fault_overlays(self, data):
        """Mounted fault chains (degraded inputs) must not split the pair."""
        config = data.draw(band_configs())
        trace = data.draw(band_traces(config, allow_nan=False))
        sensor = FaultySensor(data.draw(fault_overlays()), base=CurrentSensor())
        faulted = quantize_to_grid(
            np.asarray([sensor.read(float(x)) for x in trace])
        )
        _assert_kernel_matches_scalar(config, faulted)

    def test_all_nan_trace_holds_zero(self):
        config = {
            "half_periods": range(4, 8),
            "threshold_amps": 10.0,
            "max_repetition_tolerance": 3,
        }
        trace = [math.nan] * 60
        _assert_kernel_matches_scalar(config, trace)

    def test_empty_trace_is_a_no_op(self):
        detector = ResonanceDetector(
            half_periods=range(4, 8), threshold_amps=10.0,
            max_repetition_tolerance=3,
        )
        assert run_detector(detector, []) == []
        assert detector.comparisons == 0

    def test_requires_fresh_detector(self):
        detector = ResonanceDetector(
            half_periods=range(4, 8), threshold_amps=10.0,
            max_repetition_tolerance=3,
        )
        detector.observe(0, 10.0)
        with pytest.raises(SimulationError):
            run_detector(detector, [10.0, 10.0])

    def test_consumed_detector_rejects_stray_observe(self):
        detector = ResonanceDetector(
            half_periods=range(4, 8), threshold_amps=10.0,
            max_repetition_tolerance=3,
        )
        run_detector(detector, [10.0] * 40)
        with pytest.raises(SimulationError):
            detector.observe(40, 10.0)


# ----------------------------------------------------------------------
# Supply kernel vs scalar step loop
# ----------------------------------------------------------------------
def _supply_state(supply):
    state = supply._integrator.state
    return {
        "cycle": supply.cycle,
        "violation_cycles": supply.violation_cycles,
        "violation_events": supply.violation_events,
        "first_violation_cycle": supply.first_violation_cycle,
        "in_violation": supply._in_violation,
        "last_voltage": supply.last_voltage,
        "voltage": state.voltage,
        "inductor_current": state.inductor_current,
        "trace": None if supply.trace is None else (
            supply.trace.currents, supply.trace.voltages,
            supply.trace.violations,
        ),
    }


def _assert_supplies_agree(config, trace, substeps=1, initial=0.0):
    scalar = PowerSupply(
        config, initial_current=initial, record=True, substeps=substeps
    )
    kernel = PowerSupply(
        config, initial_current=initial, record=True, substeps=substeps
    )
    scalar_error = kernel_error = None
    scalar_volts = []
    try:
        for amps in trace:
            scalar_volts.append(scalar.step(float(amps)))
    except (FaultError, SimulationError) as exc:
        scalar_error = exc
    try:
        kernel_volts = run_supply(kernel, trace)
    except (FaultError, SimulationError) as exc:
        kernel_error = exc
        kernel_volts = None
    assert type(kernel_error) is type(scalar_error)
    if scalar_error is not None:
        assert str(kernel_error) == str(scalar_error)
    else:
        assert kernel_volts.tolist() == scalar_volts
    assert _supply_state(kernel) == _supply_state(scalar)


class TestSupplyKernelDifferential:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_step_loop_on_fuzzed_stimuli(self, data):
        config = data.draw(underdamped_supply_configs())
        trace = data.draw(supply_stimuli(config))
        substeps = data.draw(st.sampled_from([1, 1, 2, 3]))
        initial = data.draw(st.floats(0.0, 90.0))
        _assert_supplies_agree(config, trace, substeps, initial)

    def test_matches_on_table1_supply(self):
        rng = np.random.default_rng(7)
        trace = 60.0 + 30.0 * np.sin(0.06 * np.arange(3000)) + rng.normal(
            0.0, 4.0, 3000
        )
        _assert_supplies_agree(TABLE1_SUPPLY, trace, initial=60.0)

    def test_fault_error_at_exact_cycle(self):
        trace = [50.0] * 10 + [math.nan] + [50.0] * 5
        _assert_supplies_agree(TABLE1_SUPPLY, trace, initial=50.0)

    def test_divergence_error_matches(self):
        trace = [50.0, 1e308, 1e308, 1e308, 50.0]
        _assert_supplies_agree(TABLE1_SUPPLY, trace, initial=50.0)

    def test_sequential_runs_accumulate_like_step(self):
        """Back-to-back kernel calls must chain state exactly."""
        rng = np.random.default_rng(11)
        parts = [
            (70.0 + rng.normal(0.0, 5.0, 400)).tolist() for _ in range(3)
        ]
        scalar = PowerSupply(TABLE1_SUPPLY, initial_current=70.0, record=True)
        kernel = PowerSupply(TABLE1_SUPPLY, initial_current=70.0, record=True)
        for part in parts:
            for amps in part:
                scalar.step(amps)
            run_supply(kernel, part)
        assert _supply_state(kernel) == _supply_state(scalar)


class TestSupplyBatchKernel:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_every_lane_matches_its_own_scalar_run(self, data):
        config = data.draw(underdamped_supply_configs())
        n_lanes = data.draw(st.integers(2, 4))
        length = data.draw(st.integers(0, 200))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
        traces = [
            (60.0 + rng.normal(0.0, 10.0, length)) for _ in range(n_lanes)
        ]
        substeps = [
            data.draw(st.sampled_from([1, 1, 1, 2])) for _ in range(n_lanes)
        ]
        batch = [
            PowerSupply(config, initial_current=60.0, record=True,
                        substeps=s)
            for s in substeps
        ]
        results = run_supply_batch(batch, traces)
        for lane in range(n_lanes):
            reference = PowerSupply(
                config, initial_current=60.0, record=True,
                substeps=substeps[lane],
            )
            expected = [reference.step(float(a)) for a in traces[lane]]
            assert results[lane].tolist() == expected
            assert _supply_state(batch[lane]) == _supply_state(reference)

    def test_faulty_lane_gets_its_scalar_error_others_survive(self):
        traces = [
            np.full(50, 60.0),
            np.concatenate([np.full(20, 60.0), [np.nan], np.full(29, 60.0)]),
            np.full(50, 65.0),
        ]
        batch = [
            PowerSupply(TABLE1_SUPPLY, initial_current=60.0) for _ in range(3)
        ]
        results = run_supply_batch(batch, traces)
        assert isinstance(results[0], np.ndarray)
        assert isinstance(results[1], FaultError)
        assert "cycle 20" in str(results[1])
        assert isinstance(results[2], np.ndarray)
        reference = PowerSupply(TABLE1_SUPPLY, initial_current=60.0)
        with pytest.raises(FaultError):
            for amps in traces[1]:
                reference.step(float(amps))
        assert _supply_state(batch[1]) == _supply_state(reference)

    def test_mismatched_lane_counts_rejected(self):
        with pytest.raises(SimulationError):
            run_supply_batch([PowerSupply(TABLE1_SUPPLY)], [])
        with pytest.raises(SimulationError):
            run_supply_batch(
                [PowerSupply(TABLE1_SUPPLY), PowerSupply(TABLE1_SUPPLY)],
                [np.zeros(4), np.zeros(5)],
            )


# ----------------------------------------------------------------------
# Simulation fast path vs scalar loop (REPRO_KERNEL=0)
# ----------------------------------------------------------------------
def _build_simulation(benchmark, controller, seed=None, record=True):
    processor = Processor.from_profile(
        SPEC2K[benchmark],
        n_instructions=30_000,
        config=TABLE1_PROCESSOR,
        supply_config=TABLE1_SUPPLY,
        seed=seed,
    )
    supply = PowerSupply(TABLE1_SUPPLY, initial_current=35.0)
    return Simulation(
        processor, supply, controller, record=record,
        benchmark=benchmark, warmup_cycles=120,
    )


def _fingerprint(result):
    return json.dumps(dataclasses.asdict(result), sort_keys=True)


class TestSimulationFastPath:
    @pytest.mark.parametrize("bench", ["gzip", "swim"])
    def test_bit_identical_to_scalar_loop(self, bench, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "0")
        reference = _build_simulation(bench, NullController()).run(700)
        monkeypatch.setenv(KERNEL_ENV, "1")
        fast_sim = _build_simulation(bench, NullController())
        assert fast_sim.kernel_eligible()
        fast = fast_sim.run(700)
        assert _fingerprint(fast) == _fingerprint(reference)

    def test_feedback_controller_uses_scalar_loop(self):
        controller = ResonanceTuningController(
            TABLE1_SUPPLY, TABLE1_PROCESSOR, TABLE1_TUNING
        )
        assert not controller.feedback_free
        sim = _build_simulation("gzip", controller)
        assert not sim.kernel_eligible()

    def test_env_gate_disables_kernel(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "0")
        assert not kernel_enabled()
        assert not _build_simulation("gzip", NullController()).kernel_eligible()
        monkeypatch.setenv(KERNEL_ENV, "1")
        assert kernel_enabled()

    def test_supply_subclass_uses_scalar_loop(self):
        class PatchedSupply(PowerSupply):
            pass

        processor = Processor.from_profile(
            SPEC2K["gzip"], n_instructions=30_000,
            config=TABLE1_PROCESSOR, supply_config=TABLE1_SUPPLY,
        )
        sim = Simulation(
            processor, PatchedSupply(TABLE1_SUPPLY), NullController(),
            benchmark="gzip", warmup_cycles=10,
        )
        assert not sim.kernel_eligible()

    def test_feedback_free_observer_gets_late_observes(self, monkeypatch):
        """A feedback-free (non-Null) controller sees every observe call
        with the same arguments the scalar loop delivers."""

        class RecordingController(NullController):
            feedback_free = True
            name = "recording"

            def __init__(self):
                self.seen = []

            def observe(self, cycle, current_amps, voltage_volts, stats=None):
                self.seen.append((cycle, current_amps, voltage_volts))

        monkeypatch.setenv(KERNEL_ENV, "0")
        scalar_controller = RecordingController()
        _build_simulation("gzip", scalar_controller).run(400)
        monkeypatch.setenv(KERNEL_ENV, "1")
        kernel_controller = RecordingController()
        sim = _build_simulation("gzip", kernel_controller)
        assert sim.kernel_eligible()
        sim.run(400)
        assert kernel_controller.seen == scalar_controller.seen


class TestRunBatch:
    def test_matches_individual_runs(self, monkeypatch):
        grid = [("gzip", None), ("swim", 3), ("lucas", None)]
        monkeypatch.setenv(KERNEL_ENV, "0")
        expected = [
            _fingerprint(
                _build_simulation(bench, NullController(), seed=seed).run(600)
            )
            for bench, seed in grid
        ]
        monkeypatch.setenv(KERNEL_ENV, "1")
        sims = [
            _build_simulation(bench, NullController(), seed=seed)
            for bench, seed in grid
        ]
        outcomes = run_batch(sims, 600)
        assert [_fingerprint(out) for out in outcomes] == expected

    def test_mixed_eligibility_falls_back_per_lane(self):
        tuned = ResonanceTuningController(
            TABLE1_SUPPLY, TABLE1_PROCESSOR, TABLE1_TUNING
        )
        sims = [
            _build_simulation("gzip", NullController()),
            _build_simulation("gzip", tuned),
        ]
        outcomes = run_batch(sims, 400)
        assert all(
            not isinstance(out, BaseException) and out is not None
            for out in outcomes
        )
        assert outcomes[1].technique == tuned.name

    def test_should_stop_leaves_remaining_lanes_fresh(self):
        sims = [
            _build_simulation("gzip", NullController()) for _ in range(3)
        ]
        calls = iter([False, True])
        outcomes = run_batch(sims, 400, should_stop=lambda: next(calls))
        assert outcomes[1] is None and outcomes[2] is None
        assert not sims[1]._ran and not sims[2]._ran

    def test_consumed_simulation_reports_error(self):
        sim = _build_simulation("gzip", NullController())
        sim.run(200)
        outcomes = run_batch([sim], 200)
        assert isinstance(outcomes[0], SimulationError)
