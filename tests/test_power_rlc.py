"""Unit tests for repro.power.rlc against the paper's stated values."""

import math

import numpy as np
import pytest

from repro.config import (
    PowerSupplyConfig,
    SECTION2_SUPPLY,
    TABLE1_SUPPLY,
)
from repro.errors import CircuitError
from repro.power.rlc import ResonanceBand, RLCAnalysis, impedance_sweep


@pytest.fixture
def table1():
    return RLCAnalysis(TABLE1_SUPPLY)


@pytest.fixture
def section2():
    return RLCAnalysis(SECTION2_SUPPLY)


class TestResonantFrequency:
    def test_table1_resonates_at_100mhz(self, table1):
        assert table1.resonant_frequency_hz == pytest.approx(100e6, rel=0.01)

    def test_table1_period_is_100_cycles(self, table1):
        assert table1.resonant_period_cycles == 100

    def test_section2_example_near_100mhz(self, section2):
        assert section2.resonant_frequency_hz == pytest.approx(100e6, rel=0.02)

    def test_formula_matches_definition(self, table1):
        config = table1.config
        expected = 1.0 / (
            2.0
            * math.pi
            * math.sqrt(config.inductance_henries * config.capacitance_farads)
        )
        assert table1.resonant_frequency_hz == pytest.approx(expected)


class TestDamping:
    def test_table1_is_underdamped(self, table1):
        assert table1.is_underdamped

    def test_overdamped_circuit_detected(self):
        config = PowerSupplyConfig(
            resistance_ohms=1.0,
            inductance_henries=1e-12,
            capacitance_farads=1e-6,
        )
        analysis = RLCAnalysis(config)
        assert not analysis.is_underdamped

    def test_overdamped_band_raises(self):
        config = PowerSupplyConfig(
            resistance_ohms=1.0,
            inductance_henries=1e-12,
            capacitance_farads=1e-6,
        )
        with pytest.raises(CircuitError):
            _ = RLCAnalysis(config).band

    def test_damping_rate_equals_paper_formula(self, table1):
        """Paper: damping rate is f*pi/Q nepers/second."""
        expected = table1.resonant_frequency_hz * math.pi / table1.quality_factor
        assert table1.damping_coefficient == pytest.approx(expected, rel=1e-9)

    def test_table1_dissipates_about_66_percent_per_period(self, table1):
        assert table1.dissipation_per_period == pytest.approx(0.66, abs=0.02)

    def test_section2_dissipates_about_40_percent_per_period(self, section2):
        assert section2.dissipation_per_period == pytest.approx(0.40, abs=0.02)

    def test_damped_frequency_below_natural(self, table1):
        assert table1.damped_angular_frequency < table1.natural_angular_frequency

    def test_decay_cycles_monotone_in_fraction(self, table1):
        assert table1.decay_cycles(0.9) < table1.decay_cycles(0.5)

    def test_decay_cycles_rejects_bad_fraction(self, table1):
        with pytest.raises(CircuitError):
            table1.decay_cycles(1.5)


class TestQualityFactorAndBand:
    def test_table1_q_is_2_83(self, table1):
        assert table1.quality_factor == pytest.approx(2.83, abs=0.01)

    def test_table1_band_84_to_119_cycles(self, table1):
        band = table1.band
        assert band.min_period_cycles == 84
        assert band.max_period_cycles == 119

    def test_table1_band_frequencies_match_paper(self, table1):
        band = table1.band
        assert band.low_hz == pytest.approx(83.9e6, rel=0.01)
        assert band.high_hz == pytest.approx(119e6, rel=0.01)

    def test_section2_band_is_92_to_108mhz(self, section2):
        band = section2.band
        assert band.low_hz == pytest.approx(92e6, rel=0.02)
        assert band.high_hz == pytest.approx(108e6, rel=0.02)

    def test_band_contains_resonant_frequency(self, table1):
        assert table1.band.contains_hz(table1.resonant_frequency_hz)
        assert table1.band.contains_period(table1.resonant_period_cycles)

    def test_band_excludes_far_frequencies(self, table1):
        assert not table1.band.contains_hz(10e6)
        assert not table1.band.contains_hz(1e9)
        assert not table1.band.contains_period(20)
        assert not table1.band.contains_period(500)

    def test_half_periods_cover_band(self, table1):
        half_periods = table1.band.half_periods
        assert half_periods[0] == 42
        assert half_periods[-1] == 59

    def test_half_periods_odd_low_edge_rounds_up(self):
        """Regression: an odd low edge must use ceiling division.

        With truncation a band of 85-119 cycles started its half-period
        range at 42, i.e. a 84-cycle full period *below* the band; the
        shortest in-band period got no dedicated detector window.
        """
        odd = ResonanceBand(
            low_hz=84e6, high_hz=117.6e6,
            min_period_cycles=85, max_period_cycles=119,
        )
        assert odd.half_periods.start == 43
        assert 2 * odd.half_periods.start >= odd.min_period_cycles
        assert odd.half_periods[-1] == 59
        even = ResonanceBand(
            low_hz=84e6, high_hz=119e6,
            min_period_cycles=84, max_period_cycles=119,
        )
        assert even.half_periods.start == 42

    def test_bandwidth_is_f0_over_q(self, table1):
        expected = table1.resonant_frequency_hz / table1.quality_factor
        assert table1.bandwidth_hz == pytest.approx(expected)


class TestImpedance:
    def test_peaks_near_resonant_frequency(self, table1):
        frequencies, z = impedance_sweep(TABLE1_SUPPLY, 40e6, 200e6, points=801)
        peak_freq = frequencies[int(np.argmax(z))]
        assert peak_freq == pytest.approx(table1.resonant_frequency_hz, rel=0.05)

    def test_band_edges_near_half_power(self, table1):
        band = table1.band
        z_peak = float(np.max(impedance_sweep(TABLE1_SUPPLY, 40e6, 200e6, 2001)[1]))
        z_edge = table1.impedance_ohms(band.low_hz)
        # Half power = 1/sqrt(2) of peak impedance.
        assert z_edge == pytest.approx(z_peak / math.sqrt(2.0), rel=0.08)

    def test_low_and_high_frequencies_absorbed(self, table1):
        f0 = table1.resonant_frequency_hz
        z0 = table1.impedance_ohms(f0)
        assert table1.impedance_ohms(f0 / 20) < 0.2 * z0
        assert table1.impedance_ohms(f0 * 20) < 0.2 * z0

    def test_scalar_and_array_agree(self, table1):
        z_scalar = table1.impedance_ohms(100e6)
        z_array = table1.impedance_ohms(np.array([100e6]))
        assert z_scalar == pytest.approx(float(z_array[0]))

    def test_dc_impedance_is_resistance(self, table1):
        assert table1.impedance_ohms(0.0) == pytest.approx(
            TABLE1_SUPPLY.resistance_ohms
        )

    def test_sweep_rejects_bad_range(self):
        with pytest.raises(CircuitError):
            impedance_sweep(TABLE1_SUPPLY, 200e6, 40e6)

    def test_peak_impedance_approximation(self, table1):
        z_measured = float(
            np.max(impedance_sweep(TABLE1_SUPPLY, 40e6, 200e6, 2001)[1])
        )
        assert table1.peak_impedance_ohms == pytest.approx(z_measured, rel=0.10)


class TestSummary:
    def test_summary_keys_and_consistency(self, table1):
        summary = table1.summary()
        assert summary["resonant_period_cycles"] == 100
        assert summary["band_min_period_cycles"] == 84
        assert summary["band_max_period_cycles"] == 119
        assert summary["is_underdamped"] is True
