"""Tests for sweep supervision: heartbeats, drain, backoff, lifecycle.

Covers the crash-safety layer around the parallel backend -- hung-worker
detection and requeue, bounded worker-restart budgets, SIGTERM/SIGINT
drain with a resumable checkpoint, deterministic retry backoff, the
per-benchmark circuit breaker, checkpoint durability (fsync + checksum)
and the :class:`~repro.errors.CheckpointError` contract, plus runner
close/re-entry semantics.  End-to-end chaos (real SIGKILLs, corrupted
files, the harness driver) lives in ``tests/test_chaos.py`` and
``tools/chaos.py``.
"""

import dataclasses
import json
import os
import signal
import time

import pytest

from repro.core import ResonanceTuningController
from repro.errors import (
    CheckpointError,
    FaultError,
    HarnessError,
    SweepInterrupted,
)
from repro.faults.chaos import HangAlways, HangOnce, truncate_file
from repro.sim import (
    BenchmarkRunner,
    ResilienceConfig,
    SweepConfig,
    load_checkpoint,
)
from repro.sim import runner as runner_module
from repro.sim.runner import _backoff_delay_s, _call_with_alarm, _cell_key


def tuning_factory(supply, processor):
    return ResonanceTuningController(supply, processor)


def fingerprint(summary):
    return json.dumps(dataclasses.asdict(summary), sort_keys=True)


SMALL = SweepConfig(n_cycles=2000, warmup_cycles=200)
BENCHMARKS = ("swim", "gzip")


class BrokenSupply:
    """Picklable supply stand-in whose step always explodes."""

    def __init__(self, supply):
        self._supply = supply

    def step(self, cpu_current):
        raise RuntimeError("melted")

    def __getattr__(self, name):
        return getattr(self._supply, name)


class BreakBenchmark:
    """Picklable transform breaking every cell of one benchmark."""

    def __init__(self, target):
        self.target = target

    def __call__(self, supply, benchmark):
        return BrokenSupply(supply) if benchmark == self.target else supply


# ----------------------------------------------------------------------
# Hung-worker supervision
# ----------------------------------------------------------------------

class TestHeartbeatSupervision:
    def test_hung_worker_is_killed_requeued_and_converges(self, tmp_path):
        golden = BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=BENCHMARKS
        )
        transform = HangOnce(
            str(tmp_path / "hang.marker"), "swim",
            after_cycles=300, sleep_s=60.0,
        )
        with BenchmarkRunner(SMALL, supply_transform=transform) as runner:
            summary = runner.sweep(
                tuning_factory,
                benchmarks=BENCHMARKS,
                resilience=ResilienceConfig(
                    workers=2, heartbeat_stale_s=0.5
                ),
            )
        assert fingerprint(summary) == fingerprint(golden)
        assert not summary.failures
        incidents = summary.incidents
        assert incidents and all(
            incident.error_type == "WorkerLostError" for incident in incidents
        )
        assert any(incident.benchmark == "swim" for incident in incidents)

    def test_always_hung_cell_is_parked_after_restart_budget(self):
        transform = HangAlways("swim", after_cycles=300, sleep_s=60.0)
        with BenchmarkRunner(SMALL, supply_transform=transform) as runner:
            summary = runner.sweep(
                tuning_factory,
                benchmarks=BENCHMARKS,
                resilience=ResilienceConfig(
                    workers=2, heartbeat_stale_s=0.5, max_worker_restarts=1
                ),
            )
        assert len(summary.failures) == 1
        failure = summary.failures[0]
        assert failure.benchmark == "swim"
        assert failure.error_type == "WorkerLostError"
        assert failure.attempts == 2  # initial run + one requeue
        assert [row.benchmark for row in summary.per_benchmark] == ["gzip"]
        # every loss left an incident, not just the final abandonment
        assert len(summary.incidents) >= 2


# ----------------------------------------------------------------------
# Graceful drain on SIGTERM / SIGINT
# ----------------------------------------------------------------------

class TestGracefulDrain:
    BENCH3 = ("swim", "gzip", "parser")

    def drained_sweep(self, tmp_path, workers, seeds=(None,)):
        ck = tmp_path / "ck.json"

        def sigterm_after_first(name, metrics):
            os.kill(os.getpid(), signal.SIGTERM)

        runner = BenchmarkRunner(SMALL)
        with pytest.raises(SweepInterrupted) as excinfo:
            runner.sweep(
                tuning_factory,
                benchmarks=self.BENCH3,
                seeds=seeds,
                progress=sigterm_after_first,
                resilience=ResilienceConfig(
                    workers=workers, checkpoint_path=str(ck)
                ),
            )
        runner.close()
        return ck, excinfo.value

    def verify_drain(self, ck, stop, seeds=(None,)):
        assert stop.exit_code == 75
        assert stop.signum == signal.SIGTERM
        assert stop.completed >= 1
        assert stop.pending >= 1
        # the flushed checkpoint is checksum-valid, not salvage material
        assert len(load_checkpoint(str(ck))["cells"]) == stop.completed
        note = json.loads((ck.parent / f"{ck.name}.shutdown.json").read_text())
        assert note["signal"] == "SIGTERM"
        assert note["resumable"] is True
        assert len(note["pending_cells"]) == stop.pending
        resumed = BenchmarkRunner(SMALL).sweep(
            tuning_factory,
            benchmarks=self.BENCH3,
            seeds=seeds,
            resilience=ResilienceConfig(checkpoint_path=str(ck), resume=True),
        )
        golden = BenchmarkRunner(SMALL).sweep(
            tuning_factory, benchmarks=self.BENCH3, seeds=seeds
        )
        assert fingerprint(resumed) == fingerprint(golden)

    def test_sequential_sigterm_drains_and_resumes(self, tmp_path):
        ck, stop = self.drained_sweep(tmp_path, workers=1)
        self.verify_drain(ck, stop)

    def test_parallel_sigterm_drains_within_deadline(self, tmp_path):
        seeds = (None, 7)  # 6 cells: some are always still queued
        started = time.monotonic()
        ck, stop = self.drained_sweep(tmp_path, workers=2, seeds=seeds)
        assert time.monotonic() - started < 30.0
        self.verify_drain(ck, stop, seeds=seeds)

    def test_drain_without_checkpoint_still_interrupts(self):
        def sigterm_after_first(name, metrics):
            os.kill(os.getpid(), signal.SIGTERM)

        with pytest.raises(SweepInterrupted):
            BenchmarkRunner(SMALL).sweep(
                tuning_factory,
                benchmarks=self.BENCH3,
                progress=sigterm_after_first,
            )


# ----------------------------------------------------------------------
# Retry backoff
# ----------------------------------------------------------------------

class TestBackoff:
    def test_deterministic_across_calls(self):
        args = ("resonance-tuning", "swim", 7, 2, 0.5, 30.0)
        assert _backoff_delay_s(*args) == _backoff_delay_s(*args)

    def test_exponential_growth_and_cap(self):
        base, cap = 1.0, 4.0
        for attempt in (1, 2, 3, 4, 5):
            delay = _backoff_delay_s("t", "b", None, attempt, base, cap)
            nominal = min(cap, base * 2.0 ** (attempt - 1))
            assert 0.5 * nominal <= delay < 1.5 * nominal
        capped = _backoff_delay_s("t", "b", None, 10, base, cap)
        assert capped < 1.5 * cap

    def test_jitter_differs_between_cells(self):
        delays = {
            _backoff_delay_s("t", bench, None, 1, 1.0, 30.0)
            for bench in ("swim", "gzip", "parser", "mcf")
        }
        assert len(delays) > 1

    def test_disabled_without_base(self):
        assert _backoff_delay_s("t", "b", None, 3, 0.0, 30.0) == 0.0
        assert _backoff_delay_s("t", "b", None, 0, 1.0, 30.0) == 0.0

    def test_retries_back_off_but_stay_deterministic(self):
        def run():
            runner = BenchmarkRunner(
                SMALL, supply_transform=BreakBenchmark("swim")
            )
            return runner.sweep(
                tuning_factory,
                benchmarks=BENCHMARKS,
                resilience=ResilienceConfig(
                    max_retries=2, backoff_base_s=0.01, backoff_max_s=0.05
                ),
            )

        first, second = run(), run()
        assert fingerprint(first) == fingerprint(second)
        assert first.failures[0].attempts == 3

    def test_backoff_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ResilienceConfig(backoff_base_s=-1.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(backoff_base_s=2.0, backoff_max_s=1.0)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------

class TestCircuitBreaker:
    SEEDS = (None, 7, 8)

    def run(self, workers=1, **resilience_kwargs):
        with BenchmarkRunner(
            SMALL, supply_transform=BreakBenchmark("swim")
        ) as runner:
            return runner.sweep(
                tuning_factory,
                benchmarks=BENCHMARKS,
                seeds=self.SEEDS,
                resilience=ResilienceConfig(
                    workers=workers, **resilience_kwargs
                ),
            )

    def test_probe_failure_parks_remaining_seeds(self):
        summary = self.run()
        swim = [f for f in summary.failures if f.benchmark == "swim"]
        assert len(swim) == len(self.SEEDS)
        parked = [f for f in swim if f.skipped]
        assert len(parked) == len(self.SEEDS) - 1
        assert all(f.error_type == "CircuitOpen" for f in parked)
        assert all(f.attempts == 0 for f in parked)
        # the healthy benchmark ran every seed
        assert len(summary.per_benchmark) == len(self.SEEDS)

    def test_disabled_breaker_burns_budget_per_seed(self):
        summary = self.run(circuit_breaker=False)
        swim = [f for f in summary.failures if f.benchmark == "swim"]
        assert len(swim) == len(self.SEEDS)
        assert not any(f.skipped for f in swim)
        assert all(f.attempts == 1 for f in swim)

    def test_parallel_parks_identical_cells(self):
        assert fingerprint(self.run(workers=2)) == fingerprint(self.run())

    def test_parallel_no_breaker_matches_sequential(self):
        assert fingerprint(
            self.run(workers=2, circuit_breaker=False)
        ) == fingerprint(self.run(circuit_breaker=False))


# ----------------------------------------------------------------------
# Timeout alarm hygiene (ambient ITIMER_REAL re-arming)
# ----------------------------------------------------------------------

class TestAlarmRearm:
    @pytest.fixture()
    def ambient_alarm(self):
        fired = {"count": 0}

        def on_alarm(signum, frame):
            fired["count"] += 1

        previous = signal.signal(signal.SIGALRM, on_alarm)
        try:
            yield fired
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    def test_ambient_timer_is_rearmed_with_remaining_time(self, ambient_alarm):
        signal.setitimer(signal.ITIMER_REAL, 60.0)
        assert _call_with_alarm(lambda: "done", timeout_s=5.0) == "done"
        remaining, _ = signal.getitimer(signal.ITIMER_REAL)
        assert 0.0 < remaining <= 60.0
        assert ambient_alarm["count"] == 0

    def test_ambient_timer_expiring_during_cell_fires_promptly(
        self, ambient_alarm
    ):
        signal.setitimer(signal.ITIMER_REAL, 0.05)
        _call_with_alarm(lambda: time.sleep(0.2), timeout_s=5.0)
        deadline = time.monotonic() + 2.0
        while ambient_alarm["count"] == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert ambient_alarm["count"] == 1

    def test_cell_timeout_still_preempts(self, ambient_alarm):
        signal.setitimer(signal.ITIMER_REAL, 60.0)
        with pytest.raises(FaultError, match="timeout"):
            _call_with_alarm(lambda: time.sleep(5.0), timeout_s=0.1)
        remaining, _ = signal.getitimer(signal.ITIMER_REAL)
        assert 0.0 < remaining <= 60.0


# ----------------------------------------------------------------------
# Runner lifecycle: close is idempotent, a closed runner refuses work
# ----------------------------------------------------------------------

class TestRunnerLifecycle:
    def test_close_is_idempotent(self):
        runner = BenchmarkRunner(SMALL)
        runner.sweep(tuning_factory, benchmarks=("gzip",))
        runner.close()
        runner.close()  # must not raise

    def test_sweep_on_closed_runner_raises_not_hangs(self):
        runner = BenchmarkRunner(SMALL)
        runner.close()
        with pytest.raises(HarnessError, match="closed"):
            runner.sweep(tuning_factory, benchmarks=("gzip",))

    def test_context_reentry_after_close_raises(self):
        runner = BenchmarkRunner(SMALL)
        with runner:
            runner.sweep(
                tuning_factory,
                benchmarks=BENCHMARKS,
                resilience=ResilienceConfig(workers=2),
            )
        with pytest.raises(HarnessError, match="closed"):
            with runner:
                pass  # pragma: no cover

    def test_close_after_heartbeat_sweep_releases_channel(self):
        runner = BenchmarkRunner(SMALL)
        runner.sweep(
            tuning_factory,
            benchmarks=BENCHMARKS,
            resilience=ResilienceConfig(workers=2, heartbeat_stale_s=30.0),
        )
        runner.close()
        assert runner._manager is None
        assert runner._heartbeats is None
        assert runner._executor is None


# ----------------------------------------------------------------------
# Checkpoint durability and the CheckpointError contract
# ----------------------------------------------------------------------

class TestCheckpointDurability:
    def test_fsync_covers_file_and_directory(self, tmp_path, monkeypatch):
        synced = []
        original = runner_module._fsync
        monkeypatch.setattr(
            runner_module, "_fsync",
            lambda fd: (synced.append(fd), original(fd))[1],
        )
        BenchmarkRunner(SMALL).sweep(
            tuning_factory,
            benchmarks=("gzip",),
            resilience=ResilienceConfig(
                checkpoint_path=str(tmp_path / "ck.json")
            ),
        )
        # one flush: temp-file fsync plus containing-directory fsync
        assert len(synced) >= 2

    def test_failed_write_leaves_no_temp_files(self, tmp_path, monkeypatch):
        def explode(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(runner_module, "_fsync", explode)
        with pytest.warns(RuntimeWarning, match="checkpoint write"):
            BenchmarkRunner(SMALL).sweep(
                tuning_factory,
                benchmarks=("gzip",),
                resilience=ResilienceConfig(
                    checkpoint_path=str(tmp_path / "ck.json")
                ),
            )
        assert not list(tmp_path.iterdir())


class TestCheckpointErrors:
    def write_valid(self, tmp_path):
        ck = tmp_path / "ck.json"
        BenchmarkRunner(SMALL).sweep(
            tuning_factory,
            benchmarks=BENCHMARKS,
            resilience=ResilienceConfig(checkpoint_path=str(ck)),
        )
        return ck

    def test_missing_file_names_path_and_hints_resume(self, tmp_path):
        path = str(tmp_path / "nope.json")
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path)
        assert excinfo.value.path == path
        assert "resume" in str(excinfo.value)

    def test_truncated_file_raises_without_salvage(self, tmp_path):
        ck = self.write_valid(tmp_path)
        truncate_file(str(ck), 0.5)
        with pytest.raises(CheckpointError):
            load_checkpoint(str(ck))
        assert not list(tmp_path.glob("*.corrupt-*"))  # no salvage side effects

    def test_truncated_file_salvages_valid_prefix(self, tmp_path):
        ck = self.write_valid(tmp_path)
        complete = set(load_checkpoint(str(ck))["cells"])
        truncate_file(str(ck), 0.6)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            data = load_checkpoint(str(ck), salvage=True)
        assert data["salvaged"] is True
        assert set(data["cells"]) <= complete
        assert list(tmp_path.glob("ck.json.corrupt-*"))

    def test_wrong_payload_type_is_rejected(self, tmp_path):
        ck = tmp_path / "ck.json"
        ck.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(CheckpointError):
            load_checkpoint(str(ck))

    def test_tampered_cell_fails_digest(self, tmp_path):
        ck = self.write_valid(tmp_path)
        payload = json.loads(ck.read_text())
        key = next(iter(payload["cells"]))
        payload["cells"][key]["metrics"]["slowdown"] = 0.123456
        # recompute the outer checksum so only the per-record digest can
        # catch the tampering
        payload["_meta"]["checksum"] = runner_module._content_digest(
            payload["cells"]
        )
        ck.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="digest"):
            load_checkpoint(str(ck))

    def test_tampered_checksum_is_caught(self, tmp_path):
        ck = self.write_valid(tmp_path)
        payload = json.loads(ck.read_text())
        payload["_meta"]["checksum"] = "0" * 64
        ck.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(str(ck))


# ----------------------------------------------------------------------
# CLI plumbing for the supervision flags
# ----------------------------------------------------------------------

class TestSupervisionFlags:
    def parse(self, *extra):
        from repro.cli import build_parser
        from repro.experiments.registry import resilience_from_args

        args = build_parser().parse_args(["experiment", "table3", *extra])
        return resilience_from_args(args)

    def test_supervision_flags_round_trip(self):
        resilience = self.parse(
            "--workers", "2",
            "--heartbeat-stale-s", "5",
            "--max-worker-restarts", "1",
            "--backoff-base-s", "0.25",
            "--drain-deadline-s", "3",
            "--no-circuit-breaker",
        )
        assert resilience == ResilienceConfig(
            workers=2,
            heartbeat_stale_s=5.0,
            max_worker_restarts=1,
            backoff_base_s=0.25,
            drain_deadline_s=3.0,
            circuit_breaker=False,
        )

    def test_defaults_still_mean_no_resilience(self):
        assert self.parse() is None

    def test_heartbeat_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ResilienceConfig(heartbeat_stale_s=0.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(max_worker_restarts=-1)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(drain_deadline_s=0.0)
