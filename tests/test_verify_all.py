"""Selector behavior of tools/verify_all.py (--list / --only).

Only the selection logic is unit-tested here; the hooks themselves are
the verification suite and run for real in CI.
"""
import pathlib
import sys

import pytest

TOOLS_DIR = pathlib.Path(__file__).resolve().parents[1] / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))

import verify_all


class TestSelectHooks:
    def test_default_selects_every_hook_in_suite_order(self):
        selected = verify_all.select_hooks()
        assert selected == list(verify_all.HOOKS.items())

    def test_only_preserves_suite_order_not_selector_order(self):
        names = list(verify_all.HOOKS)
        # Ask for the last two hooks in reversed order; the suite order
        # must win so partial runs stay comparable to full runs.
        selected = verify_all.select_hooks([names[-1], names[0]])
        assert [name for name, _ in selected] == [names[0], names[-1]]

    def test_only_deduplicates_repeated_selectors(self):
        name = next(iter(verify_all.HOOKS))
        selected = verify_all.select_hooks([name, name])
        assert [n for n, _ in selected] == [name]

    def test_unknown_hook_raises_with_choices(self):
        with pytest.raises(ValueError, match="nope"):
            verify_all.select_hooks(["nope"])

    def test_selected_hooks_are_callables_from_the_registry(self):
        for name, hook in verify_all.select_hooks(["serve"]):
            assert hook is verify_all.HOOKS[name]
            assert callable(hook)


class TestMainSelectors:
    def test_list_prints_every_hook_and_exits_zero(self, capsys):
        assert verify_all.main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in verify_all.HOOKS:
            assert name in out

    def test_unknown_only_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as stop:
            verify_all.main(["--only", "nope"])
        assert stop.value.code == 2
        assert "nope" in capsys.readouterr().err
