"""Tests for band-wide resonant-event detection (Section 3.1)."""

import pytest

from repro.config import TABLE1_SUPPLY, TABLE1_TUNING
from repro.core import CurrentSensor, Polarity, ResonanceDetector
from repro.errors import ConfigurationError
from repro.power import RLCAnalysis, waveforms


def table1_detector(threshold=None, tolerance=4):
    band = RLCAnalysis(TABLE1_SUPPLY).band
    return ResonanceDetector(
        half_periods=band.half_periods,
        threshold_amps=threshold
        or TABLE1_TUNING.resonant_current_threshold_amps,
        max_repetition_tolerance=tolerance,
    )


def feed(detector, wave, start_cycle=0):
    events = []
    for offset, current in enumerate(wave):
        event = detector.observe(start_cycle + offset, current)
        if event is not None:
            events.append(event)
    return events


class TestConstruction:
    def test_table1_band_uses_nine_adders(self):
        """Half-periods 42-59 share quarter periods 21-29 (Section 3.3)."""
        assert table1_detector().adder_count == 9

    def test_register_length_covers_tolerance(self):
        detector = table1_detector(tolerance=4)
        assert detector.register_length == 4 * 59

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ResonanceDetector([], 32.0, 4)
        with pytest.raises(ConfigurationError):
            ResonanceDetector([42, 59], 0.0, 4)
        with pytest.raises(ConfigurationError):
            ResonanceDetector([42, 59], 32.0, 1)
        with pytest.raises(ConfigurationError):
            ResonanceDetector([1], 32.0, 4)


class TestEventIdentification:
    def test_flat_current_never_triggers(self):
        detector = table1_detector()
        events = feed(detector, [70.0] * 2000)
        assert events == []

    def test_resonant_square_wave_triggers_alternating_events(self):
        detector = table1_detector()
        wave = waveforms.square_wave(1000, 100, amplitude_pp=40.0, mean=70.0)
        events = feed(detector, wave)
        assert events, "resonant wave must be detected"
        polarities = {event.polarity for event in events}
        assert polarities == {Polarity.HIGH_LOW, Polarity.LOW_HIGH}

    def test_below_threshold_wave_ignored(self):
        detector = table1_detector(threshold=32.0)
        # Sine of 20 A p-p: quarter-sum diff ~ 0.64 * X * q < threshold.
        wave = waveforms.sine_wave(2000, 100, amplitude_pp=20.0, mean=70.0)
        assert feed(detector, wave) == []

    def test_off_band_fast_wave_ignored(self):
        """Variations at 10-cycle period are far above the band."""
        detector = table1_detector()
        wave = waveforms.square_wave(2000, 10, amplitude_pp=60.0, mean=70.0)
        assert feed(detector, wave) == []

    def test_slow_wave_ignored(self):
        """A 1000-cycle-period wave is below the band; its edges are slow."""
        detector = table1_detector()
        wave = waveforms.triangle_wave(4000, 1000, amplitude_pp=60.0, mean=70.0)
        assert feed(detector, wave) == []

    def test_isolated_step_triggers_single_event_run(self):
        detector = table1_detector()
        wave = waveforms.step(800, before=50.0, after=100.0, at_cycle=400)
        events = feed(detector, wave)
        assert events
        assert all(event.polarity is Polarity.LOW_HIGH for event in events)
        # All detections of an isolated step are one consecutive run with
        # count 1: no repetition, no nascent resonance.
        assert max(event.count for event in events) == 1
        cycles = [event.cycle for event in events]
        assert cycles == list(range(cycles[0], cycles[0] + len(cycles)))


class TestRepetitionCounting:
    def test_count_climbs_with_each_half_wave(self):
        """Figure 3: counts 1, 2, 3, 4 across the first two periods."""
        detector = table1_detector()
        wave = waveforms.square_wave(
            800, 100, amplitude_pp=34.0, mean=70.0, start=100, end=500
        )
        events = feed(detector, wave)
        first_count_cycle = {}
        for event in events:
            first_count_cycle.setdefault(event.count, event.cycle)
        assert set(first_count_cycle) >= {1, 2, 3, 4}
        assert (
            first_count_cycle[1]
            < first_count_cycle[2]
            < first_count_cycle[3]
            < first_count_cycle[4]
        )
        # Consecutive count increases are about half a period apart.
        spacing = first_count_cycle[3] - first_count_cycle[2]
        assert 40 <= spacing <= 64

    def test_count_capped_above_tolerance(self):
        detector = table1_detector(tolerance=4)
        wave = waveforms.square_wave(1500, 100, amplitude_pp=40.0, mean=70.0)
        events = feed(detector, wave)
        assert max(event.count for event in events) == 5  # tolerance + 1

    def test_isolated_variations_never_accumulate(self):
        """Key observation 2: isolated variations are not nascent resonance."""
        detector = table1_detector()
        wave = [70.0] * 3000
        for start in range(200, 2800, 700):  # far more than a period apart
            for offset in range(40):
                wave[start + offset] = 110.0
        events = feed(detector, wave)
        assert events
        assert max(event.count for event in events) <= 2

    def test_current_count_decays_when_quiet(self):
        detector = table1_detector()
        wave = waveforms.square_wave(
            600, 100, amplitude_pp=40.0, mean=70.0, start=0, end=300
        )
        events = feed(detector, wave)
        last = events[-1]
        assert detector.current_count(last.cycle) >= 2
        assert detector.current_count(last.cycle + 30) >= 1
        assert detector.current_count(last.cycle + 200) == 0

    def test_current_count_before_any_event_is_zero(self):
        detector = table1_detector()
        assert detector.current_count(0) == 0

    def test_band_edge_periods_also_counted(self):
        """Detection covers the whole band, not just the 100-cycle centre."""
        for period in (86, 116):
            detector = table1_detector()
            wave = waveforms.square_wave(
                1200, period, amplitude_pp=45.0, mean=70.0
            )
            events = feed(detector, wave)
            assert max(event.count for event in events) >= 3, period

    def test_quantized_current_still_detected(self):
        """Whole-amp sensing is precise enough (Section 5.1.2)."""
        detector = table1_detector()
        sensor = CurrentSensor(quantum_amps=1.0)
        wave = waveforms.square_wave(1000, 100, amplitude_pp=34.0, mean=70.3)
        events = []
        for cycle, current in enumerate(wave):
            event = detector.observe(cycle, sensor.read(current))
            if event:
                events.append(event)
        assert events and max(e.count for e in events) >= 4
