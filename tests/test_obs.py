"""Tests for the observability subsystem (``repro.obs``).

Covers the three layers in isolation (metrics registry, span tracer,
logging/warn dedup) and wired into real sweeps: spans and counters from a
sequential run, shard merging across a real worker pool, determinism of
the instrumented sweep against an uninstrumented one, the checkpoint
summary sidecar, and the ``tools/trace_report.py`` renderer.
"""

import dataclasses
import importlib.util
import json
import logging
import pathlib

import pytest

from repro import obs
from repro.core import ResonanceTuningController
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.obs.log import (
    configure_logging,
    get_logger,
    reset_warn_dedup,
    warn_once,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    Tracer,
    export_chrome_trace,
    load_trace_events,
    merge_shards,
    shard_dir_for,
)
from repro.sim import BenchmarkRunner, ResilienceConfig, SweepConfig
from repro.sim.export import summary_to_dict


def tuning_factory(supply, processor):
    """Module-level (hence picklable) controller factory."""
    return ResonanceTuningController(supply, processor)


SMALL = SweepConfig(n_cycles=2500, warmup_cycles=200)
BENCHMARKS = ("swim", "gzip")


def _reset_obs():
    obs_trace.set_active_tracer(None)
    obs_metrics.set_active_registry(None)
    profiler = obs_profile.active_profiler()
    if profiler is not None:
        profiler.stop()
    obs_profile.set_active_profiler(None)
    obs._trace_out = None
    obs._metrics_out = None
    obs._profile_out = None
    reset_warn_dedup()


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test starts and ends with observability fully off."""
    _reset_obs()
    yield
    _reset_obs()


def span_names(events):
    return [e["name"] for e in events if e.get("ph") == "X"]


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_inc_and_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", help="requests")
        counter.inc()
        counter.inc(2, labels={"method": "GET"})
        assert counter.value() == 1
        assert counter.value(labels={"method": "GET"}) == 2
        assert registry.counter("requests_total") is counter

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(Exception):
            registry.gauge("x")

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(55.55)
        # finite buckets only; the +Inf overflow lives in ``count``
        assert histogram.cumulative_counts() == [1, 2, 3]

    def test_merge_is_additive_and_commutative(self):
        def build(a, b):
            registry = MetricsRegistry()
            registry.counter("cells").inc(a)
            registry.histogram("lat", buckets=(1.0,)).observe(b)
            return registry

        left, right = build(2, 0.5), build(3, 2.0)
        merged_lr = MetricsRegistry()
        merged_lr.merge(left.snapshot())
        merged_lr.merge(right.snapshot())
        merged_rl = MetricsRegistry()
        merged_rl.merge(right.snapshot())
        merged_rl.merge(left.snapshot())
        assert merged_lr.to_dict() == merged_rl.to_dict()
        assert merged_lr.counter("cells").value() == 5
        assert merged_lr.histogram("lat", buckets=(1.0,)).count == 2

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("runs_total", help="runs").inc(
            3, labels={"technique": "tuning"}
        )
        registry.gauge("workers").set(4)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        text = registry.to_prometheus()
        assert "# HELP runs_total runs" in text
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{technique="tuning"} 3' in text
        assert "workers 4" in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text

    def test_snapshot_round_trip_is_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # picklable/serializable by construction

    def test_prometheus_escapes_hostile_label_values(self):
        registry = MetricsRegistry()
        registry.counter(
            "hostile_total", help='backslash \\ and\nnewline'
        ).inc(1, labels={
            "path": 'C:\\tmp\\"x"',
            "note": "line one\nline two",
        })
        text = registry.to_prometheus()
        # Exposition format 0.0.4: label values escape backslash first,
        # then double-quote and newline; HELP escapes backslash+newline.
        assert (
            'hostile_total{note="line one\\nline two",'
            'path="C:\\\\tmp\\\\\\"x\\""} 1'
        ) in text
        assert "# HELP hostile_total backslash \\\\ and\\nnewline" in text
        for line in text.splitlines():
            assert "\n" not in line  # each sample stays one line

    def test_escaping_is_exposition_only(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2, labels={"v": 'a\\b"c\nd'})
        merged = MetricsRegistry()
        merged.merge(registry.snapshot())
        assert merged.counter("c").value(labels={"v": 'a\\b"c\nd'}) == 2


# ----------------------------------------------------------------------
# Tracer and shard merge
# ----------------------------------------------------------------------

class TestTracer:
    def test_span_and_instant_round_trip(self, tmp_path):
        trace_path = str(tmp_path / "trace.json")
        tracer = Tracer(shard_dir_for(trace_path), process_label="test")
        with tracer.span("outer", args={"k": 1}) as args:
            args["outcome"] = "done"
            tracer.instant("ping", args={"n": 2})
        tracer.close()
        export_chrome_trace(trace_path)
        events = load_trace_events(trace_path)
        spans = [e for e in events if e.get("ph") == "X"]
        instants = [e for e in events if e.get("ph") == "i"]
        assert [s["name"] for s in spans] == ["outer"]
        assert spans[0]["args"] == {"k": 1, "outcome": "done"}
        assert spans[0]["dur"] >= 0
        assert [i["name"] for i in instants] == ["ping"]
        assert instants[0]["s"] == "p"
        # cleanup removed the shard directory
        assert not (tmp_path / "trace.json.shards").exists()

    def test_merge_order_is_deterministic(self, tmp_path):
        shard_dir = str(tmp_path / "shards")
        tracer = Tracer(shard_dir)
        for n in range(5):
            tracer.instant(f"e{n}")
        tracer.close()
        first = merge_shards(shard_dir)
        second = merge_shards(shard_dir)
        assert first == second
        assert [e["seq"] for e in first if e["ph"] == "i"] == [1, 2, 3, 4, 5]

    def test_corrupt_shard_line_skipped(self, tmp_path):
        shard_dir = tmp_path / "shards"
        shard_dir.mkdir()
        good = {"ph": "i", "name": "ok", "ts": 1.0, "pid": 1, "tid": 1,
                "seq": 0, "args": {}}
        (shard_dir / "pid-1.jsonl").write_text(
            json.dumps(good) + "\n" + '{"truncated": tru'
        )
        events = merge_shards(str(shard_dir))
        assert [e["name"] for e in events] == ["ok"]

    def test_export_includes_metadata(self, tmp_path):
        trace_path = str(tmp_path / "t.json")
        tracer = Tracer(shard_dir_for(trace_path))
        tracer.instant("x")
        tracer.close()
        export_chrome_trace(trace_path, metadata={"command": "compare"})
        with open(trace_path) as handle:
            payload = json.load(handle)
        assert payload["otherData"] == {"command": "compare"}
        assert payload["displayTimeUnit"] == "ms"


# ----------------------------------------------------------------------
# Logging and warning dedup
# ----------------------------------------------------------------------

class TestLog:
    def test_warn_once_dedups_by_key(self):
        with pytest.warns(RuntimeWarning, match="disk full"):
            assert warn_once("disk full", key="disk") is True
        assert warn_once("disk full", key="disk") is False
        reset_warn_dedup()
        with pytest.warns(RuntimeWarning):
            assert warn_once("disk full", key="disk") is True

    def test_warn_once_without_key_always_emits(self):
        with pytest.warns(RuntimeWarning):
            assert warn_once("a notice") is True
        with pytest.warns(RuntimeWarning):
            assert warn_once("a notice") is True

    def test_get_logger_lands_under_repro(self):
        assert get_logger("runner").name == "repro.runner"
        assert get_logger("repro.sim").name == "repro.sim"

    def test_configure_logging_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            configure_logging("LOUD")

    def test_configure_logging_lowers_threshold(self):
        configure_logging("DEBUG")
        try:
            assert logging.getLogger("repro").level == logging.DEBUG
        finally:
            configure_logging("WARNING")

    def test_routed_notice_reaches_stderr(self, capsys):
        get_logger("test").warning("plain notice")
        assert "plain notice" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Sweep integration
# ----------------------------------------------------------------------

class TestSweepIntegration:
    def run_sweep(self, tmp_path, workers=1, checkpoint=None):
        obs.configure(
            trace_out=str(tmp_path / "trace.json"),
            metrics_out=str(tmp_path / "metrics.json"),
        )
        resilience = ResilienceConfig(
            workers=workers, checkpoint_path=checkpoint
        )
        with BenchmarkRunner(SMALL) as runner:
            summary = runner.sweep(
                tuning_factory, benchmarks=BENCHMARKS, resilience=resilience
            )
        written = obs.finalize(metadata={"test": True})
        return summary, written

    def test_sequential_sweep_artifacts(self, tmp_path):
        summary, written = self.run_sweep(tmp_path)
        assert [pathlib.Path(p).name for p in written] == [
            "trace.json", "metrics.json", "metrics.prom",
        ]
        events = load_trace_events(str(tmp_path / "trace.json"))
        names = span_names(events)
        for phase in ("sweep", "setup", "execute", "aggregate"):
            assert phase in names
        for benchmark in BENCHMARKS:
            assert f"cell {benchmark}" in names
            assert f"run {benchmark}" in names  # simulation-level span
        sweep_span = next(
            e for e in events if e.get("name") == "sweep" and e["ph"] == "X"
        )
        assert sweep_span["args"]["technique"] == summary.technique
        assert sweep_span["args"]["cells_total"] == len(BENCHMARKS)

        metrics = json.loads((tmp_path / "metrics.json").read_text())
        counters = metrics["counters"]
        assert counters["sim_runs_total"]["samples"]
        assert counters["runner_sweeps_total"]["samples"] == {
            f'{{technique="{summary.technique}"}}': 1
        }
        prom = (tmp_path / "metrics.prom").read_text()
        assert "# TYPE runner_cell_seconds histogram" in prom
        assert "sim_resonant_events_total" in prom

    def test_parallel_sweep_merges_worker_shards(self, tmp_path):
        summary, _ = self.run_sweep(tmp_path, workers=2)
        events = load_trace_events(str(tmp_path / "trace.json"))
        cell_pids = {
            e["pid"] for e in events
            if e.get("ph") == "X" and e.get("cat") == "cell"
        }
        all_pids = {e["pid"] for e in events}
        assert len(all_pids) >= 2  # the parent plus at least one worker
        assert cell_pids  # workers contributed their spans
        # worker metric deltas merged into the parent's registry
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        runner_cells = metrics["counters"]["runner_cells_total"]["samples"]
        assert runner_cells['{status="completed"}'] == len(BENCHMARKS)
        assert "sim_runs_total" in metrics["counters"]
        # no shard litter once the trace is exported
        assert not (tmp_path / "trace.json.shards").exists()

    def test_instrumented_sweep_is_deterministic(self, tmp_path):
        def fingerprint(summary):
            return json.dumps(
                dataclasses.asdict(summary), sort_keys=True
            )

        with BenchmarkRunner(SMALL) as runner:
            plain = runner.sweep(tuning_factory, benchmarks=BENCHMARKS)
        traced, _ = self.run_sweep(tmp_path)
        assert fingerprint(traced) == fingerprint(plain)

    def test_summary_sidecar_written_next_to_checkpoint(self, tmp_path):
        checkpoint = str(tmp_path / "ckpt.json")
        summary, _ = self.run_sweep(tmp_path, checkpoint=checkpoint)
        sidecar = json.loads(
            (tmp_path / "ckpt.json.summary.json").read_text()
        )
        assert sidecar["technique"] == summary.technique
        assert set(sidecar["timings"]) >= {
            "setup", "execute", "aggregate", "total", "checkpoint_io",
        }
        assert sidecar["incidents"] == []

    def test_sidecar_written_without_observability(self, tmp_path):
        checkpoint = str(tmp_path / "ckpt.json")
        with BenchmarkRunner(SMALL) as runner:
            runner.sweep(
                tuning_factory,
                benchmarks=BENCHMARKS,
                resilience=ResilienceConfig(checkpoint_path=checkpoint),
            )
        assert (tmp_path / "ckpt.json.summary.json").exists()

    def test_disabled_by_default(self, tmp_path):
        assert obs.is_configured() is False
        with BenchmarkRunner(SMALL) as runner:
            runner.sweep(tuning_factory, benchmarks=("swim",))
        assert not list(tmp_path.iterdir())
        assert obs.finalize() == []


# ----------------------------------------------------------------------
# Export integration
# ----------------------------------------------------------------------

class TestSummaryExport:
    def test_summary_to_dict_carries_timings_and_incidents(self):
        with BenchmarkRunner(SMALL) as runner:
            summary = runner.sweep(tuning_factory, benchmarks=("swim",))
        data = summary_to_dict(summary)
        assert data["timings"]["cells_total"] == 1.0
        assert data["incidents"] == []
        json.dumps(data)  # JSON-clean end to end

    def test_summary_to_dict_tolerates_bare_summaries(self):
        from repro.sim.runner import summarize
        with BenchmarkRunner(SMALL) as runner:
            summary = runner.sweep(tuning_factory, benchmarks=("swim",))
        bare = summarize(
            list(summary.per_benchmark), summary.total_violation_cycles
        )
        data = summary_to_dict(bare)
        assert "timings" not in data
        assert "incidents" not in data


# ----------------------------------------------------------------------
# trace_report tool
# ----------------------------------------------------------------------

def _load_trace_report():
    path = (
        pathlib.Path(__file__).resolve().parents[1]
        / "tools" / "trace_report.py"
    )
    spec = importlib.util.spec_from_file_location("trace_report", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestTraceReport:
    def test_report_on_real_trace(self, tmp_path, capsys):
        obs.configure(trace_out=str(tmp_path / "trace.json"))
        with BenchmarkRunner(SMALL) as runner:
            runner.sweep(tuning_factory, benchmarks=BENCHMARKS)
        obs.finalize()
        report = _load_trace_report()
        assert report.main([str(tmp_path / "trace.json")]) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "slowest cells" in out
        assert "execute" in out

    def test_report_rejects_missing_file(self, tmp_path, capsys):
        report = _load_trace_report()
        assert report.main([str(tmp_path / "nope.json")]) == 2

    def test_supervision_and_retry_sections(self):
        report = _load_trace_report()
        events = [
            {"ph": "i", "name": "retry", "cat": "supervision",
             "args": {"benchmark": "swim", "technique": "tuning"},
             "pid": 1, "ts": 1.0},
            {"ph": "i", "name": "pool_rebuild", "cat": "supervision",
             "args": {}, "pid": 1, "ts": 2.0},
        ]
        text = report.render_report(events)
        assert "retry hotspots" in text
        assert "swim / tuning" in text
        assert "pool_rebuild" in text

    def test_empty_shard_dir_exits_cleanly(self, tmp_path, capsys):
        report = _load_trace_report()
        shard_dir = tmp_path / "trace.json.shards"
        shard_dir.mkdir()
        assert report.main([str(shard_dir)]) == 0
        assert "no spans recorded" in capsys.readouterr().out

    def test_missing_shard_dir_exits_cleanly(self, tmp_path, capsys):
        report = _load_trace_report()
        missing = tmp_path / "never-written.shards"
        assert report.main([str(missing)]) == 0
        assert "no spans recorded" in capsys.readouterr().out

    def test_unexported_trace_falls_back_to_shards(self, tmp_path, capsys):
        # A --trace-out path whose process died before export: the
        # shards exist, the merged file does not.
        report = _load_trace_report()
        trace_path = tmp_path / "trace.json"
        shard_dir = trace_path.parent / "trace.json.shards"
        shard_dir.mkdir()
        assert report.main([str(trace_path)]) == 0
        assert "no spans recorded" in capsys.readouterr().out


# ----------------------------------------------------------------------
# bench_history tool
# ----------------------------------------------------------------------

def _load_bench_history():
    path = (
        pathlib.Path(__file__).resolve().parents[1]
        / "tools" / "bench_history.py"
    )
    spec = importlib.util.spec_from_file_location("bench_history", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchHistory:
    def _report(self, tmp_path, name, sequential, pool):
        path = tmp_path / name
        path.write_text(json.dumps({
            "schema": 1,
            "backends": {
                "sequential": {"cells_per_s": sequential, "wall_s": 1.0},
                "pool": {"cells_per_s": pool, "wall_s": 1.0},
            },
        }))
        return str(path)

    def test_append_then_trend_pass_and_fail(self, tmp_path, capsys):
        history = _load_bench_history()
        ledger = str(tmp_path / "history")
        report = self._report(tmp_path, "BENCH_x.json", 4.0, 3.0)
        for stamp in (100, 200, 300):
            assert history.main([
                "append", report, "--ledger-dir", ledger,
                "--commit", f"c{stamp}", "--recorded-unix", str(stamp),
            ]) == 0
        # current equals the trailing median: passes
        assert history.main(["check", report, "--ledger-dir", ledger]) == 0
        assert "trend check passed" in capsys.readouterr().out
        # throughput halves: trips the trend gate
        slow = self._report(tmp_path, "BENCH_x.json", 2.0, 1.4)
        assert history.main(["check", slow, "--ledger-dir", ledger]) == 1
        out = capsys.readouterr().out
        assert "BENCH TREND CHECK FAILED" in out
        assert "sequential" in out

    def test_too_few_entries_passes_trivially(self, tmp_path, capsys):
        history = _load_bench_history()
        ledger = str(tmp_path / "history")
        report = self._report(tmp_path, "BENCH_y.json", 4.0, 3.0)
        assert history.main([
            "append", report, "--ledger-dir", ledger,
            "--commit", "c1", "--recorded-unix", "100",
        ]) == 0
        assert history.main(["check", report, "--ledger-dir", ledger]) == 0
        assert "skipped" in capsys.readouterr().out

    def test_torn_ledger_line_ignored(self, tmp_path):
        history = _load_bench_history()
        ledger_dir = tmp_path / "history"
        ledger_dir.mkdir()
        report = self._report(tmp_path, "BENCH_z.json", 4.0, 3.0)
        good = json.dumps(
            {"commit": "c", "recorded_unix": 1,
             "backends": {"sequential": 4.0, "pool": 3.0}}
        )
        (ledger_dir / "BENCH_z.jsonl").write_text(
            good + "\n" + good + "\n" + '{"torn": tru'
        )
        assert history.main(
            ["check", report, "--ledger-dir", str(ledger_dir)]
        ) == 0

    def test_empty_report_refused(self, tmp_path):
        history = _load_bench_history()
        path = tmp_path / "BENCH_empty.json"
        path.write_text(json.dumps({"backends": {}}))
        assert history.main([
            "append", str(path), "--ledger-dir", str(tmp_path / "h"),
        ]) == 2
