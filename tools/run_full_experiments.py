"""Produce the paper-scale results recorded in EXPERIMENTS.md.

Equivalent to `repro.experiments.persistence.run_and_save_all("results")`.
"""
from repro.experiments.persistence import run_and_save_all

def report(name, seconds):
    print(f"=== {name} done in {seconds:.0f}s ===", flush=True)

if __name__ == "__main__":
    written = run_and_save_all("results", progress=report)
    for name, paths in written.items():
        for path in paths:
            print(" ", path)
