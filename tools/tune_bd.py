import sys
from dataclasses import replace
from repro.config import TABLE1_SUPPLY, TABLE1_PROCESSOR, TABLE1_TUNING
from repro.core import ResonanceTuningController
from repro.power import PowerSupply
from repro.sim import Simulation
from repro.uarch import Processor, SPEC2K

def run(prof, tuned, n, seed=None):
    proc = Processor.from_profile(prof, n_instructions=int(n*4.5),
                                  config=TABLE1_PROCESSOR, supply_config=TABLE1_SUPPLY, seed=seed)
    supply = PowerSupply(TABLE1_SUPPLY, initial_current=35.0)
    ctrl = ResonanceTuningController(TABLE1_SUPPLY, TABLE1_PROCESSOR, TABLE1_TUNING) if tuned else None
    return Simulation(proc, supply, ctrl, benchmark=prof.name, warmup_cycles=2000).run(n)

jobs = {}
for arg in sys.argv[1:]:
    name, bds = arg.split("=")
    jobs[name] = [int(x) for x in bds.split(",")]
for name, bds in jobs.items():
    base_prof = SPEC2K[name]
    for bd in bds:
        p = replace(base_prof, osc_boost_dep=bd)
        b = run(p, False, 60000)
        t1 = run(p, True, 60000)
        t2 = run(p, True, 60000, seed=base_prof.seed+100)
        print(f"{name:8s} bd={bd:2d}: baseViol={b.violation_fraction:.2e} tuned={t1.violation_fraction:.2e}/{t2.violation_fraction:.2e}")
