"""Chaos harness: disturb real sweeps, assert they still converge.

Each scenario runs an actual benchmark sweep while sabotaging it with
the injectors from :mod:`repro.faults.chaos` -- SIGKILLing a worker
mid-cell, truncating and bit-flipping the checkpoint between runs,
failing checkpoint fsyncs with ENOSPC/EIO, delivering SIGTERM at a
seeded barrier -- and then checks the crash-safety invariants:

* the sweep always terminates (drained runs raise ``SweepInterrupted``
  with a resumable checkpoint rather than hanging or corrupting state);
* after ``--resume`` the aggregates are byte-identical to an undisturbed
  sequential run (no cell lost, duplicated, or silently altered);
* damaged checkpoints are quarantined, never trusted.

Usage::

    PYTHONPATH=src python tools/chaos.py                # all scenarios
    PYTHONPATH=src python tools/chaos.py --quick        # CI-sized pass
    PYTHONPATH=src python tools/chaos.py --scenario sigterm --seed 7

Exits non-zero if any invariant is violated.  See docs/robustness.md.
"""

from __future__ import annotations

import argparse
import dataclasses
import errno
import json
import os
import pathlib
import random
import signal
import sys
import tempfile
import time
import warnings

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.core import ResonanceTuningController  # noqa: E402
from repro.errors import SweepInterrupted  # noqa: E402
from repro.faults.chaos import (  # noqa: E402
    ComposeTransforms,
    DelayResultOnce,
    DropConnectionOnce,
    DuplicateResultOnce,
    KillWorkerOnce,
    PartitionWorkerOnce,
    flip_bit,
    inject_fsync_faults,
    truncate_file,
)
from repro.sim import (  # noqa: E402
    BenchmarkRunner,
    ResilienceConfig,
    SweepConfig,
    load_checkpoint,
)
from repro.sim.runner import _cell_key  # noqa: E402


def tuning_factory(supply, processor):
    """Module-level (picklable) controller factory for worker processes."""
    return ResonanceTuningController(supply, processor)


def worker_safe_factory():
    """The tuning factory bound to an *importable* module object.

    Pool workers are forks, so ``__main__.tuning_factory`` resolves for
    them even when this file runs as a script.  Dist workers are fresh
    interpreters: anything pickled by reference to ``__main__`` is
    unresolvable there, so dist scenarios pickle the factory through the
    canonical ``chaos`` module instead (this directory is ``sys.path[0]``
    when the script runs, and the scheduler's ``sys.path`` is propagated
    to every worker).
    """
    if __name__ != "__main__":
        return tuning_factory
    import chaos

    return chaos.tuning_factory


def fingerprint(summary) -> str:
    return json.dumps(dataclasses.asdict(summary), sort_keys=True)


class Plan:
    """One chaos campaign's shared grid, golden run, and RNG."""

    def __init__(self, quick: bool, seed: int):
        self.config = SweepConfig(
            n_cycles=2000 if quick else 2500, warmup_cycles=200
        )
        self.benchmarks = ("swim", "gzip") if quick else ("swim", "gzip", "parser")
        self.seeds = (None,) if quick else (None, 7)
        self.quick = quick
        self.rng = random.Random(seed)
        self._golden = None

    @property
    def golden(self) -> str:
        """Fingerprint of the undisturbed sequential run (computed once)."""
        if self._golden is None:
            summary = BenchmarkRunner(self.config).sweep(
                tuning_factory, benchmarks=self.benchmarks, seeds=self.seeds
            )
            self._golden = fingerprint(summary)
        return self._golden

    def grid_keys(self, ordinal: int = 0):
        return {
            _cell_key(ordinal, name, "resonance-tuning", seed)
            for name in self.benchmarks
            for seed in self.seeds
        }

    def sweep(self, runner, **kwargs):
        return runner.sweep(
            tuning_factory, benchmarks=self.benchmarks, seeds=self.seeds,
            **kwargs
        )


# ----------------------------------------------------------------------
# Scenarios: each returns a list of invariant violations (empty = pass)
# ----------------------------------------------------------------------

def scenario_worker_kill(plan: Plan, tmp: pathlib.Path):
    """SIGKILL the worker running one benchmark mid-cell; the supervisor
    must rebuild the pool, requeue the lost cells, and still converge."""
    problems = []
    ck = tmp / "kill.json"
    marker = tmp / "kill.marker"
    target = plan.rng.choice(plan.benchmarks)
    transform = KillWorkerOnce(str(marker), target, after_cycles=300)
    with BenchmarkRunner(plan.config, supply_transform=transform) as runner:
        summary = plan.sweep(
            runner,
            resilience=ResilienceConfig(workers=2, checkpoint_path=str(ck)),
        )
    if not marker.exists():
        problems.append(f"kill injector never fired for {target!r}")
    if fingerprint(summary) != plan.golden:
        problems.append("aggregates diverged from the undisturbed run")
    if summary.failures:
        problems.append(f"unexpected cell failures: {summary.failures}")
    incidents = getattr(summary, "incidents", ())
    if marker.exists() and not any(
        incident.error_type == "WorkerLostError" for incident in incidents
    ):
        problems.append("worker loss left no incident record")
    if set(load_checkpoint(str(ck))["cells"]) != plan.grid_keys():
        problems.append("checkpoint cells do not match the sweep grid")
    return problems


def scenario_checkpoint_corruption(plan: Plan, tmp: pathlib.Path):
    """Truncate, then bit-flip, the checkpoint between runs; each resume
    must quarantine the damage and converge on the golden aggregates."""
    problems = []
    ck = tmp / "corrupt.json"
    BenchmarkRunner(plan.config).sweep(
        tuning_factory, benchmarks=plan.benchmarks, seeds=plan.seeds,
        resilience=ResilienceConfig(checkpoint_path=str(ck)),
    )

    for damage_round, mutilate in enumerate(
        (
            lambda: truncate_file(str(ck), plan.rng.uniform(0.3, 0.8)),
            lambda: flip_bit(
                str(ck), offset=plan.rng.randrange(ck.stat().st_size)
            ),
        ),
        start=1,
    ):
        mutilate()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            summary = plan.sweep(
                BenchmarkRunner(plan.config),
                resilience=ResilienceConfig(
                    checkpoint_path=str(ck), resume=True
                ),
            )
        label = f"round {damage_round}"
        if fingerprint(summary) != plan.golden:
            problems.append(f"{label}: resumed aggregates diverged")
        quarantines = sorted(tmp.glob("corrupt.json.corrupt-*"))
        if len(quarantines) < damage_round:
            # A flip can land in dead whitespace of an already-valid
            # region only if the file re-parsed cleanly -- it cannot,
            # since every record is digest-checked.
            problems.append(f"{label}: corrupt original was not quarantined")
        if not any("salvage" in str(w.message) for w in caught):
            problems.append(f"{label}: no salvage warning was raised")
        loaded = load_checkpoint(str(ck))
        if not plan.grid_keys() <= set(loaded["cells"]):
            problems.append(f"{label}: resumed checkpoint is missing cells")
    return problems


def scenario_write_faults(plan: Plan, tmp: pathlib.Path):
    """Fail checkpoint fsyncs with ENOSPC then EIO; sweeps must finish
    with correct aggregates, and a later resume must still converge."""
    problems = []
    for name, every, code in (
        ("enospc", 2, errno.ENOSPC),
        ("eio", 3, errno.EIO),
    ):
        ck = tmp / f"{name}.json"
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            with inject_fsync_faults(every=every, error_number=code) as hits:
                summary = plan.sweep(
                    BenchmarkRunner(plan.config),
                    resilience=ResilienceConfig(checkpoint_path=str(ck)),
                )
        if hits["faults"] == 0:
            problems.append(f"{name}: no fsync fault was ever injected")
        if fingerprint(summary) != plan.golden:
            problems.append(f"{name}: aggregates diverged under write faults")
        # Whatever survived on disk is either absent or a valid
        # checkpoint (atomic replace), and a clean resume converges.
        resumed = plan.sweep(
            BenchmarkRunner(plan.config),
            resilience=ResilienceConfig(checkpoint_path=str(ck), resume=True),
        )
        if fingerprint(resumed) != plan.golden:
            problems.append(f"{name}: resume after write faults diverged")
    return problems


def scenario_sigterm(plan: Plan, tmp: pathlib.Path):
    """Deliver SIGTERM at a seeded barrier mid-sweep; the run must drain
    to a checksum-valid checkpoint and resume to the golden aggregates."""
    problems = []
    ck = tmp / "drain.json"
    grid_size = len(plan.benchmarks) * len(plan.seeds)
    fire_after = plan.rng.randrange(max(1, grid_size // 2))
    seen = {"cells": 0}

    def terminate_at_barrier(name, metrics):
        if seen["cells"] == fire_after:
            os.kill(os.getpid(), signal.SIGTERM)
        seen["cells"] += 1

    workers = 1 if plan.quick else 2
    interrupted = None
    t0 = time.monotonic()
    try:
        with BenchmarkRunner(plan.config) as runner:
            plan.sweep(
                runner,
                progress=terminate_at_barrier,
                resilience=ResilienceConfig(
                    workers=workers,
                    checkpoint_path=str(ck),
                    drain_deadline_s=10.0,
                ),
            )
    except SweepInterrupted as stop:
        interrupted = stop
    elapsed = time.monotonic() - t0

    if interrupted is None:
        # With small grids every in-flight cell can finish before the
        # drain check; the invariant then degenerates to a normal run.
        if seen["cells"] != grid_size:
            problems.append("sweep neither completed nor drained")
    else:
        if interrupted.exit_code != 75:
            problems.append(
                f"drain exit code {interrupted.exit_code}, expected 75"
            )
        if elapsed > 60.0:
            problems.append(f"drain took {elapsed:.0f}s -- not a drain")
        shutdown = pathlib.Path(f"{ck}.shutdown.json")
        if not shutdown.exists():
            problems.append("no shutdown summary was written")
        else:
            note = json.loads(shutdown.read_text())
            if note["signal"] != "SIGTERM" or not note["resumable"]:
                problems.append(f"bad shutdown summary: {note}")
        load_checkpoint(str(ck))  # must be checksum-valid, not salvage

    resumed = plan.sweep(
        BenchmarkRunner(plan.config),
        resilience=ResilienceConfig(checkpoint_path=str(ck), resume=True),
    )
    if fingerprint(resumed) != plan.golden:
        problems.append("resume after drain diverged from the golden run")
    if set(load_checkpoint(str(ck))["cells"]) != plan.grid_keys():
        problems.append("final checkpoint does not match the sweep grid")
    return problems


# ----------------------------------------------------------------------
# Network chaos: the distributed backend under unreliable transport
# ----------------------------------------------------------------------

def _dist_sweep(plan: Plan, transform, checkpoint: pathlib.Path,
                **resilience_kw):
    """One dist-backend sweep with a sabotaged supply transform."""
    resilience_kw.setdefault("workers", 2)
    with BenchmarkRunner(plan.config, supply_transform=transform) as runner:
        return runner.sweep(
            worker_safe_factory(),
            benchmarks=plan.benchmarks,
            seeds=plan.seeds,
            resilience=ResilienceConfig(
                backend="dist", checkpoint_path=str(checkpoint),
                **resilience_kw,
            ),
        )


def _check_dist_convergence(plan: Plan, summary, ck: pathlib.Path,
                            marker: pathlib.Path, label: str):
    problems = []
    if not marker.exists():
        problems.append(f"{label}: injector never fired")
    if fingerprint(summary) != plan.golden:
        problems.append(f"{label}: aggregates diverged from the golden run")
    if summary.failures:
        problems.append(f"{label}: unexpected cell failures:"
                        f" {summary.failures}")
    if set(load_checkpoint(str(ck))["cells"]) != plan.grid_keys():
        problems.append(f"{label}: checkpoint cells do not match the grid")
    return problems


def scenario_dist_worker_crash(plan: Plan, tmp: pathlib.Path):
    """SIGKILL a dist worker mid-cell: the scheduler sees the connection
    die with the lease outstanding, steals the cell back, relaunches a
    replacement worker, and still converges byte-identically."""
    ck, marker = tmp / "crash.json", tmp / "crash.marker"
    target = plan.rng.choice(plan.benchmarks)
    summary = _dist_sweep(
        plan, KillWorkerOnce(str(marker), target, after_cycles=300), ck
    )
    problems = _check_dist_convergence(plan, summary, ck, marker, "crash")
    incidents = getattr(summary, "incidents", ())
    if marker.exists() and not any(
        i.error_type == "WorkerLostError" for i in incidents
    ):
        problems.append("crash: worker loss left no incident record")
    return problems


def scenario_dist_connection_drop(plan: Plan, tmp: pathlib.Path):
    """Sever a worker's connection right before it delivers a result:
    the computed cell is lost with its lease, requeued, and recomputed
    -- never half-recorded."""
    ck, marker = tmp / "drop.json", tmp / "drop.marker"
    target = plan.rng.choice(plan.benchmarks)
    summary = _dist_sweep(
        plan, DropConnectionOnce(str(marker), target, after_cycles=300), ck
    )
    problems = _check_dist_convergence(plan, summary, ck, marker, "drop")
    incidents = getattr(summary, "incidents", ())
    if marker.exists() and not any(
        i.error_type == "WorkerLostError" for i in incidents
    ):
        problems.append("drop: dropped connection left no incident record")
    return problems


def scenario_dist_partition(plan: Plan, tmp: pathlib.Path):
    """Partition a worker past its lease deadline: the lease must expire
    deterministically, the cell must be stolen and re-run elsewhere, and
    the partitioned worker's late result must be deduplicated."""
    ck, marker = tmp / "partition.json", tmp / "partition.marker"
    target = plan.rng.choice(plan.benchmarks)
    summary = _dist_sweep(
        plan,
        PartitionWorkerOnce(
            str(marker), target, after_cycles=300, silence_s=4.0
        ),
        ck,
        lease_timeout_s=1.0,
    )
    problems = _check_dist_convergence(plan, summary, ck, marker, "partition")
    incidents = getattr(summary, "incidents", ())
    if marker.exists() and not any(
        i.error_type == "LeaseExpired" for i in incidents
    ):
        problems.append("partition: expired lease left no incident record")
    return problems


def scenario_dist_delay_dup(plan: Plan, tmp: pathlib.Path):
    """Delay one result and duplicate another: late delivery within the
    lease is accepted once, the retransmitted frame is dropped, and the
    aggregates never double-count."""
    ck = tmp / "delaydup.json"
    delay_marker, dup_marker = tmp / "delay.marker", tmp / "dup.marker"
    delayed, duplicated = plan.rng.sample(list(plan.benchmarks), 2)
    summary = _dist_sweep(
        plan,
        ComposeTransforms(
            DelayResultOnce(
                str(delay_marker), delayed, after_cycles=300, delay_s=0.5
            ),
            DuplicateResultOnce(
                str(dup_marker), duplicated, after_cycles=300
            ),
        ),
        ck,
    )
    problems = _check_dist_convergence(
        plan, summary, ck, delay_marker, "delay-dup"
    )
    if not dup_marker.exists():
        problems.append("delay-dup: duplicate injector never fired")
    incidents = getattr(summary, "incidents", ())
    # Neither fault loses work, so neither may park a cell or invent a
    # spurious worker-loss incident.
    if any(i.error_type == "WorkerLostError" for i in incidents):
        problems.append("delay-dup: spurious worker-loss incident")
    return problems


# ----------------------------------------------------------------------
# Service chaos: the HTTP serving tier under process and client failures
# ----------------------------------------------------------------------

class ServeHarness:
    """One ``repro serve`` subprocess on an ephemeral port.

    The server is a real ``python -m repro serve`` process (not an
    in-process service), so ``kill -9`` scenarios exercise the same crash
    surface production would: no atexit handlers, no flushed buffers, no
    mercy.
    """

    def __init__(self, data_dir: pathlib.Path, **flags):
        self.data_dir = pathlib.Path(data_dir)
        self.ready_file = self.data_dir / "ready.json"
        self.flags = flags
        self.proc = None
        self.base_url = None

    def start(self, timeout_s: float = 30.0) -> "ServeHarness":
        import subprocess

        if self.ready_file.exists():
            self.ready_file.unlink()
        src = pathlib.Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}:{env.get('PYTHONPATH', '')}".rstrip(":")
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--data-dir", str(self.data_dir),
            "--port", "0",
            "--ready-file", str(self.ready_file),
        ]
        for flag, value in self.flags.items():
            argv.extend([f"--{flag.replace('_', '-')}", str(value)])
        self.proc = subprocess.Popen(argv, env=env)
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"server exited {self.proc.returncode} before ready"
                )
            try:
                info = json.loads(self.ready_file.read_text())
                self.base_url = info["url"]
                return self
            except (OSError, ValueError, KeyError):
                time.sleep(0.05)
        raise RuntimeError("server never wrote its ready file")

    def request(self, method, path, body=None, headers=None, timeout=10.0):
        """(status, headers, parsed JSON) of one request."""
        import urllib.error
        import urllib.request

        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers=headers or {},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as resp:
                payload = resp.read()
                return resp.status, dict(resp.headers), (
                    json.loads(payload) if payload else None
                )
        except urllib.error.HTTPError as error:
            payload = error.read()
            return error.code, dict(error.headers), (
                json.loads(payload) if payload else None
            )

    def wait_terminal(self, job_id: str, timeout_s: float = 120.0) -> dict:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            status, _, record = self.request("GET", f"/jobs/{job_id}")
            if status == 200 and record["state"] in (
                "done", "failed", "cancelled"
            ):
                return record
            time.sleep(0.1)
        raise RuntimeError(f"job {job_id} never reached a terminal state")

    def sse_socket(self, job_id: str):
        """A raw socket with an open SSE stream (caller reads/closes)."""
        import socket
        from urllib.parse import urlparse

        parsed = urlparse(self.base_url)
        sock = socket.create_connection(
            (parsed.hostname, parsed.port), timeout=30.0
        )
        sock.sendall(
            f"GET /jobs/{job_id}/events HTTP/1.1\r\n"
            f"Host: {parsed.netloc}\r\n\r\n".encode("latin-1")
        )
        return sock

    def kill9(self) -> None:
        self.proc.kill()
        self.proc.wait()

    def terminate(self, timeout_s: float = 30.0) -> int:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=timeout_s)
            except Exception:
                self.proc.kill()
                self.proc.wait()
        return self.proc.returncode

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.terminate()


def _serve_spec(plan: Plan, pace_s: float = 0.0) -> dict:
    """The job spec every serve scenario submits (matches the Plan grid)."""
    return {
        "technique": "tuning",
        "benchmarks": list(plan.benchmarks),
        "seeds": [seed for seed in plan.seeds],
        "n_cycles": plan.config.n_cycles,
        "warmup_cycles": plan.config.warmup_cycles,
        "pace_s": pace_s,
    }


def _serve_golden(plan: Plan) -> str:
    """Canonical JSON of the summary a direct runner produces for the
    spec grid -- the byte-identical target for every served result."""
    from repro.serve import JobSpec, controller_factory

    spec = JobSpec.from_dict(_serve_spec(plan))
    summary = BenchmarkRunner(
        SweepConfig(
            n_cycles=spec.n_cycles, warmup_cycles=spec.warmup_cycles
        )
    ).sweep(
        controller_factory(spec),
        benchmarks=list(spec.benchmarks),
        seeds=list(spec.seeds),
    )
    return json.dumps(dataclasses.asdict(summary), sort_keys=True)


def _served_fingerprint(record: dict) -> str:
    return json.dumps(record["result"]["summary"], sort_keys=True)


def scenario_serve_kill9_resume(plan: Plan, tmp: pathlib.Path):
    """``kill -9`` the server mid-sweep; a restart must re-adopt the job,
    resume from its checkpoint, and converge byte-identically."""
    problems = []
    golden = _serve_golden(plan)
    data_dir = tmp / "serve"
    spec = _serve_spec(plan, pace_s=0.5)
    server = ServeHarness(data_dir, max_running=1).start()
    try:
        status, _, record = server.request(
            "POST", "/jobs", spec, {"Idempotency-Key": "kill9"}
        )
        if status != 201:
            return [f"submission failed: {status} {record}"]
        job_id = record["job_id"]
        # Let at least one cell complete and checkpoint, then murder the
        # process while the paced sweep is still mid-grid.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            _, _, record = server.request("GET", f"/jobs/{job_id}")
            if record["completed_cells"] >= 1:
                break
            time.sleep(0.05)
        else:
            return ["first cell never completed before the kill window"]
        if record["state"] in ("done", "failed", "cancelled"):
            return ["job finished before the kill window; widen pace_s"]
        server.kill9()
    except BaseException:
        server.terminate()
        raise

    checkpoint = data_dir / "work" / job_id / "checkpoint.json"
    if not checkpoint.exists():
        problems.append("no sweep checkpoint survived the kill")

    with ServeHarness(data_dir, max_running=1) as server:
        _, _, record = server.request("GET", f"/jobs/{job_id}")
        if record is None:
            return problems + ["job record lost across the crash"]
        if record["adoptions"] < 1:
            problems.append(
                f"job was not re-adopted (adoptions={record['adoptions']})"
            )
        record = server.wait_terminal(job_id)
        if record["state"] != "done":
            problems.append(
                f"resumed job ended {record['state']}: {record.get('error')}"
            )
        else:
            _, _, result = server.request(
                "GET", f"/jobs/{job_id}/result"
            )
            if _served_fingerprint(result) != golden:
                problems.append(
                    "resumed aggregates diverged from the direct run"
                )
        # An idempotent retry from before the crash still maps to the
        # original job after recovery.
        status, _, replay = server.request(
            "POST", "/jobs", spec, {"Idempotency-Key": "kill9"}
        )
        if status != 200 or replay["job_id"] != job_id:
            problems.append(
                f"idempotency map did not survive the crash:"
                f" {status} {replay and replay.get('job_id')}"
            )
    return problems


def scenario_serve_client_disconnect(plan: Plan, tmp: pathlib.Path):
    """Drop an SSE consumer mid-stream: the job must finish unaffected
    and the server must keep serving."""
    problems = []
    golden = _serve_golden(plan)
    with ServeHarness(tmp / "serve", max_running=1) as server:
        status, _, record = server.request(
            "POST", "/jobs", _serve_spec(plan, pace_s=0.3)
        )
        if status != 201:
            return [f"submission failed: {status} {record}"]
        job_id = record["job_id"]
        sock = server.sse_socket(job_id)
        try:
            sock.settimeout(30.0)
            received = b""
            while b"event: cell" not in received:
                chunk = sock.recv(4096)
                if not chunk:
                    return ["SSE stream closed before the first cell event"]
                received += chunk
        finally:
            # Abrupt close mid-stream -- no graceful shutdown, simulating
            # a crashed client.
            sock.close()
        record = server.wait_terminal(job_id)
        if record["state"] != "done":
            problems.append(
                f"job ended {record['state']} after client disconnect"
            )
        else:
            _, _, result = server.request("GET", f"/jobs/{job_id}/result")
            if _served_fingerprint(result) != golden:
                problems.append("aggregates diverged after disconnect")
        status, _, _ = server.request("GET", "/healthz")
        if status != 200:
            problems.append(f"server unhealthy after disconnect: {status}")
        # A late stream on the finished job must flush every buffered
        # cell event before its "end" frame.
        sock = server.sse_socket(job_id)
        try:
            sock.settimeout(30.0)
            received = b""
            while b"event: end" not in received:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                received += chunk
        finally:
            sock.close()
        cells = received.count(b"event: cell")
        expected = len(plan.benchmarks) * len(plan.seeds)
        if cells != expected:
            problems.append(
                f"late SSE replayed {cells} cell events, expected {expected}"
            )
    return problems


def scenario_serve_overflow_storm(plan: Plan, tmp: pathlib.Path):
    """Queue-full storm: new submissions shed with 429 + deterministic
    Retry-After while the running job completes unaffected."""
    problems = []
    golden = _serve_golden(plan)
    from repro.serve import AdmissionPolicy

    policy = AdmissionPolicy(max_queued=2, tenant_max_active=8,
                             tenant_max_cells=512)
    with ServeHarness(
        tmp / "serve", max_running=1, max_queued=policy.max_queued,
        tenant_max_active=policy.tenant_max_active,
        tenant_max_cells=policy.tenant_max_cells,
    ) as server:
        status, _, running = server.request(
            "POST", "/jobs", _serve_spec(plan, pace_s=0.5),
            {"Idempotency-Key": "storm-running"},
        )
        if status != 201:
            return [f"first submission failed: {status}"]
        queued_ids = []
        for n in range(policy.max_queued):
            status, _, record = server.request(
                "POST", "/jobs", _serve_spec(plan)
            )
            if status != 201:
                problems.append(f"queue slot {n} rejected early: {status}")
            else:
                queued_ids.append(record["job_id"])
        # The storm: every further submission must shed deterministically.
        expected_hint = policy.retry_after(
            queued=policy.max_queued, running=1
        )
        for n in range(5):
            status, headers, body = server.request(
                "POST", "/jobs", _serve_spec(plan)
            )
            if status != 429:
                problems.append(f"storm request {n} got {status}, not 429")
                continue
            hint = headers.get("Retry-After")
            if hint != str(expected_hint):
                problems.append(
                    f"storm request {n}: Retry-After {hint!r},"
                    f" expected {expected_hint!r}"
                )
        # An idempotent retry of the *accepted* job must bypass the full
        # queue and return the original id.
        status, _, replay = server.request(
            "POST", "/jobs", _serve_spec(plan, pace_s=0.5),
            {"Idempotency-Key": "storm-running"},
        )
        if status != 200 or replay["job_id"] != running["job_id"]:
            problems.append(
                f"idempotent retry under overload: {status},"
                f" id match={replay and replay.get('job_id') == running['job_id']}"
            )
        # Free the queue so the teardown drain is clean, then prove the
        # running job survived the storm byte-identically.
        for job_id in queued_ids:
            status, _, _ = server.request("POST", f"/jobs/{job_id}/cancel")
            if status != 200:
                problems.append(f"cancel of queued {job_id} got {status}")
        record = server.wait_terminal(running["job_id"])
        if record["state"] != "done":
            problems.append(f"running job ended {record['state']}")
        else:
            _, _, result = server.request(
                "GET", f"/jobs/{running['job_id']}/result"
            )
            if _served_fingerprint(result) != golden:
                problems.append("storm survivor's aggregates diverged")
    return problems


def scenario_serve_slow_loris(plan: Plan, tmp: pathlib.Path):
    """A drip-feeding request must be shed on the read deadline (408)
    while concurrent well-behaved requests keep being served."""
    import socket
    from urllib.parse import urlparse

    problems = []
    with ServeHarness(
        tmp / "serve", max_running=1, request_timeout_s=1.0
    ) as server:
        parsed = urlparse(server.base_url)
        sock = socket.create_connection(
            (parsed.hostname, parsed.port), timeout=30.0
        )
        try:
            sock.sendall(b"GET /healthz HTT")  # ...and then just sit there
            # The server must stay responsive to others while the loris
            # dangles.
            status, _, _ = server.request("GET", "/healthz", timeout=5.0)
            if status != 200:
                problems.append(f"healthz blocked by slow-loris: {status}")
            sock.settimeout(10.0)
            t0 = time.monotonic()
            response = b""
            while b"\r\n\r\n" not in response:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                response += chunk
            elapsed = time.monotonic() - t0
            if b"408" not in response.split(b"\r\n", 1)[0]:
                problems.append(
                    f"slow-loris got {response[:60]!r}, expected 408"
                )
            if elapsed > 8.0:
                problems.append(
                    f"loris held its connection {elapsed:.1f}s past the"
                    f" 1s deadline"
                )
        except socket.timeout:
            problems.append("server never answered the slow-loris socket")
        finally:
            sock.close()
        status, _, _ = server.request("GET", "/readyz")
        if status != 200:
            problems.append(f"server not ready after the loris: {status}")
    return problems


SCENARIOS = {
    "worker-kill": scenario_worker_kill,
    "checkpoint-corruption": scenario_checkpoint_corruption,
    "write-faults": scenario_write_faults,
    "sigterm": scenario_sigterm,
    "dist-worker-crash": scenario_dist_worker_crash,
    "dist-connection-drop": scenario_dist_connection_drop,
    "dist-partition": scenario_dist_partition,
    "dist-delay-dup": scenario_dist_delay_dup,
    "serve-kill9-resume": scenario_serve_kill9_resume,
    "serve-client-disconnect": scenario_serve_client_disconnect,
    "serve-overflow-storm": scenario_serve_overflow_storm,
    "serve-slow-loris": scenario_serve_slow_loris,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Disturb real sweeps and verify crash-safety invariants."
    )
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="run only this scenario (repeatable; default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller grid and cycle counts (the CI configuration)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for barrier/corruption-site choices (default 0)",
    )
    args = parser.parse_args(argv)
    names = args.scenario or sorted(SCENARIOS)

    plan = Plan(quick=args.quick, seed=args.seed)
    failed = 0
    for name in names:
        t0 = time.monotonic()
        with tempfile.TemporaryDirectory(prefix=f"chaos-{name}-") as tmp:
            problems = SCENARIOS[name](plan, pathlib.Path(tmp))
        status = "ok" if not problems else "FAILED"
        print(f"{name:24s} {status}  ({time.monotonic() - t0:.1f}s)")
        for problem in problems:
            print(f"    - {problem}")
        failed += bool(problems)
    if failed:
        print(f"\n{failed} scenario(s) violated crash-safety invariants")
        return 1
    print(f"\nall {len(names)} scenario(s) held their invariants")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
