"""Perf-trajectory gate for the sweep backends (ROADMAP item 1).

Compares a freshly measured ``BENCH_sweep.json`` (written by
``benchmarks/bench_sweep_parallel.py``) against the committed baseline
in ``benchmarks/baselines/BENCH_sweep.json`` and fails when any
backend's throughput (cells/s) regressed by more than the tolerance.

Absolute throughput shifts with the host, so alongside the per-backend
check the gate also compares each fan-out backend's *speedup over the
same run's sequential leg* -- a machine-independent signal that the
scheduler itself (dispatch, leases, IPC) got slower.  Regenerate the
baseline on a quiet machine with::

    PYTHONPATH=src BENCH_SWEEP_OUT=benchmarks/baselines/BENCH_sweep.json \
        python -m pytest benchmarks/bench_sweep_parallel.py --benchmark-only -q

Usage::

    python tools/bench_gate.py CURRENT [--baseline PATH] [--tolerance 0.25]
"""

import argparse
import json
import pathlib
import sys

DEFAULT_BASELINE = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks" / "baselines" / "BENCH_sweep.json"
)


def speedups(report):
    """Per-backend speedup over the same run's sequential leg."""
    backends = report["backends"]
    sequential = backends.get("sequential", {}).get("cells_per_s")
    if not sequential:
        return {}
    return {
        label: entry["cells_per_s"] / sequential
        for label, entry in backends.items()
        if label != "sequential"
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly measured BENCH_sweep.json")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="maximum fractional regression before failing (default 0.25)",
    )
    args = parser.parse_args(argv)

    current = json.loads(pathlib.Path(args.current).read_text())
    baseline = json.loads(pathlib.Path(args.baseline).read_text())
    floor = 1.0 - args.tolerance
    problems = []

    print(f"{'backend':12s} {'baseline':>12s} {'current':>12s} {'ratio':>7s}")
    for label, base_entry in sorted(baseline["backends"].items()):
        cur_entry = current["backends"].get(label)
        if cur_entry is None:
            problems.append(f"backend {label!r} missing from current report")
            continue
        base_rate, cur_rate = (
            base_entry["cells_per_s"], cur_entry["cells_per_s"]
        )
        ratio = cur_rate / base_rate if base_rate else float("inf")
        print(f"{label:12s} {base_rate:9.1f}c/s {cur_rate:9.1f}c/s"
              f" {ratio:6.2f}x")
        if ratio < floor:
            problems.append(
                f"{label}: throughput {cur_rate:.1f} cells/s is"
                f" {(1 - ratio) * 100:.0f}% below baseline"
                f" {base_rate:.1f} (tolerance {args.tolerance * 100:.0f}%)"
            )

    base_speedups, cur_speedups = speedups(baseline), speedups(current)
    for label, base_speedup in sorted(base_speedups.items()):
        cur_speedup = cur_speedups.get(label)
        if cur_speedup is None:
            continue
        ratio = cur_speedup / base_speedup if base_speedup else float("inf")
        print(f"{label:12s} speedup {base_speedup:5.2f}x -> {cur_speedup:5.2f}x"
              f" ({ratio:.2f} of baseline)")
        if ratio < floor:
            problems.append(
                f"{label}: speedup over sequential fell to"
                f" {cur_speedup:.2f}x from {base_speedup:.2f}x"
            )

    if problems:
        print("\nPERF GATE FAILED")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
