"""Perf-trajectory gate for benchmark artifacts (ROADMAP item 1).

Compares a freshly measured benchmark report (``BENCH_sweep.json`` from
``benchmarks/bench_sweep_parallel.py`` or ``BENCH_core.json`` from
``benchmarks/bench_core_kernel.py``) against the committed baseline in
``benchmarks/baselines/`` and fails when any backend's throughput
(cells/s) regressed by more than the tolerance.

Absolute throughput shifts with the host, so alongside the per-backend
check the gate also compares each fan-out backend's *speedup over the
same run's sequential leg* -- a machine-independent signal that the
scheduler (or, for BENCH_core, the vectorized kernel) itself got
slower.  Both reports must therefore carry a ``sequential`` leg with a
positive rate; a report without one is malformed and fails the gate
outright rather than silently skipping the speedup check.  Regenerate
the sweep baseline on a quiet machine with::

    PYTHONPATH=src BENCH_SWEEP_OUT=benchmarks/baselines/BENCH_sweep.json \
        python -m pytest benchmarks/bench_sweep_parallel.py --benchmark-only -q

Usage::

    python tools/bench_gate.py CURRENT [--baseline PATH] [--tolerance 0.25]
"""

import argparse
import json
import pathlib
import sys

DEFAULT_BASELINE = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks" / "baselines" / "BENCH_sweep.json"
)


class MalformedReport(ValueError):
    """A benchmark report is structurally unusable for gating."""


def sequential_rate(report, source):
    """The report's sequential-leg throughput; raise if absent or zero.

    A missing or non-positive sequential rate means the measurement leg
    never ran (or divided by a zero wall time) -- silently returning no
    speedups here would let the gate "pass" without checking anything,
    which is how a broken bench job sneaks a regression through.
    """
    entry = report.get("backends", {}).get("sequential")
    if entry is None:
        raise MalformedReport(
            f"{source} report has no 'sequential' backend leg;"
            " cannot compute speedups -- regenerate the report"
        )
    rate = entry.get("cells_per_s")
    if not isinstance(rate, (int, float)) or not rate > 0:
        raise MalformedReport(
            f"{source} report's sequential leg has invalid throughput"
            f" {rate!r} (expected a positive number); the measurement"
            " leg did not run -- regenerate the report"
        )
    return rate


def speedups(report, source="current"):
    """Per-backend speedup over the same run's sequential leg."""
    sequential = sequential_rate(report, source)
    return {
        label: entry["cells_per_s"] / sequential
        for label, entry in report["backends"].items()
        if label != "sequential"
        and isinstance(entry.get("cells_per_s"), (int, float))
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly measured benchmark report")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="maximum fractional regression before failing (default 0.25)",
    )
    args = parser.parse_args(argv)

    current = json.loads(pathlib.Path(args.current).read_text())
    baseline = json.loads(pathlib.Path(args.baseline).read_text())
    floor = 1.0 - args.tolerance
    problems = []

    print(f"{'backend':12s} {'baseline':>12s} {'current':>12s} {'ratio':>7s}")
    for label, base_entry in sorted(baseline["backends"].items()):
        cur_entry = current["backends"].get(label)
        if cur_entry is None:
            problems.append(f"backend {label!r} missing from current report")
            continue
        base_rate, cur_rate = (
            base_entry.get("cells_per_s"), cur_entry.get("cells_per_s")
        )
        if not isinstance(base_rate, (int, float)) or not base_rate > 0:
            problems.append(
                f"{label}: baseline throughput {base_rate!r} is not a"
                " positive number -- the baseline file is corrupt;"
                " regenerate it instead of gating against garbage"
            )
            continue
        if not isinstance(cur_rate, (int, float)) or not cur_rate > 0:
            problems.append(
                f"{label}: current throughput {cur_rate!r} is not a"
                " positive number -- the bench leg did not produce a"
                " measurement"
            )
            continue
        ratio = cur_rate / base_rate
        print(f"{label:12s} {base_rate:9.1f}c/s {cur_rate:9.1f}c/s"
              f" {ratio:6.2f}x")
        if ratio < floor:
            problems.append(
                f"{label}: throughput {cur_rate:.1f} cells/s is"
                f" {(1 - ratio) * 100:.0f}% below baseline"
                f" {base_rate:.1f} (tolerance {args.tolerance * 100:.0f}%)"
            )

    try:
        base_speedups = speedups(baseline, source="baseline")
        cur_speedups = speedups(current, source="current")
    except MalformedReport as exc:
        problems.append(str(exc))
    else:
        for label, base_speedup in sorted(base_speedups.items()):
            cur_speedup = cur_speedups.get(label)
            if cur_speedup is None:
                continue
            ratio = cur_speedup / base_speedup if base_speedup else float("inf")
            print(f"{label:12s} speedup {base_speedup:5.2f}x ->"
                  f" {cur_speedup:5.2f}x ({ratio:.2f} of baseline)")
            if ratio < floor:
                problems.append(
                    f"{label}: speedup over sequential fell to"
                    f" {cur_speedup:.2f}x from {base_speedup:.2f}x"
                )

    if problems:
        print("\nPERF GATE FAILED")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
