"""Full verification suite, organised as selectable hooks.

Run everything (the CI configuration)::

    PYTHONPATH=src python tools/verify_all.py

List the hooks, or run a subset while iterating locally::

    PYTHONPATH=src python tools/verify_all.py --list
    PYTHONPATH=src python tools/verify_all.py --only kernel --only replay

Each hook raises (or ``SystemExit``s) on an invariant violation; the
suite reports per-hook timing and fails if any hook failed.
"""
import argparse
import dataclasses
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

from repro.config import TABLE1_TUNING
from repro.core import ResonanceTuningController
from repro.sim import BenchmarkRunner, ResilienceConfig, SweepConfig
from repro.uarch import SPEC2K, PAPER_IPC, VIOLATING_NAMES

TRIO = ("swim", "parser", "gzip")


def factory(supply, proc):
    return ResonanceTuningController(supply, proc, TABLE1_TUNING)


def fingerprint(summary):
    return json.dumps(dataclasses.asdict(summary), sort_keys=True)


def hook_grid():
    """All 26 apps, base + tuned, 60k cycles, vs the paper's behaviour."""
    runner = BenchmarkRunner(SweepConfig(n_cycles=60000))
    bad = []
    for name in sorted(SPEC2K):
        base = runner.run_base(name)
        m = runner.compare(name, factory)
        is_viol = name in VIOLATING_NAMES
        ok_base = (base.violation_fraction > 1e-4) == is_viol
        ok_tuned = m.violation_fraction <= 2e-5
        flag = "" if (ok_base and ok_tuned) else "  <-- PROBLEM"
        if flag: bad.append(name)
        print(f"{name:9s} IPC={base.ipc:4.2f}/{PAPER_IPC[name]:4.2f} baseViol={base.violation_fraction:.2e} "
              f"tunedViol={m.violation_fraction:.2e} slow={m.slowdown:.3f} ED={m.energy_delay:.3f} "
              f"L1={m.first_level_fraction:.3f} L2={m.second_level_fraction:.4f}{flag}")
    print(f"{len(bad)} problems: {bad}")
    if bad:
        raise SystemExit(f"grid verification failed for {bad}")


def hook_faults():
    """Quick fault-injection campaign still renders and converges."""
    from repro.experiments.faults import run as run_fault_injection
    result = run_fault_injection(
        n_cycles=6000, benchmarks=("swim",), intensities=(0.3,)
    )
    print(result.render())


def hook_kernel():
    """Vectorized fast path vs REPRO_KERNEL=0: byte-identical aggregates."""
    from repro.core import kernel as core_kernel
    assert core_kernel.kernel_enabled(), "verify_all must run with the kernel on"
    kernel_sweep = BenchmarkRunner(SweepConfig(n_cycles=6000)).sweep(
        factory, benchmarks=TRIO
    )
    os.environ[core_kernel.KERNEL_ENV] = "0"
    try:
        scalar_sweep = BenchmarkRunner(SweepConfig(n_cycles=6000)).sweep(
            factory, benchmarks=TRIO
        )
    finally:
        os.environ.pop(core_kernel.KERNEL_ENV, None)
    match = fingerprint(kernel_sweep) == fingerprint(scalar_sweep)
    print(f"byte-identical aggregates: {match}")
    if not match:
        raise SystemExit("vectorized kernel diverged from the scalar cycle loop")


def hook_replay():
    """Trace store cold+warm vs full simulation: byte-identical, warm hits."""
    plain_sweep = BenchmarkRunner(SweepConfig(n_cycles=6000)).sweep(
        factory, benchmarks=TRIO
    )
    with tempfile.TemporaryDirectory() as store_dir:
        store_resilience = ResilienceConfig(trace_store_path=store_dir)
        cold_sweep = BenchmarkRunner(SweepConfig(n_cycles=6000)).sweep(
            factory, benchmarks=TRIO, resilience=store_resilience
        )
        warm_sweep = BenchmarkRunner(SweepConfig(n_cycles=6000)).sweep(
            factory, benchmarks=TRIO, resilience=store_resilience
        )
    match = (
        fingerprint(plain_sweep) == fingerprint(cold_sweep) == fingerprint(warm_sweep)
    )
    warm_hits = warm_sweep.timings.get("trace_hits", 0.0)
    print(f"byte-identical aggregates: {match}  warm replay hits: {warm_hits:.0f}")
    if not match:
        raise SystemExit("trace replay diverged from the full simulation")
    if not warm_hits:
        raise SystemExit("warm trace store produced no replay hits")


def hook_parallel():
    """Pool backend (workers=2) vs sequential: byte-identical aggregates."""
    sequential = BenchmarkRunner(SweepConfig(n_cycles=6000)).sweep(
        factory, benchmarks=TRIO
    )
    with BenchmarkRunner(SweepConfig(n_cycles=6000)) as parallel_runner:
        parallel = parallel_runner.sweep(
            factory, benchmarks=TRIO, resilience=ResilienceConfig(workers=2)
        )
    match = fingerprint(sequential) == fingerprint(parallel)
    print(f"byte-identical aggregates: {match}")
    if not match:
        raise SystemExit("parallel backend diverged from sequential results")


def hook_dist():
    """Distributed backend vs sequential: byte-identical aggregates."""
    # The dist workers are fresh interpreters, so the factory must pickle
    # by reference to an importable module -- chaos.py's, not this
    # script's __main__ (tools/ is sys.path[0] when this runs as a script).
    import chaos as chaos_mod
    dist_sequential = BenchmarkRunner(SweepConfig(n_cycles=6000)).sweep(
        chaos_mod.tuning_factory, benchmarks=TRIO
    )
    with BenchmarkRunner(SweepConfig(n_cycles=6000)) as dist_runner:
        dist = dist_runner.sweep(
            chaos_mod.tuning_factory, benchmarks=TRIO,
            resilience=ResilienceConfig(workers=2, backend="dist"),
        )
    match = fingerprint(dist_sequential) == fingerprint(dist)
    print(f"byte-identical aggregates: {match}")
    if not match:
        raise SystemExit("distributed backend diverged from sequential results")


def hook_serve():
    """Sweep service round trip: submit over HTTP, stream SSE to the end,
    fetch the result, and compare byte-identically to a direct run."""
    import chaos as chaos_mod
    from repro.serve import JobSpec, controller_factory

    spec_dict = {
        "technique": "tuning",
        "benchmarks": list(TRIO),
        "n_cycles": 2000,
        "warmup_cycles": 200,
    }
    spec = JobSpec.from_dict(spec_dict)
    golden = BenchmarkRunner(
        SweepConfig(n_cycles=spec.n_cycles, warmup_cycles=spec.warmup_cycles)
    ).sweep(controller_factory(spec), benchmarks=list(spec.benchmarks))
    golden_fp = fingerprint(golden)

    with tempfile.TemporaryDirectory(prefix="verify-serve-") as tmp:
        with chaos_mod.ServeHarness(
            pathlib.Path(tmp) / "serve", max_running=1
        ) as server:
            status, _, record = server.request("POST", "/jobs", spec_dict)
            if status != 201:
                raise SystemExit(f"serve submission failed: {status} {record}")
            job_id = record["job_id"]
            sock = server.sse_socket(job_id)
            try:
                sock.settimeout(120.0)
                stream = b""
                while b"event: end" not in stream:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    stream += chunk
            finally:
                sock.close()
            cells = stream.count(b"event: cell")
            status, _, result = server.request("GET", f"/jobs/{job_id}/result")
            if status != 200:
                raise SystemExit(f"serve result fetch failed: {status}")
            served_fp = json.dumps(result["result"]["summary"], sort_keys=True)
        drain_code = server.terminate()
    match = served_fp == golden_fp
    print(f"byte-identical aggregates: {match}  SSE cell events: {cells}  "
          f"drain exit: {drain_code}")
    if not match:
        raise SystemExit("served aggregates diverged from the direct run")
    if cells != len(TRIO):
        raise SystemExit(f"SSE streamed {cells} cell events, expected {len(TRIO)}")
    if drain_code != 0:
        raise SystemExit(f"idle drain exited {drain_code}, expected 0")


def hook_chaos():
    """The chaos harness (quick): disturbed sweeps converge on --resume."""
    chaos_tool = pathlib.Path(__file__).with_name("chaos.py")
    status = subprocess.run([sys.executable, str(chaos_tool), "--quick"]).returncode
    if status != 0:
        raise SystemExit("chaos harness found a crash-safety violation")


#: Execution order matters only for readability of the output: cheap
#: equivalence hooks first, the heavyweight grid and chaos passes last.
HOOKS = {
    "kernel": hook_kernel,
    "replay": hook_replay,
    "parallel": hook_parallel,
    "dist": hook_dist,
    "serve": hook_serve,
    "faults": hook_faults,
    "grid": hook_grid,
    "chaos": hook_chaos,
}


def select_hooks(only=None):
    """The (name, hook) pairs a ``--only`` selection resolves to.

    Preserves suite order whatever order the selectors were given in;
    unknown names raise ``ValueError`` naming the valid choices.
    """
    if not only:
        return list(HOOKS.items())
    unknown = sorted(set(only) - set(HOOKS))
    if unknown:
        raise ValueError(
            f"unknown hook(s) {unknown}; choose from {sorted(HOOKS)}"
        )
    wanted = set(only)
    return [(name, hook) for name, hook in HOOKS.items() if name in wanted]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the full verification suite, or selected hooks."
    )
    parser.add_argument(
        "--list", action="store_true",
        help="print the hook names and exit",
    )
    parser.add_argument(
        "--only", action="append", metavar="HOOK",
        help="run only this hook (repeatable; default: all)",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name, hook in HOOKS.items():
            summary = (hook.__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {summary}")
        return 0
    try:
        selected = select_hooks(args.only)
    except ValueError as error:
        parser.error(str(error))

    failed = []
    for name, hook in selected:
        print(f"\n--- {name}: {(hook.__doc__ or '').strip().splitlines()[0]} ---")
        t0 = time.time()
        try:
            hook()
        except SystemExit as stop:
            print(f"FAILED: {stop}")
            failed.append(name)
        print(f"({time.time() - t0:.0f}s)")
    if failed:
        print(f"\n{len(failed)} hook(s) failed: {failed}")
        return 1
    print(f"\nall {len(selected)} hook(s) passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
