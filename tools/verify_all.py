"""Full verification: all 26 apps, base + tuned, 60k cycles."""
import time
from repro.config import TABLE1_SUPPLY, TABLE1_PROCESSOR, TABLE1_TUNING
from repro.core import ResonanceTuningController
from repro.sim import BenchmarkRunner, SweepConfig
from repro.uarch import SPEC2K, PAPER_IPC, VIOLATING_NAMES

def factory(supply, proc):
    return ResonanceTuningController(supply, proc, TABLE1_TUNING)

runner = BenchmarkRunner(SweepConfig(n_cycles=60000))
t0 = time.time()
bad = []
for name in sorted(SPEC2K):
    base = runner.run_base(name)
    m = runner.compare(name, factory)
    is_viol = name in VIOLATING_NAMES
    ok_base = (base.violation_fraction > 1e-4) == is_viol
    ok_tuned = m.violation_fraction <= 2e-5
    flag = "" if (ok_base and ok_tuned) else "  <-- PROBLEM"
    if flag: bad.append(name)
    print(f"{name:9s} IPC={base.ipc:4.2f}/{PAPER_IPC[name]:4.2f} baseViol={base.violation_fraction:.2e} "
          f"tunedViol={m.violation_fraction:.2e} slow={m.slowdown:.3f} ED={m.energy_delay:.3f} "
          f"L1={m.first_level_fraction:.3f} L2={m.second_level_fraction:.4f}{flag}")
print(f"\n{len(bad)} problems: {bad}  ({time.time()-t0:.0f}s)")

print("\n--- fault-injection campaign (quick) ---")
t1 = time.time()
from repro.experiments.faults import run as run_fault_injection
fault_result = run_fault_injection(
    n_cycles=6000, benchmarks=("swim",), intensities=(0.3,)
)
print(fault_result.render())
print(f"({time.time()-t1:.0f}s)")

print("\n--- kernel equivalence (vectorized fast path vs REPRO_KERNEL=0) ---")
tk = time.time()
import dataclasses, json, os
from repro.sim import ResilienceConfig
TRIO = ("swim", "parser", "gzip")
def fingerprint(summary):
    return json.dumps(dataclasses.asdict(summary), sort_keys=True)
from repro.core import kernel as core_kernel
assert core_kernel.kernel_enabled(), "verify_all must run with the kernel on"
kernel_sweep = BenchmarkRunner(SweepConfig(n_cycles=6000)).sweep(
    factory, benchmarks=TRIO
)
os.environ[core_kernel.KERNEL_ENV] = "0"
try:
    scalar_sweep = BenchmarkRunner(SweepConfig(n_cycles=6000)).sweep(
        factory, benchmarks=TRIO
    )
finally:
    os.environ.pop(core_kernel.KERNEL_ENV, None)
kernel_match = fingerprint(kernel_sweep) == fingerprint(scalar_sweep)
print(f"byte-identical aggregates: {kernel_match}  ({time.time()-tk:.0f}s)")
if not kernel_match:
    raise SystemExit("vectorized kernel diverged from the scalar cycle loop")

print("\n--- replay equivalence (trace store cold+warm vs full simulation) ---")
tr = time.time()
import tempfile
plain_sweep = BenchmarkRunner(SweepConfig(n_cycles=6000)).sweep(
    factory, benchmarks=TRIO
)
with tempfile.TemporaryDirectory() as store_dir:
    store_resilience = ResilienceConfig(trace_store_path=store_dir)
    cold_sweep = BenchmarkRunner(SweepConfig(n_cycles=6000)).sweep(
        factory, benchmarks=TRIO, resilience=store_resilience
    )
    warm_sweep = BenchmarkRunner(SweepConfig(n_cycles=6000)).sweep(
        factory, benchmarks=TRIO, resilience=store_resilience
    )
replay_match = (
    fingerprint(plain_sweep) == fingerprint(cold_sweep) == fingerprint(warm_sweep)
)
warm_hits = warm_sweep.timings.get("trace_hits", 0.0)
print(f"byte-identical aggregates: {replay_match}  "
      f"warm replay hits: {warm_hits:.0f}  ({time.time()-tr:.0f}s)")
if not replay_match:
    raise SystemExit("trace replay diverged from the full simulation")
if not warm_hits:
    raise SystemExit("warm trace store produced no replay hits")

print("\n--- parallel backend equivalence (workers=2 vs 1) ---")
t2 = time.time()
sequential = BenchmarkRunner(SweepConfig(n_cycles=6000)).sweep(factory, benchmarks=TRIO)
with BenchmarkRunner(SweepConfig(n_cycles=6000)) as parallel_runner:
    parallel = parallel_runner.sweep(
        factory, benchmarks=TRIO, resilience=ResilienceConfig(workers=2)
    )
match = fingerprint(sequential) == fingerprint(parallel)
print(f"byte-identical aggregates: {match}  ({time.time()-t2:.0f}s)")
if not match:
    raise SystemExit("parallel backend diverged from sequential results")

print("\n--- distributed backend equivalence (dist vs sequential) ---")
t2b = time.time()
# The dist workers are fresh interpreters, so the factory must pickle by
# reference to an importable module -- chaos.py's, not this script's
# __main__ (tools/ is sys.path[0] when this runs as a script).
import chaos as chaos_mod
dist_sequential = BenchmarkRunner(SweepConfig(n_cycles=6000)).sweep(
    chaos_mod.tuning_factory, benchmarks=TRIO
)
with BenchmarkRunner(SweepConfig(n_cycles=6000)) as dist_runner:
    dist = dist_runner.sweep(
        chaos_mod.tuning_factory, benchmarks=TRIO,
        resilience=ResilienceConfig(workers=2, backend="dist"),
    )
dist_match = fingerprint(dist_sequential) == fingerprint(dist)
print(f"byte-identical aggregates: {dist_match}  ({time.time()-t2b:.0f}s)")
if not dist_match:
    raise SystemExit("distributed backend diverged from sequential results")

print("\n--- chaos harness (quick): disturbed sweeps converge on --resume ---")
t3 = time.time()
import pathlib, subprocess, sys
chaos_tool = pathlib.Path(__file__).with_name("chaos.py")
status = subprocess.run([sys.executable, str(chaos_tool), "--quick"]).returncode
if status != 0:
    raise SystemExit("chaos harness found a crash-safety violation")
print(f"({time.time()-t3:.0f}s)")
