"""Render the HTML ops report from a sweep's observability artifacts.

Thin wrapper over :mod:`repro.obs.report` (also exposed as
``repro obs report``) for CI and operators who work from a checkout
without installing the package.

Usage::

    PYTHONPATH=src python tools/obs_report.py --trace trace.json \
        --metrics metrics.json --profile profile.json --out report.html
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.obs.report import main  # noqa: E402  (path bootstrap)

if __name__ == "__main__":
    raise SystemExit(main())
