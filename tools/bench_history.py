"""Bench-trajectory ledger: append CI runs, flag trend regressions.

``tools/bench_gate.py`` compares one run against one committed baseline
-- good at catching a single large regression, blind to a slow drift
where every run is "within tolerance" of a baseline that nobody
refreshes.  This tool closes that gap: every CI bench run is appended to
a committed JSONL ledger under ``benchmarks/history/``, and each new
entry is checked against the *median* of the recent window, so N small
regressions that individually pass the gate still trip the trend check
once they compound.

One ledger file per artifact (``benchmarks/history/BENCH_sweep.jsonl``),
one JSON object per line::

    {"commit": "abc1234", "recorded_unix": 1754650000,
     "backends": {"sequential": 3.9, "pool": 2.8}}

Usage::

    python tools/bench_history.py append BENCH_sweep.json \
        [--ledger-dir benchmarks/history] [--commit SHA]
    python tools/bench_history.py check BENCH_sweep.json \
        [--window 8] [--tolerance 0.25]

``append`` records unconditionally (the ledger is a measurement log, not
a gate).  ``check`` exits 1 when any backend's throughput falls more
than ``tolerance`` below the median of up to ``window`` prior entries;
with fewer than 2 prior entries it passes (no trend to judge yet).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import subprocess
import sys
import time

DEFAULT_LEDGER_DIR = (
    pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "history"
)

#: Fewer prior entries than this and ``check`` passes trivially -- one
#: point is noise, not a trend.
MIN_PRIOR_ENTRIES = 2


def _detect_commit() -> str:
    env = os.environ.get("GITHUB_SHA")
    if env:
        return env[:12]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=pathlib.Path(__file__).resolve().parent,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _rates(report: dict) -> dict:
    """Backend label -> cells/s, dropping non-positive junk legs."""
    rates = {}
    for label, entry in report.get("backends", {}).items():
        rate = entry.get("cells_per_s")
        if isinstance(rate, (int, float)) and rate > 0:
            rates[label] = float(rate)
    return rates


def ledger_path(report_path: str, ledger_dir: str) -> pathlib.Path:
    stem = pathlib.Path(report_path).stem
    return pathlib.Path(ledger_dir) / f"{stem}.jsonl"


def load_ledger(path: pathlib.Path) -> list:
    entries = []
    if not path.exists():
        return entries
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # a torn line must not invalidate the ledger
            if isinstance(entry, dict) and isinstance(
                entry.get("backends"), dict
            ):
                entries.append(entry)
    return entries


def append_entry(
    report_path: str,
    ledger_dir: str,
    commit: str,
    recorded_unix: int,
) -> dict:
    report = json.loads(pathlib.Path(report_path).read_text())
    rates = _rates(report)
    if not rates:
        raise ValueError(
            f"{report_path} has no positive-throughput backend legs;"
            " refusing to record an empty measurement"
        )
    entry = {
        "commit": commit,
        "recorded_unix": recorded_unix,
        "backends": rates,
    }
    path = ledger_path(report_path, ledger_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def check_trend(
    report_path: str,
    ledger_dir: str,
    window: int,
    tolerance: float,
) -> list:
    """Problem strings; empty means the trend check passed."""
    report = json.loads(pathlib.Path(report_path).read_text())
    rates = _rates(report)
    entries = load_ledger(ledger_path(report_path, ledger_dir))
    if len(entries) < MIN_PRIOR_ENTRIES:
        print(
            f"trend check skipped: {len(entries)} prior entr"
            f"{'y' if len(entries) == 1 else 'ies'}"
            f" (< {MIN_PRIOR_ENTRIES})"
        )
        return []
    recent = entries[-window:]
    floor_ratio = 1.0 - tolerance
    problems = []
    print(f"{'backend':14s} {'median':>12s} {'current':>12s} {'ratio':>7s}"
          f"  (window {len(recent)})")
    for label, current in sorted(rates.items()):
        history = [
            e["backends"][label] for e in recent
            if isinstance(e["backends"].get(label), (int, float))
            and e["backends"][label] > 0
        ]
        if len(history) < MIN_PRIOR_ENTRIES:
            print(f"{label:14s} {'-':>12s} {current:9.1f}c/s"
                  f"   new backend, no trend")
            continue
        median = statistics.median(history)
        ratio = current / median
        print(f"{label:14s} {median:9.1f}c/s {current:9.1f}c/s"
              f" {ratio:6.2f}x")
        if ratio < floor_ratio:
            problems.append(
                f"{label}: {current:.1f} cells/s is"
                f" {(1 - ratio) * 100:.0f}% below the trailing median"
                f" {median:.1f} (tolerance {tolerance * 100:.0f}%)"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="action", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("report", help="benchmark artifact (BENCH_*.json)")
    common.add_argument("--ledger-dir", default=str(DEFAULT_LEDGER_DIR),
                        help="ledger directory (default benchmarks/history)")

    append_cmd = sub.add_parser(
        "append", parents=[common],
        help="record this run in the ledger",
    )
    append_cmd.add_argument("--commit", default=None,
                            help="commit id (default: GITHUB_SHA or git)")
    append_cmd.add_argument("--recorded-unix", type=int, default=None,
                            help="override the timestamp (tests)")

    check_cmd = sub.add_parser(
        "check", parents=[common],
        help="fail when throughput trends below the recent median",
    )
    check_cmd.add_argument("--window", type=int, default=8,
                           help="prior entries to consider (default 8)")
    check_cmd.add_argument("--tolerance", type=float, default=0.25,
                           help="allowed drop below the median (default 0.25)")

    args = parser.parse_args(argv)

    if args.action == "append":
        try:
            entry = append_entry(
                args.report,
                args.ledger_dir,
                commit=args.commit or _detect_commit(),
                recorded_unix=(
                    int(time.time()) if args.recorded_unix is None
                    else args.recorded_unix
                ),
            )
        except (OSError, ValueError) as error:
            print(f"cannot record bench entry: {error}", file=sys.stderr)
            return 2
        path = ledger_path(args.report, args.ledger_dir)
        print(f"recorded {entry['commit']} -> {path}"
              f" ({len(entry['backends'])} backend(s))")
        return 0

    try:
        problems = check_trend(
            args.report, args.ledger_dir,
            window=args.window, tolerance=args.tolerance,
        )
    except (OSError, ValueError) as error:
        print(f"cannot check bench trend: {error}", file=sys.stderr)
        return 2
    if problems:
        print("\nBENCH TREND CHECK FAILED")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("\nbench trend check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
