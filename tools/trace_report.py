"""Summarize a sweep trace written by ``--trace-out``.

Reads a merged Chrome trace-event JSON (the file Perfetto opens) and
prints the phase breakdown, the slowest cells, retry hotspots and the
supervision incidents, so the common questions -- "where did the time
go?", "which cell dragged?", "did anything get killed?" -- have a
terminal answer before anyone reaches for the trace viewer.

Usage::

    PYTHONPATH=src python tools/trace_report.py trace.json
    PYTHONPATH=src python tools/trace_report.py trace.json --top 5
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
from collections import Counter

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.obs.trace import (  # noqa: E402  (path bootstrap)
    load_trace_events,
    merge_shards,
    shard_dir_for,
)

#: Span names emitted by the sweep's phase instrumentation, in report order.
PHASES = ("setup", "execute", "checkpoint_io", "aggregate")


def _spans(events, name=None, cat=None):
    for event in events:
        if event.get("ph") != "X":
            continue
        if name is not None and event.get("name") != name:
            continue
        if cat is not None and event.get("cat") != cat:
            continue
        yield event


def _instants(events, name=None):
    for event in events:
        if event.get("ph") != "i":
            continue
        if name is not None and event.get("name") != name:
            continue
        yield event


def phase_breakdown(events):
    """Total wall-clock per sweep phase, in milliseconds."""
    totals = {}
    for phase in PHASES:
        duration_us = sum(e.get("dur", 0.0) for e in _spans(events, phase))
        count = sum(1 for _ in _spans(events, phase))
        if count:
            totals[phase] = (duration_us / 1000.0, count)
    return totals


def slowest_cells(events, top):
    """The ``top`` longest cell spans as (ms, name, args) tuples."""
    cells = [e for e in _spans(events, cat="cell")]
    cells.sort(key=lambda e: e.get("dur", 0.0), reverse=True)
    return [
        (e.get("dur", 0.0) / 1000.0, e.get("name", "?"), e.get("args", {}))
        for e in cells[:top]
    ]


def retry_hotspots(events):
    """Retry counts per (benchmark, technique), most-retried first."""
    counts = Counter()
    for event in _instants(events, "retry"):
        args = event.get("args", {})
        counts[(args.get("benchmark", "?"), args.get("technique", "?"))] += 1
    return counts.most_common()


def supervision_events(events):
    """Counts of each supervision instant (kills, rebuilds, trips, drains)."""
    counts = Counter()
    for event in _instants(events):
        if event.get("cat") == "supervision":
            counts[event.get("name", "?")] += 1
    return dict(sorted(counts.items()))


def worker_pids(events):
    """Distinct PIDs that emitted events (parent + pool workers)."""
    return sorted({e["pid"] for e in events if "pid" in e})


def render_report(events, top=10):
    lines = []
    lines.append(f"events     : {len(events)}")
    lines.append(f"processes  : {len(worker_pids(events))}"
                 f" (pids {', '.join(map(str, worker_pids(events)))})")
    breakdown = phase_breakdown(events)
    if breakdown:
        lines.append("")
        lines.append("phase breakdown")
        for phase, (ms, count) in breakdown.items():
            lines.append(f"  {phase:14s} {ms:10.2f} ms  ({count} span(s))")
    cells = slowest_cells(events, top)
    if cells:
        lines.append("")
        lines.append(f"slowest cells (top {len(cells)})")
        for ms, name, args in cells:
            seed = args.get("seed")
            suffix = f" seed={seed}" if seed is not None else ""
            lines.append(
                f"  {ms:10.2f} ms  {name}"
                f"  [{args.get('technique', '?')}{suffix}"
                f" attempts={args.get('attempts', '?')}"
                f" outcome={args.get('outcome', '?')}]"
            )
    retries = retry_hotspots(events)
    if retries:
        lines.append("")
        lines.append("retry hotspots")
        for (benchmark, technique), count in retries:
            lines.append(f"  {count:4d}  {benchmark} / {technique}")
    supervision = supervision_events(events)
    if supervision:
        lines.append("")
        lines.append("supervision events")
        for name, count in supervision.items():
            lines.append(f"  {count:4d}  {name}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Summarize a --trace-out sweep trace."
    )
    parser.add_argument(
        "trace",
        help="merged Chrome trace JSON, or a .shards directory of an"
             " unfinalized run",
    )
    parser.add_argument(
        "--top", type=int, default=10, help="slowest cells to list"
    )
    args = parser.parse_args(argv)
    # A shard directory -- passed explicitly, or implied by a trace file
    # that was never exported -- is a normal mid-run state, not an error:
    # report what the shards hold, or say plainly that nothing was
    # recorded yet.
    shard_source = None
    if os.path.isdir(args.trace) or args.trace.endswith(".shards"):
        shard_source = args.trace
    elif not os.path.exists(args.trace) and os.path.isdir(
        shard_dir_for(args.trace)
    ):
        shard_source = shard_dir_for(args.trace)
    if shard_source is not None:
        events = merge_shards(shard_source)
        if not events:
            print(f"no spans recorded in {shard_source!r}")
            return 0
    else:
        try:
            events = load_trace_events(args.trace)
        except (OSError, ValueError) as error:
            print(
                f"cannot read trace {args.trace!r}: {error}", file=sys.stderr
            )
            return 2
        if not events:
            print(f"trace {args.trace!r} holds no events", file=sys.stderr)
            return 1
    try:
        print(render_report(events, top=args.top))
    except BrokenPipeError:  # |head closed the pipe; not an error
        sys.stderr.close()  # suppress the shutdown-time EPIPE warning
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
