"""Golden-trace conformance checker for the optimized hot paths.

Fingerprints the pinned workload x config cells (``repro.oracles.golden``)
and compares them against the committed goldens in
``tests/goldens/goldens.json``.

Usage::

    PYTHONPATH=src python tools/conformance.py                 # check
    PYTHONPATH=src python tools/conformance.py --workers 2     # parallel check
    PYTHONPATH=src python tools/conformance.py --list          # show cells
    PYTHONPATH=src python tools/conformance.py --regen \\
        --reason "detector threshold recalibrated in PR N"     # regenerate

Checking exits non-zero on any divergence and prints a per-field diff.
Regeneration *refuses to run* without ``--reason`` explaining the diff --
goldens pin simulator semantics, so an unexplained regen is exactly the
silent drift this gate exists to catch.  CI runs the check sequentially
and with ``--workers 2`` on Python 3.10 and 3.12; all four must agree
byte-for-byte.  See docs/testing.md.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.oracles import (  # noqa: E402  (path bootstrap above)
    GOLDEN_CELLS,
    compute_goldens,
    default_goldens_path,
    diff_goldens,
    load_goldens,
    render_goldens,
)

#: Shorter explanations than this are not explanations.
_MIN_REASON_CHARS = 10


def _check(path: pathlib.Path, workers: int) -> int:
    try:
        committed = load_goldens(path)
    except FileNotFoundError:
        print(f"no goldens at {path}; generate them with --regen --reason '...'")
        return 1
    computed = compute_goldens(workers=workers)
    differences = diff_goldens(committed["cells"], computed)
    backend = "sequential" if workers <= 1 else f"--workers {workers}"
    if differences:
        print(f"golden conformance FAILED ({backend}, {len(differences)} diffs):")
        for line in differences:
            print(f"  {line}")
        print(
            "\nIf this change is intentional, regenerate with:\n"
            "  PYTHONPATH=src python tools/conformance.py --regen "
            "--reason 'why the streams changed'"
        )
        return 1
    print(f"golden conformance OK ({backend}, {len(computed)} cells, {path})")
    return 0


def _regen(path: pathlib.Path, workers: int, reason: "str | None") -> int:
    if not reason or len(reason.strip()) < _MIN_REASON_CHARS:
        print(
            "refusing to regenerate goldens without --reason (>= "
            f"{_MIN_REASON_CHARS} chars) explaining the diff; goldens pin "
            "simulator semantics and an unexplained change defeats the gate"
        )
        return 1
    computed = compute_goldens(workers=workers)
    try:
        old_cells = load_goldens(path)["cells"]
    except FileNotFoundError:
        old_cells = {}
    differences = diff_goldens(old_cells, computed)
    if not differences and old_cells:
        print("goldens already match the current simulator; nothing to do")
        return 0
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_goldens(computed, reason.strip()), encoding="ascii")
    print(f"wrote {len(computed)} cells to {path}")
    for line in differences:
        print(f"  {line}")
    return 0


def _list_cells() -> int:
    for cell in GOLDEN_CELLS:
        print(
            f"{cell.key:16s} n_cycles={cell.n_cycles} "
            f"warmup={cell.warmup_cycles}"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--regen", action="store_true",
        help="regenerate goldens (requires --reason)",
    )
    parser.add_argument(
        "--reason", default=None,
        help="explanation for the golden diff (required with --regen)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_cells",
        help="list the pinned cells and exit",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="compute cells with a process pool (default: sequential)",
    )
    parser.add_argument(
        "--path", type=pathlib.Path, default=None,
        help="golden file (default: tests/goldens/goldens.json)",
    )
    args = parser.parse_args(argv)
    path = args.path or default_goldens_path()
    if args.list_cells:
        return _list_cells()
    if args.regen:
        return _regen(path, args.workers, args.reason)
    return _check(path, args.workers)


if __name__ == "__main__":
    raise SystemExit(main())
