"""Tuning probe: measure emergent IPC, current stats, oscillation period and
violation fraction for each workload profile."""
import sys, time
import numpy as np
from repro.config import TABLE1_SUPPLY, TABLE1_PROCESSOR
from repro.power import PowerSupply, RLCAnalysis
from repro.uarch import Processor, SPEC2K, PAPER_IPC, VIOLATING_NAMES

N_CYCLES = int(sys.argv[2]) if len(sys.argv) > 2 else 30000
names = sys.argv[1].split(",") if len(sys.argv) > 1 and sys.argv[1] != "all" else list(SPEC2K)

def dominant_period(currents):
    c = np.asarray(currents) - np.mean(currents)
    spec = np.abs(np.fft.rfft(c * np.hanning(len(c))))
    freqs = np.fft.rfftfreq(len(c), d=1.0)
    i = np.argmax(spec[1:]) + 1
    return 1.0 / freqs[i]

analysis = RLCAnalysis(TABLE1_SUPPLY)
band = analysis.band
print(f"band {band.min_period_cycles}-{band.max_period_cycles} cycles; {N_CYCLES} cycles each")
print(f"{'name':9s} {'IPC':>5s} {'tgt':>5s} {'Imin':>6s} {'Imax':>6s} {'swing':>6s} {'period':>7s} {'violfrac':>9s} {'paper?':>7s}")
for name in names:
    t0 = time.time()
    prof = SPEC2K[name]
    proc = Processor.from_profile(prof, n_instructions=max(10000, int(N_CYCLES*4.5)),
                                  config=TABLE1_PROCESSOR, supply_config=TABLE1_SUPPLY)
    supply = PowerSupply(TABLE1_SUPPLY, initial_current=TABLE1_PROCESSOR.min_current_amps)
    currents = []
    warm = 2000
    for i in range(N_CYCLES):
        s = proc.step()
        supply.step(s.current_amps)
        if i >= warm: currents.append(s.current_amps)
    c = np.asarray(currents)
    lo, hi = np.percentile(c, 2), np.percentile(c, 98)
    per = dominant_period(c)
    vf = supply.violation_cycles / N_CYCLES
    flag = "VIOL" if name in VIOLATING_NAMES else "ok"
    inband = "*" if band.min_period_cycles <= per <= band.max_period_cycles else " "
    print(f"{name:9s} {proc.ipc:5.2f} {PAPER_IPC[name]:5.2f} {lo:6.1f} {hi:6.1f} {hi-lo:6.1f} {per:6.1f}{inband} {vf:9.2e} {flag:>7s}  ({time.time()-t0:.1f}s)")
