"""repro: reproduction of "Exploiting Resonant Behavior to Reduce Inductive
Noise" (Powell & Vijaykumar, ISCA 2004).

The package builds, from scratch, everything the paper's evaluation needs:

* :mod:`repro.power` -- the second-order RLC power-distribution model,
  Heun-formula simulation, and the Section 2.1.3 calibration procedure.
* :mod:`repro.uarch` -- an 8-wide out-of-order processor simulator with a
  Wattch-like activity-based power model and synthetic SPEC2K-like workloads.
* :mod:`repro.core` -- the paper's contribution: current sensing, resonant
  event detection over the whole resonance band, and the two-tier resonance
  tuning controller.
* :mod:`repro.baselines` -- the compared techniques: the voltage-threshold
  control of Joseph et al. (ref [10]) and pipeline damping (ref [14]).
* :mod:`repro.sim` -- the cycle loop wiring processor, supply and controller,
  plus metrics and batch sweeps.
* :mod:`repro.experiments` -- one module per paper table/figure.
"""

from repro.config import (
    PowerSupplyConfig,
    ProcessorConfig,
    TuningConfig,
    TABLE1_PROCESSOR,
    TABLE1_SUPPLY,
    TABLE1_TUNING,
    SECTION2_SUPPLY,
)
from repro.errors import (
    CalibrationError,
    CircuitError,
    ConfigurationError,
    FaultError,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.version import __version__

__all__ = [
    "PowerSupplyConfig",
    "ProcessorConfig",
    "TuningConfig",
    "TABLE1_PROCESSOR",
    "TABLE1_SUPPLY",
    "TABLE1_TUNING",
    "SECTION2_SUPPLY",
    "CalibrationError",
    "CircuitError",
    "ConfigurationError",
    "FaultError",
    "ReproError",
    "SimulationError",
    "TraceError",
    "__version__",
]
