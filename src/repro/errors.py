"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class CircuitError(ReproError):
    """A power-supply circuit is physically invalid for the requested analysis."""


class CalibrationError(ReproError):
    """A calibration search failed to converge or was given impossible bounds."""


class TraceError(ReproError):
    """A synthetic instruction trace is malformed or exhausted unexpectedly."""


class SimulationError(ReproError):
    """The cycle-level simulation reached an inconsistent state."""
