"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class CircuitError(ReproError):
    """A power-supply circuit is physically invalid for the requested analysis."""


class CalibrationError(ReproError):
    """A calibration search failed to converge or was given impossible bounds."""


class TraceError(ReproError):
    """A synthetic instruction trace is malformed or exhausted unexpectedly."""


class SimulationError(ReproError):
    """The cycle-level simulation reached an inconsistent state."""


class FaultError(ReproError):
    """An injected or detected fault made a run unusable.

    Raised by the fault-injection subsystem (:mod:`repro.faults`) when an
    injected fault is configured to abort the run, by the power models when
    a non-finite current or voltage would otherwise propagate garbage into
    the metrics, and by the resilient runner when a sweep cell exhausts its
    wall-clock timeout or retry budget.  Catching :class:`FaultError`
    separates "this run was (deliberately or accidentally) broken" from
    genuine modelling bugs (:class:`SimulationError`) and bad inputs
    (:class:`ConfigurationError`).
    """


class HarnessError(ReproError):
    """The experiment harness itself (not a simulated run) failed.

    Separates supervision-layer problems -- a closed runner asked to sweep,
    a worker pool that cannot be rebuilt, an unusable checkpoint -- from
    modelling errors: a :class:`HarnessError` means the *infrastructure*
    needs attention, never the physics.
    """


class ResilienceConfigError(ConfigurationError, HarnessError):
    """A :class:`~repro.sim.runner.ResilienceConfig` knob is out of range.

    Raised at *construction* so a bad timeout, backoff, worker count or
    lease setting fails immediately with a clear message instead of
    failing (or silently misbehaving) mid-sweep.  Subclasses both
    :class:`ConfigurationError` (it is a bad configuration) and
    :class:`HarnessError` (it concerns the harness, not the physics), so
    either family of handler catches it.
    """


class TraceStoreError(HarnessError):
    """The trace record/replay store was used incorrectly.

    Raised only for programmatic misuse (storing an unvalidated capture,
    invalid store construction).  *Corruption* of store entries is never
    an error: the guard rejects the entry, quarantines the file, records
    an incident and the caller falls back to full simulation.
    """


class DistributedError(HarnessError):
    """The distributed sweep backend's scheduler or transport failed.

    Covers protocol violations (oversized or malformed frames), a
    scheduler socket that cannot be bound, and worker launches that fail
    outright.  Recoverable conditions -- a worker crashing mid-cell, an
    expired lease, a partitioned connection -- are *not* errors: the
    scheduler requeues and records an incident instead.
    """


class CheckpointError(HarnessError):
    """A sweep checkpoint file is missing, corrupt, or unusable.

    Carries the offending ``path`` and an actionable ``hint`` (usually
    ``--resume``-oriented: delete the file, drop the flag, or point at the
    quarantined copy) so CLI users see a recovery path instead of a raw
    ``JSONDecodeError`` traceback.
    """

    def __init__(self, path: str, reason: str, hint: str = ""):
        self.path = path
        self.reason = reason
        self.hint = hint
        message = f"checkpoint {path!r}: {reason}"
        if hint:
            message = f"{message} ({hint})"
        super().__init__(message)


class WorkerLostError(HarnessError):
    """A sweep worker process died or stalled past the heartbeat threshold.

    Used as the ``error_type`` of :class:`~repro.sim.runner.FailureReport`
    entries for cells whose worker-restart budget ran out, and raised
    directly when the pool cannot be rebuilt at all.
    """


class ServeError(HarnessError):
    """The sweep-serving tier (:mod:`repro.serve`) failed as infrastructure.

    Covers conditions that make the *service* unusable -- an unbindable
    listen address, an unusable data directory -- never individual job
    failures, which are recorded on the job itself and reported over HTTP.
    """


class JobSpecError(ConfigurationError, HarnessError):
    """A submitted sweep-job specification is invalid.

    Raised while admitting a job (unknown technique, bad grid, out-of-range
    budget) so the HTTP layer can map it to a 400 with the offending field
    named, before anything is queued or persisted.  Subclasses both
    :class:`ConfigurationError` and :class:`HarnessError` for the same
    reason :class:`ResilienceConfigError` does.
    """


class JobStateError(ServeError):
    """A job operation is invalid for the job's current lifecycle state.

    For example fetching the result of a job that is still running, or
    cancelling one that already reached a terminal state.  The HTTP layer
    maps it to a 409.
    """


class SweepInterrupted(HarnessError):
    """A sweep drained gracefully after SIGTERM/SIGINT.

    Completed cells are flushed to the checkpoint before this is raised,
    so the run is *resumable*: the CLI exits with :attr:`exit_code`
    (``EX_TEMPFAIL``) rather than a crash, and ``--resume`` finishes the
    remaining cells.
    """

    #: BSD sysexits EX_TEMPFAIL: "temporary failure, retry later".
    exit_code = 75

    def __init__(self, message: str, signum: int = 0,
                 completed: int = 0, pending: int = 0):
        self.signum = signum
        self.completed = completed
        self.pending = pending
        super().__init__(message)
