"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class CircuitError(ReproError):
    """A power-supply circuit is physically invalid for the requested analysis."""


class CalibrationError(ReproError):
    """A calibration search failed to converge or was given impossible bounds."""


class TraceError(ReproError):
    """A synthetic instruction trace is malformed or exhausted unexpectedly."""


class SimulationError(ReproError):
    """The cycle-level simulation reached an inconsistent state."""


class FaultError(ReproError):
    """An injected or detected fault made a run unusable.

    Raised by the fault-injection subsystem (:mod:`repro.faults`) when an
    injected fault is configured to abort the run, by the power models when
    a non-finite current or voltage would otherwise propagate garbage into
    the metrics, and by the resilient runner when a sweep cell exhausts its
    wall-clock timeout or retry budget.  Catching :class:`FaultError`
    separates "this run was (deliberately or accidentally) broken" from
    genuine modelling bugs (:class:`SimulationError`) and bad inputs
    (:class:`ConfigurationError`).
    """
