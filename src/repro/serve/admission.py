"""Admission control: decide, deterministically, whether a job gets in.

Admission is pure bookkeeping over the current queue/running population --
no clocks, no randomness -- so the same service state always produces the
same verdict and the same ``Retry-After``.  That determinism is load-bearing:
the chaos harness's overflow-storm scenario asserts the rejection pattern
exactly, and clients can trust the hint instead of inventing their own
backoff jitter on top.

Three independent gates, checked in order:

1. **Queue bound** -- at most ``max_queued`` jobs waiting.  The queue is
   the service's only elastic buffer; beyond it, shedding beats buffering
   (an unbounded queue converts overload into memory growth plus
   unbounded latency, the classic failure the paper's "millions of queued
   cells" framing warns about).
2. **Tenant job budget** -- at most ``tenant_max_active`` queued+running
   jobs per tenant, so one noisy tenant cannot occupy the whole queue.
3. **Tenant cell budget** -- at most ``tenant_max_cells`` *cells* across
   a tenant's queued+running jobs; jobs are cheap, grids are not, and the
   cell count is the real cost proxy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError

__all__ = ["AdmissionPolicy", "AdmissionDecision"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Verdict for one submission attempt."""

    admitted: bool
    #: machine-readable rejection reason ("queue_full" /
    #: "tenant_jobs_exhausted" / "tenant_cells_exhausted"); None if admitted
    reason: Optional[str] = None
    #: deterministic client back-off hint, whole seconds >= 1
    retry_after_s: Optional[int] = None


@dataclass(frozen=True)
class AdmissionPolicy:
    """The service's admission limits (all enforced per decision)."""

    #: jobs allowed to wait in the queue (running jobs excluded)
    max_queued: int = 16
    #: queued+running jobs one tenant may hold
    tenant_max_active: int = 4
    #: cells across one tenant's queued+running jobs
    tenant_max_cells: int = 512
    #: base of the Retry-After computation, seconds
    retry_after_base_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_queued < 1:
            raise ConfigurationError(
                f"max_queued must be >= 1, got {self.max_queued!r}"
            )
        if self.tenant_max_active < 1:
            raise ConfigurationError(
                f"tenant_max_active must be >= 1,"
                f" got {self.tenant_max_active!r}"
            )
        if self.tenant_max_cells < 1:
            raise ConfigurationError(
                f"tenant_max_cells must be >= 1,"
                f" got {self.tenant_max_cells!r}"
            )
        if self.retry_after_base_s <= 0:
            raise ConfigurationError(
                f"retry_after_base_s must be positive,"
                f" got {self.retry_after_base_s!r}"
            )

    # ------------------------------------------------------------------
    def retry_after(self, queued: int, running: int) -> int:
        """Deterministic back-off hint for a shed submission.

        A pure function of the congestion actually observed -- the more
        work ahead of the client, the longer the hint -- rounded up to
        whole seconds (RFC 9110 allows only integers) and never below 1.
        """
        backlog = max(0, queued) + max(0, running)
        return max(1, math.ceil(self.retry_after_base_s * (backlog + 1)))

    def decide(
        self,
        tenant: str,
        n_cells: int,
        queued: int,
        running: int,
        tenant_active: Dict[str, int],
        tenant_cells: Dict[str, int],
    ) -> AdmissionDecision:
        """Admit or shed one submission against the current population.

        ``queued``/``running`` are global job counts; ``tenant_active`` and
        ``tenant_cells`` map tenant -> queued+running jobs / cells.
        """
        hint = self.retry_after(queued, running)
        if queued >= self.max_queued:
            return AdmissionDecision(False, "queue_full", hint)
        if tenant_active.get(tenant, 0) >= self.tenant_max_active:
            return AdmissionDecision(False, "tenant_jobs_exhausted", hint)
        if tenant_cells.get(tenant, 0) + n_cells > self.tenant_max_cells:
            return AdmissionDecision(False, "tenant_cells_exhausted", hint)
        return AdmissionDecision(True)
