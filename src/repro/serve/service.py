"""The sweep service: HTTP front end, scheduler, and drain discipline.

One asyncio event loop owns the listener, admission, scheduling and SSE
streams; each admitted job runs :meth:`BenchmarkRunner.sweep` on its own
worker thread (sweeps are blocking and CPU-bound; the pool/dist backends
already fan the cells out further when a spec asks for it).  The thread
talks back to the loop only through ``call_soon_threadsafe`` and through
the job's in-memory event buffer, so no cross-thread state is mutated
without the store lock.

Durability contract (the chaos scenarios assert all of it):

* every lifecycle transition is persisted through the v2 checkpoint
  discipline *before* it is visible over HTTP;
* a ``kill -9`` at any instant loses at most the in-flight cell: restart
  re-adopts running jobs to ``queued`` and their sweeps resume from their
  checkpoints, converging to byte-identical aggregates;
* SIGTERM drains: readiness flips to 503, new submissions are shed,
  running sweeps stop at the next cell barrier and are handed back to the
  queue, and the process exits 75 (``EX_TEMPFAIL``, matching
  :class:`SweepInterrupted`) if any job remains unfinished, else 0.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.obs import context as obs_context
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.errors import (
    JobSpecError,
    ReproError,
    ServeError,
    SweepInterrupted,
)
from repro.serve.admission import AdmissionPolicy
from repro.serve.http import (
    ClientGone,
    HttpError,
    Request,
    Response,
    read_request,
    send_sse_event,
    start_sse,
    write_response,
)
from repro.serve.jobs import JobRecord, JobStore, TERMINAL_STATES
from repro.serve.jobspec import JobSpec, controller_factory
from repro.sim.runner import (
    BenchmarkRunner,
    ResilienceConfig,
    SweepConfig,
    _atomic_write_json,
)

__all__ = ["ServeConfig", "SweepService"]

#: How often SSE streams and the drain watchdog poll job state, seconds.
_POLL_S = 0.05

#: BSD sysexits EX_TEMPFAIL, matching SweepInterrupted.exit_code: the
#: drain left resumable work behind, so "retry later" is exactly right.
EXIT_INCOMPLETE_DRAIN = SweepInterrupted.exit_code


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro serve`` configures."""

    data_dir: str
    host: str = "127.0.0.1"
    port: int = 8537
    #: running jobs (each one worker thread); queued jobs wait
    max_running: int = 2
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    #: per-request head/body read deadline (slow-loris guard)
    request_timeout_s: float = 5.0
    #: SIGTERM drain: how long to wait for running sweeps to reach a cell
    #: barrier and checkpoint before giving up and exiting 75 anyway
    drain_deadline_s: float = 30.0
    #: optional JSON file written once the listener is bound (chaos and CI
    #: use it with --port 0 to learn the ephemeral port and pid)
    ready_file: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_running < 1:
            raise ServeError(
                f"max_running must be >= 1, got {self.max_running!r}"
            )
        if self.request_timeout_s <= 0:
            raise ServeError(
                f"request_timeout_s must be positive,"
                f" got {self.request_timeout_s!r}"
            )
        if self.drain_deadline_s <= 0:
            raise ServeError(
                f"drain_deadline_s must be positive,"
                f" got {self.drain_deadline_s!r}"
            )


class _ActiveJob:
    """Loop-side handle on one running job's thread and live buffers."""

    def __init__(self, record: JobRecord):
        self.record = record
        self.stop = threading.Event()
        self.thread: Optional[threading.Thread] = None
        #: monotonically growing progress events; SSE streams keep their
        #: own cursor into it (append-only, so no locking beyond the GIL)
        self.events: List[dict] = []


class SweepService:
    """See the module docstring; one instance per process."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.store = JobStore(config.data_dir)
        self.registry = obs.ensure_registry()
        self.policy = config.admission
        self._active: Dict[str, _ActiveJob] = {}
        #: finished jobs' progress buffers, so an SSE stream that lags the
        #: final cell still flushes every event before its "end" frame
        self._event_history: Dict[str, List[dict]] = {}
        self._queue: List[str] = []  # job ids, FIFO by admission order
        self._draining = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()
        self.exit_code = 0
        self.bound_port: Optional[int] = None
        self._started_monotonic = time.monotonic()

    # ------------------------------------------------------------------
    # Metrics helpers
    # ------------------------------------------------------------------
    def _count_request(self, method: str, route: str, status: int) -> None:
        self.registry.counter(
            "serve_requests_total", help="HTTP requests by route and status"
        ).inc(labels={
            "method": method, "route": route, "status": str(status),
        })

    def _sync_gauges(self) -> None:
        self.registry.gauge(
            "serve_queue_depth", help="jobs waiting for a worker slot"
        ).set(len(self._queue))
        self.registry.gauge(
            "serve_running_jobs", help="jobs currently executing"
        ).set(len(self._active))
        self.registry.gauge(
            "serve_draining", help="1 while the service is draining"
        ).set(1.0 if self._draining else 0.0)

    # ------------------------------------------------------------------
    # Admission bookkeeping
    # ------------------------------------------------------------------
    def _population(self):
        """Queued/running counts, globally and per tenant."""
        tenant_active: Dict[str, int] = {}
        tenant_cells: Dict[str, int] = {}
        for job_id in self._queue:
            record = self.store.get(job_id)
            if record is None:
                continue
            tenant_active[record.tenant] = (
                tenant_active.get(record.tenant, 0) + 1
            )
            tenant_cells[record.tenant] = (
                tenant_cells.get(record.tenant, 0) + record.total_cells
            )
        for active in self._active.values():
            record = active.record
            tenant_active[record.tenant] = (
                tenant_active.get(record.tenant, 0) + 1
            )
            tenant_cells[record.tenant] = (
                tenant_cells.get(record.tenant, 0) + record.total_cells
            )
        return (
            len(self._queue), len(self._active), tenant_active, tenant_cells
        )

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def _record_payload(self, record: JobRecord) -> dict:
        return record.to_dict()

    def _handle_submit(self, request: Request) -> Response:
        if self._draining:
            raise HttpError(
                503, "service is draining; resubmit after restart",
                headers={"Retry-After": "1"},
            )
        try:
            spec = JobSpec.from_dict(request.json())
        except JobSpecError as error:
            raise HttpError(400, str(error))
        idempotency_key = request.headers.get("idempotency-key")
        if idempotency_key is not None:
            existing = self.store.find_idempotent(spec.tenant, idempotency_key)
            if existing is not None:
                # A retried submission must always get its original job
                # back, whatever state that job has reached since.
                self.registry.counter(
                    "serve_idempotent_replays_total",
                    help="submissions answered from the idempotency map",
                ).inc()
                return Response(200, self._record_payload(existing))
        queued, running, tenant_active, tenant_cells = self._population()
        decision = self.policy.decide(
            spec.tenant, spec.n_cells, queued, running,
            tenant_active, tenant_cells,
        )
        if not decision.admitted:
            self.registry.counter(
                "serve_admission_rejections_total",
                help="submissions shed by admission control, by reason",
            ).inc(labels={"reason": decision.reason})
            raise HttpError(
                429,
                f"admission rejected: {decision.reason}",
                headers={"Retry-After": str(decision.retry_after_s)},
            )
        record = self.store.create(
            tenant=spec.tenant,
            spec=spec.to_dict(),
            total_cells=spec.n_cells,
            idempotency_key=idempotency_key,
        )
        # Root the job's trace context: under the client's traceparent
        # when one was sent, else a fresh trace named after the job.  The
        # context is persisted on the record so a crash-adopted job keeps
        # its ids, and the job thread chains the sweep under it.
        tracer = obs.active_tracer()
        header_ctx = obs_context.TraceContext.from_traceparent(
            request.headers.get("traceparent")
        )
        if tracer is not None or header_ctx is not None:
            request_ctx = (
                header_ctx.child("http|POST|/jobs")
                if header_ctx is not None
                else obs_context.TraceContext.root(f"job|{record.job_id}")
            )
            request.trace_context = request_ctx
            job_ctx = request_ctx.child(f"job|{record.job_id}")
            record = self.store.update(
                record.job_id,
                lambda r: setattr(r, "trace", job_ctx.to_dict()),
            )
            if tracer is not None:
                tracer.flow_start(job_ctx.span_id)
        self._queue.append(record.job_id)
        self.registry.counter(
            "serve_jobs_submitted_total", help="admitted job submissions"
        ).inc(labels={"tenant": spec.tenant})
        self._kick_scheduler()
        return Response(201, self._record_payload(record))

    def _get_record(self, job_id: str) -> JobRecord:
        record = self.store.get(job_id)
        if record is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        return record

    def _handle_get_job(self, job_id: str) -> Response:
        return Response(200, self._record_payload(self._get_record(job_id)))

    def _handle_list_jobs(self) -> Response:
        return Response(200, {
            "jobs": [
                self._record_payload(record)
                for record in self.store.list_records()
            ],
        })

    def _handle_result(self, job_id: str) -> Response:
        record = self._get_record(job_id)
        if record.state != "done":
            raise HttpError(
                409,
                f"job {job_id} is {record.state}, not done;"
                f" no result to fetch",
            )
        return Response(200, {
            "job_id": record.job_id,
            "result": record.result,
        })

    def _handle_cancel(self, job_id: str) -> Response:
        record = self._get_record(job_id)
        if record.terminal:
            raise HttpError(
                409, f"job {job_id} is already {record.state}"
            )
        if record.state == "queued" and job_id in self._queue:
            self._queue.remove(job_id)
            record = self.store.transition(
                job_id, "cancelled",
                mutate=lambda r: setattr(r, "finished_at", time.time()),
            )
        else:
            # Running: flag the drain and let the sweep stop at its next
            # cell barrier; the worker thread performs the terminal
            # transition so the checkpoint flush and the state change
            # cannot race.
            self.store.update(
                job_id,
                lambda r: setattr(r, "cancel_requested", True),
            )
            active = self._active.get(job_id)
            if active is not None:
                active.stop.set()
                record = self.store.transition(job_id, "draining")
        self._sync_gauges()
        return Response(200, self._record_payload(record))

    def _handle_metrics(self) -> Response:
        self._sync_gauges()
        return Response(
            200,
            raw=self.registry.to_prometheus().encode("utf-8"),
            content_type="text/plain; version=0.0.4",
        )

    def _handle_health(self) -> Response:
        return Response(200, {"status": "ok"})

    def _handle_debug_vars(self) -> Response:
        """Lightweight introspection snapshot (expvar-style)."""
        self._sync_gauges()
        return Response(200, {
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            "draining": self._draining,
            "queue_depth": len(self._queue),
            "running_jobs": sorted(self._active),
            "jobs_total": len(self.store.list_records()),
            "tracing": obs.active_tracer() is not None,
            "profiling": obs_profile.active_profiler() is not None,
            "metrics": self.registry.to_dict(),
        })

    def _handle_debug_profile(self) -> Response:
        """Speedscope snapshot of the live profiler (this process only)."""
        profiler = obs_profile.active_profiler()
        if profiler is None:
            raise HttpError(
                409, "profiler is off; start the service with --profile-out"
            )
        processes = [{
            "pid": os.getpid(),
            "label": profiler.process_label,
            "samples": [
                [label, list(stack), count]
                for (label, stack), count in sorted(
                    profiler.snapshot().items()
                )
            ],
        }]
        return Response(
            200,
            raw=json.dumps(
                obs_profile.speedscope_payload(processes),
                separators=(",", ":"),
            ).encode("utf-8"),
            content_type="application/json",
        )

    def _handle_ready(self) -> Response:
        if self._draining:
            raise HttpError(503, "draining")
        return Response(200, {
            "status": "ready",
            "queued": len(self._queue),
            "running": len(self._active),
        })

    async def _handle_events(
        self, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        """Stream job progress as SSE until the job reaches a terminal
        state or the client goes away (which leaves the job untouched)."""
        record = self._get_record(job_id)
        await start_sse(writer)
        events_counter = self.registry.counter(
            "serve_sse_events_total", help="SSE frames sent to clients"
        )
        cursor = 0
        await send_sse_event(writer, "state", self._record_payload(record))
        events_counter.inc()
        while True:
            record = self.store.get(job_id)
            active = self._active.get(job_id)
            buffered = (
                active.events if active is not None
                else self._event_history.get(job_id, [])
            )
            while cursor < len(buffered):
                await send_sse_event(writer, "cell", buffered[cursor])
                events_counter.inc()
                cursor += 1
            if record is None or record.terminal:
                await send_sse_event(
                    writer, "end", self._record_payload(record)
                )
                events_counter.inc()
                return
            await asyncio.sleep(_POLL_S)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> Optional[str]:
        """Route one request; returns the route label for metrics."""
        method, path = request.method, request.path
        parts = [p for p in path.split("/") if p]
        if path == "/healthz" and method == "GET":
            await write_response(writer, self._handle_health())
            return "/healthz"
        if path == "/readyz" and method == "GET":
            await write_response(writer, self._handle_ready())
            return "/readyz"
        if path == "/metrics" and method == "GET":
            await write_response(writer, self._handle_metrics())
            return "/metrics"
        if path == "/debug/vars" and method == "GET":
            await write_response(writer, self._handle_debug_vars())
            return "/debug/vars"
        if path == "/debug/profile" and method == "GET":
            await write_response(writer, self._handle_debug_profile())
            return "/debug/profile"
        if path == "/jobs" and method == "POST":
            await write_response(writer, self._handle_submit(request))
            return "/jobs"
        if path == "/jobs" and method == "GET":
            await write_response(writer, self._handle_list_jobs())
            return "/jobs"
        if len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            await write_response(writer, self._handle_get_job(parts[1]))
            return "/jobs/{id}"
        if len(parts) == 3 and parts[0] == "jobs":
            job_id, tail = parts[1], parts[2]
            if tail == "result" and method == "GET":
                await write_response(writer, self._handle_result(job_id))
                return "/jobs/{id}/result"
            if tail == "cancel" and method == "POST":
                await write_response(writer, self._handle_cancel(job_id))
                return "/jobs/{id}/cancel"
            if tail == "events" and method == "GET":
                await self._handle_events(writer, job_id)
                return "/jobs/{id}/events"
        raise HttpError(
            405 if path in ("/jobs", "/healthz", "/readyz", "/metrics",
                            "/debug/vars", "/debug/profile")
            else 404,
            f"no route for {method} {path}",
        )

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        route, status = "unparsed", 500
        method = "?"
        request = None
        started = time.monotonic()
        try:
            request = await read_request(
                reader, self.config.request_timeout_s
            )
            if request is None:
                return
            method = request.method
            route = await self._dispatch(request, writer) or request.path
            status = 200
        except HttpError as error:
            status = error.status
            with contextlib.suppress(ClientGone):
                await write_response(writer, Response(
                    error.status, {"error": error.message},
                    headers=error.headers,
                ))
        except ClientGone:
            status = 499  # client closed before the response finished
        except Exception as error:  # noqa: BLE001 - last-resort guard
            status = 500
            obs.get_logger("serve").exception("request failed: %s", error)
            with contextlib.suppress(ClientGone, ConnectionError):
                await write_response(writer, Response(
                    500, {"error": f"{type(error).__name__}: {error}"}
                ))
        finally:
            self._count_request(method, route, status)
            tracer = obs.active_tracer()
            if tracer is not None and request is not None:
                # Written after the fact (the status is only known here);
                # submits carry the context rooted in _handle_submit so
                # the job span chains under this request span.
                tracer.span_at(
                    f"http {method} {route}",
                    cat=obs_trace.CAT_SERVE,
                    started=started,
                    ended=time.monotonic(),
                    args={"status": status, "path": request.path},
                    ctx=getattr(request, "trace_context", None),
                )
            with contextlib.suppress(ConnectionError):
                writer.close()
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(writer.wait_closed(), timeout=1.0)

    # ------------------------------------------------------------------
    # Scheduling and job execution
    # ------------------------------------------------------------------
    def _kick_scheduler(self) -> None:
        while (
            self._queue
            and len(self._active) < self.config.max_running
            and not self._draining
        ):
            job_id = self._queue.pop(0)
            record = self.store.get(job_id)
            if record is None or record.state != "queued":
                continue
            try:
                spec = JobSpec.from_dict(record.spec)
            except JobSpecError as exc:
                # A persisted spec that no longer validates (schema drift
                # across an upgrade): fail it cleanly, keep scheduling.
                self.store.transition(job_id, "failed", mutate=lambda r: (
                    setattr(r, "finished_at", time.time()),
                    setattr(r, "error", {
                        "type": type(exc).__name__, "message": str(exc),
                    }),
                ))
                continue
            if (
                spec.deadline_s is not None
                and time.time() > record.submitted_at + spec.deadline_s
            ):
                # Nobody is waiting for this result any more; fail it
                # without burning a worker slot on it.
                self.store.transition(job_id, "failed", mutate=lambda r: (
                    setattr(r, "finished_at", time.time()),
                    setattr(r, "error", {
                        "type": "DeadlineExceeded",
                        "message": (
                            f"deadline_s={spec.deadline_s} lapsed while"
                            f" queued"
                        ),
                    }),
                ))
                self.registry.counter(
                    "serve_jobs_total", help="jobs by terminal state"
                ).inc(labels={"state": "failed"})
                continue
            active = _ActiveJob(record)
            self._active[job_id] = active
            self.store.transition(job_id, "running", mutate=lambda r: (
                setattr(r, "started_at", time.time()),
            ))
            active.thread = threading.Thread(
                target=self._run_job,
                args=(active, spec),
                name=f"job-{job_id}",
                daemon=True,
            )
            active.thread.start()
        self._sync_gauges()

    def _run_job(self, active: _ActiveJob, spec: JobSpec) -> None:
        """Worker thread: one sweep, checkpointed, stoppable, reported."""
        job_id = active.record.job_id
        checkpoint = self.store.checkpoint_path(job_id)
        outcome = "failed"
        result: Optional[dict] = None
        error: Optional[dict] = None
        job_ctx = obs_context.TraceContext.from_dict(active.record.trace)
        tracer = obs.active_tracer()
        try:
            factory = controller_factory(spec)
            resilience = ResilienceConfig(
                checkpoint_path=checkpoint,
                resume=os.path.exists(checkpoint),
                max_retries=spec.max_retries,
                workers=spec.workers,
                backend=spec.backend,
            )
            config = SweepConfig(
                n_cycles=spec.n_cycles, warmup_cycles=spec.warmup_cycles
            )

            def on_progress(benchmark: str, metrics) -> None:
                record = active.record
                record.completed_cells += 1
                active.events.append({
                    "benchmark": benchmark,
                    "status": "completed",
                    "slowdown": metrics.slowdown,
                    "completed_cells": record.completed_cells,
                    "failed_cells": record.failed_cells,
                    "total_cells": record.total_cells,
                })
                if spec.pace_s:
                    time.sleep(spec.pace_s)

            def on_failure(cell, report) -> None:
                record = active.record
                record.failed_cells += 1
                active.events.append({
                    "benchmark": cell[0],
                    "status": "failed",
                    "error_type": report.error_type,
                    "completed_cells": record.completed_cells,
                    "failed_cells": record.failed_cells,
                    "total_cells": record.total_cells,
                })

            with contextlib.ExitStack() as stack:
                if job_ctx is not None:
                    # The sweep chains under the persisted job context so
                    # its spans -- across every backend and process --
                    # share the submit request's trace_id.
                    stack.enter_context(obs_context.use_context(job_ctx))
                    if tracer is not None:
                        stack.enter_context(tracer.span(
                            f"job {job_id}",
                            cat=obs_trace.CAT_SERVE,
                            args={
                                "job_id": job_id,
                                "technique": spec.technique,
                                "backend": spec.backend,
                            },
                            ctx=job_ctx,
                        ))
                        tracer.flow_end(job_ctx.span_id)
                runner = stack.enter_context(BenchmarkRunner(config))
                summary = runner.sweep(
                    factory,
                    benchmarks=list(spec.benchmarks),
                    seeds=list(spec.seeds),
                    resilience=resilience,
                    progress=on_progress,
                    stop=active.stop,
                    on_failure=on_failure,
                )
            result = {
                # The dataclass fields only: byte-identical across resumed
                # / adopted / uninterrupted executions (timings and
                # incidents are environment diagnostics, kept separate).
                "summary": dataclasses.asdict(summary),
                "timings": getattr(summary, "timings", None),
                "incidents": [
                    dataclasses.asdict(incident)
                    for incident in getattr(summary, "incidents", ())
                ],
            }
            outcome = "done"
        except SweepInterrupted:
            # Stopped at a cell barrier: cancellation if the client asked,
            # otherwise a service drain handing the job back to the queue.
            outcome = (
                "cancelled" if active.record.cancel_requested else "queued"
            )
        except ReproError as exc:
            error = {"type": type(exc).__name__, "message": str(exc)}
        except Exception as exc:  # noqa: BLE001 - job must not kill service
            error = {"type": type(exc).__name__, "message": str(exc)}
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(
                self._finish_job, job_id, outcome, result, error
            )

    def _finish_job(
        self,
        job_id: str,
        outcome: str,
        result: Optional[dict],
        error: Optional[dict],
    ) -> None:
        """Loop side of job completion: persist, free the slot, reschedule."""
        active = self._active.pop(job_id, None)
        if active is not None:
            self._event_history[job_id] = active.events

        def mutate(record: JobRecord) -> None:
            if outcome == "queued":
                record.started_at = None
            else:
                record.finished_at = time.time()
            if result is not None:
                record.result = result
            if error is not None:
                record.error = error
            if active is not None:
                record.completed_cells = active.record.completed_cells
                record.failed_cells = active.record.failed_cells

        self.store.transition(job_id, outcome, mutate=mutate)
        if outcome == "queued":
            self._queue.append(job_id)
        else:
            self.registry.counter(
                "serve_jobs_total", help="jobs by terminal state"
            ).inc(labels={"state": outcome})
        self._kick_scheduler()

    # ------------------------------------------------------------------
    # Drain and lifecycle
    # ------------------------------------------------------------------
    def initiate_drain(self) -> None:
        """SIGTERM/SIGINT: stop admitting, stop sweeps, then exit."""
        if self._draining:
            return
        self._draining = True
        self._sync_gauges()
        for active in self._active.values():
            active.stop.set()
        if self._loop is not None:
            self._loop.create_task(self._drain_and_stop())

    async def _drain_and_stop(self) -> None:
        deadline = time.monotonic() + self.config.drain_deadline_s
        while time.monotonic() < deadline and self._active:
            await asyncio.sleep(_POLL_S)
        # Anything still queued (or stuck running past the deadline) makes
        # the drain incomplete: exit EX_TEMPFAIL so supervisors restart us
        # and recovery resumes the leftovers.
        leftovers = [
            record for record in self.store.list_records()
            if not record.terminal
        ]
        self.exit_code = EXIT_INCOMPLETE_DRAIN if leftovers else 0
        self._shutdown.set()

    def _write_ready_file(self) -> None:
        if self.config.ready_file is None:
            return
        _atomic_write_json(self.config.ready_file, {
            "host": self.config.host,
            "port": self.bound_port,
            "pid": os.getpid(),
            "url": f"http://{self.config.host}:{self.bound_port}",
        })

    async def run(self) -> int:
        """Serve until SIGTERM/SIGINT (or ``initiate_drain``); returns the
        process exit code (0 clean, 75 incomplete drain)."""
        self._loop = asyncio.get_running_loop()
        adopted = self.store.recover()
        for path in self.store.corrupt_files:
            obs.get_logger("serve").warning(
                "quarantined corrupt job record: %s", path
            )
            self.registry.counter(
                "serve_corrupt_records_total",
                help="job records quarantined during recovery",
            ).inc()
        for record in self.store.list_records():
            if record.state == "queued":
                self._queue.append(record.job_id)
        if adopted:
            self.registry.counter(
                "serve_jobs_adopted_total",
                help="in-flight jobs re-adopted after a crash",
            ).inc(len(adopted))
            obs.get_logger("serve").warning(
                "adopted %d in-flight job(s) from a previous process",
                len(adopted),
            )
        if threading.current_thread() is threading.main_thread():
            with contextlib.suppress(NotImplementedError, RuntimeError):
                for sig in (signal.SIGTERM, signal.SIGINT):
                    self._loop.add_signal_handler(sig, self.initiate_drain)
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]
        self._write_ready_file()
        self._sync_gauges()
        self._kick_scheduler()
        try:
            await self._shutdown.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            # Give finished threads a moment to join; daemon threads past
            # the deadline are abandoned (their jobs already counted as
            # leftovers in the exit code).
            for active in list(self._active.values()):
                if active.thread is not None:
                    active.thread.join(timeout=1.0)
        return self.exit_code
