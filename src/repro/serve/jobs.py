"""Durable job records: the service's crash-safe source of truth.

Every job lives in exactly one JSON file, ``<data_dir>/jobs/<id>.json``,
written through the same durability discipline as sweep checkpoints
(:func:`repro.sim.runner._atomic_write_json`: temp + fsync + atomic
replace + directory fsync) and self-validated the same way (a ``_meta``
header whose SHA-256 checksum covers the record).  A file that fails
validation is quarantined as ``<file>.corrupt-<n>`` and surfaced as an
incident -- never silently dropped, never allowed to poison recovery.

The lifecycle is a small state machine::

    queued -> running -> done | failed
                |-> draining -> cancelled   (client cancel)
                |-> queued                  (service drain / crash adoption)

``running`` and ``draining`` records found on startup mean the previous
process died mid-job; recovery re-adopts them back to ``queued`` (bumping
``adoptions``) and the sweep resumes from its own checkpoint, so a
``kill -9`` costs at most the in-flight cell.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import JobStateError, ServeError
from repro.sim.runner import (
    _atomic_write_json,
    _content_digest,
    _quarantine_corrupt,
)

__all__ = [
    "JobRecord",
    "JobStore",
    "STATES",
    "TERMINAL_STATES",
    "new_job_id",
]

_RECORD_VERSION = 1

STATES = ("queued", "running", "draining", "done", "failed", "cancelled")
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: Legal state transitions; adoption (running/draining -> queued) is
#: included because a crash can interrupt either active state.
_TRANSITIONS = {
    "queued": {"running", "cancelled", "failed"},
    "running": {"draining", "done", "failed", "cancelled", "queued"},
    "draining": {"cancelled", "done", "failed", "queued"},
    "done": set(),
    "failed": set(),
    "cancelled": set(),
}


def new_job_id() -> str:
    """Opaque, URL-safe job identifier."""
    return f"job-{uuid.uuid4().hex[:16]}"


@dataclass
class JobRecord:
    """One job's durable state (everything ``jobs/<id>.json`` holds)."""

    job_id: str
    tenant: str
    spec: dict
    state: str = "queued"
    idempotency_key: Optional[str] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: times this record was re-adopted from running/draining at startup
    adoptions: int = 0
    cancel_requested: bool = False
    #: completed / failed cell counts, updated in memory while running and
    #: persisted at every state transition (cell-level durability is the
    #: sweep checkpoint's job, not this record's)
    completed_cells: int = 0
    failed_cells: int = 0
    total_cells: int = 0
    result: Optional[dict] = None
    error: Optional[dict] = None
    #: trace-context triple (trace_id/span_id/parent_id) rooted at
    #: submission, so adopted jobs keep their ids across restarts; None
    #: when the submit was untraced
    trace: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "spec": self.spec,
            "state": self.state,
            "idempotency_key": self.idempotency_key,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "adoptions": self.adoptions,
            "cancel_requested": self.cancel_requested,
            "completed_cells": self.completed_cells,
            "failed_cells": self.failed_cells,
            "total_cells": self.total_cells,
            "result": self.result,
            "error": self.error,
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        return cls(**{key: data.get(key) for key in (
            "job_id", "tenant", "spec", "state", "idempotency_key",
            "submitted_at", "started_at", "finished_at", "adoptions",
            "cancel_requested", "completed_cells", "failed_cells",
            "total_cells", "result", "error", "trace",
        )})

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


class JobStore:
    """Crash-safe persistence and recovery for :class:`JobRecord`.

    Thread-safe: the service mutates records from the event loop and from
    job threads; one lock serialises every read-modify-write-persist.
    """

    def __init__(self, data_dir: str):
        self.data_dir = data_dir
        self.jobs_dir = os.path.join(data_dir, "jobs")
        self.work_dir = os.path.join(data_dir, "work")
        try:
            os.makedirs(self.jobs_dir, exist_ok=True)
            os.makedirs(self.work_dir, exist_ok=True)
        except OSError as error:
            raise ServeError(
                f"cannot create job store under {data_dir!r}: {error}"
            ) from error
        self._lock = threading.RLock()
        self._records: Dict[str, JobRecord] = {}
        #: (tenant, idempotency key) -> job_id; includes terminal jobs so a
        #: late client retry still gets its original submission back
        self._idempotency: Dict[tuple, str] = {}
        #: quarantined record files found during recovery
        self.corrupt_files: List[str] = []

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def record_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def checkpoint_path(self, job_id: str) -> str:
        """The sweep checkpoint this job resumes from after a crash."""
        return os.path.join(self.work_dir, job_id, "checkpoint.json")

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def _persist(self, record: JobRecord) -> None:
        body = record.to_dict()
        payload = {
            "_meta": {
                "checksum": _content_digest(body),
                "version": _RECORD_VERSION,
            },
            "record": body,
        }
        _atomic_write_json(self.record_path(record.job_id), payload)

    @staticmethod
    def _validate(payload: object) -> Optional[dict]:
        """The record dict if the file is intact, else None."""
        if not isinstance(payload, dict):
            return None
        meta = payload.get("_meta")
        body = payload.get("record")
        if not isinstance(meta, dict) or not isinstance(body, dict):
            return None
        if meta.get("version") != _RECORD_VERSION:
            return None
        if meta.get("checksum") != _content_digest(body):
            return None
        if body.get("state") not in STATES:
            return None
        if not isinstance(body.get("job_id"), str):
            return None
        return body

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> List[JobRecord]:
        """Load every record; re-adopt in-flight jobs; return adoptions.

        Corrupt files are quarantined (``.corrupt-<n>``), listed on
        :attr:`corrupt_files`, and skipped -- one rotten record must not
        take down recovery of the rest.
        """
        import json

        adopted: List[JobRecord] = []
        with self._lock:
            for entry in sorted(os.listdir(self.jobs_dir)):
                if not entry.endswith(".json"):
                    continue
                path = os.path.join(self.jobs_dir, entry)
                try:
                    with open(path) as handle:
                        payload = json.load(handle)
                except (OSError, ValueError):
                    payload = None
                body = self._validate(payload)
                if body is None or body["job_id"] != entry[:-len(".json")]:
                    self.corrupt_files.append(_quarantine_corrupt(path))
                    continue
                record = JobRecord.from_dict(body)
                if record.state in ("running", "draining"):
                    # The previous process died holding this job; hand it
                    # back to the queue and let the sweep checkpoint pay
                    # for the progress already made.
                    record.state = "queued"
                    record.started_at = None
                    record.adoptions += 1
                    self._persist(record)
                    adopted.append(record)
                self._records[record.job_id] = record
                if record.idempotency_key is not None:
                    self._idempotency[
                        (record.tenant, record.idempotency_key)
                    ] = record.job_id
        return adopted

    # ------------------------------------------------------------------
    # CRUD under the lock
    # ------------------------------------------------------------------
    def create(
        self,
        tenant: str,
        spec: dict,
        total_cells: int,
        idempotency_key: Optional[str] = None,
        now: Optional[float] = None,
    ) -> JobRecord:
        with self._lock:
            record = JobRecord(
                job_id=new_job_id(),
                tenant=tenant,
                spec=spec,
                idempotency_key=idempotency_key,
                submitted_at=time.time() if now is None else now,
                total_cells=total_cells,
            )
            self._persist(record)
            self._records[record.job_id] = record
            if idempotency_key is not None:
                self._idempotency[(tenant, idempotency_key)] = record.job_id
            return record

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(job_id)

    def find_idempotent(
        self, tenant: str, idempotency_key: str
    ) -> Optional[JobRecord]:
        with self._lock:
            job_id = self._idempotency.get((tenant, idempotency_key))
            return self._records.get(job_id) if job_id else None

    def list_records(self) -> List[JobRecord]:
        with self._lock:
            return sorted(
                self._records.values(),
                key=lambda r: (r.submitted_at, r.job_id),
            )

    def transition(
        self,
        job_id: str,
        state: str,
        mutate: Optional[Callable[[JobRecord], None]] = None,
    ) -> JobRecord:
        """Atomically move a job to ``state`` (persisting the record).

        ``mutate`` runs under the lock before persistence, for updates
        that must land in the same durable write as the state change
        (result, error, timestamps).
        """
        if state not in STATES:
            raise ServeError(f"unknown job state {state!r}")
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise JobStateError(f"unknown job {job_id!r}")
            if state != record.state:
                if state not in _TRANSITIONS[record.state]:
                    raise JobStateError(
                        f"job {job_id} cannot move"
                        f" {record.state!r} -> {state!r}"
                    )
                record.state = state
            if mutate is not None:
                mutate(record)
            self._persist(record)
            return record

    def update(
        self, job_id: str, mutate: Callable[[JobRecord], None]
    ) -> JobRecord:
        """Persist a non-state mutation (progress counters, flags)."""
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise JobStateError(f"unknown job {job_id!r}")
            mutate(record)
            self._persist(record)
            return record
