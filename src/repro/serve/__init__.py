"""Sweep-as-a-service: a durable async HTTP job API over the runner.

``repro serve`` (see :mod:`repro.cli`) boots a :class:`SweepService`: an
asyncio HTTP front end that admits sweep-job submissions, runs each on a
worker thread through the existing resilient :class:`BenchmarkRunner`
stack, and survives the chaos harness -- ``kill -9`` mid-sweep, client
disconnects mid-stream, queue-overflow storms, slow-loris requests.

The API surface::

    POST /jobs                 submit a JobSpec (Idempotency-Key honoured)
    GET  /jobs                 list all job records
    GET  /jobs/<id>            one job record
    GET  /jobs/<id>/result     aggregates of a done job (409 otherwise)
    POST /jobs/<id>/cancel     cancel queued or running work
    GET  /jobs/<id>/events     SSE progress stream until terminal
    GET  /healthz              liveness (always 200 while the loop runs)
    GET  /readyz               readiness (503 while draining)
    GET  /metrics              Prometheus exposition of repro.obs counters

Durability and recovery are documented on :mod:`repro.serve.jobs`,
admission on :mod:`repro.serve.admission`, and the operational runbook in
``docs/operations.md``.
"""

from __future__ import annotations

from repro.serve.admission import AdmissionDecision, AdmissionPolicy
from repro.serve.jobs import JobRecord, JobStore, STATES, TERMINAL_STATES
from repro.serve.jobspec import JobSpec, TECHNIQUES, controller_factory
from repro.serve.service import ServeConfig, SweepService

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "STATES",
    "ServeConfig",
    "SweepService",
    "TECHNIQUES",
    "TERMINAL_STATES",
    "controller_factory",
]
