"""A minimal asyncio HTTP/1.1 layer for the sweep service.

Stdlib-only by design (the repo's no-new-runtime-deps rule), and much
smaller than a framework: one connection handler that parses a single
request, dispatches it, writes the response, and closes.  Every
connection is ``Connection: close`` -- the service's clients are sweep
submitters and SSE streams, not latency-critical keep-alive traffic, and
one-shot connections make the failure modes (half-open sockets after a
``kill -9``, disconnecting SSE clients) trivially clean.

Robustness properties the chaos scenarios lean on:

* header and body reads sit behind hard deadlines, so a slow-loris client
  holds a connection for at most ``request_timeout_s`` before a 408;
* oversized request lines/headers/bodies are shed with 431/413 instead of
  buffering without bound;
* writes to a disconnected peer surface as :class:`ClientGone`, which
  handlers treat as a no-op (the job a stream was watching is unaffected).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = [
    "HttpError",
    "ClientGone",
    "Request",
    "Response",
    "read_request",
    "write_response",
    "start_sse",
    "send_sse_event",
]

#: Hard ceilings on what one request may occupy before it is shed.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024

_REASONS = {
    200: "OK", 201: "Created", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 409: "Conflict", 413: "Content Too Large",
    429: "Too Many Requests", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class HttpError(Exception):
    """Maps straight to an error response (status + JSON message)."""

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None):
        self.status = status
        self.message = message
        self.headers = headers or {}
        super().__init__(f"{status}: {message}")


class ClientGone(Exception):
    """The peer disconnected mid-response (normal for SSE consumers)."""


@dataclass
class Request:
    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes

    def json(self) -> object:
        if not self.body:
            raise HttpError(400, "request body must be JSON, got empty body")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise HttpError(400, f"request body is not valid JSON: {error}")


@dataclass
class Response:
    status: int = 200
    payload: Optional[object] = None
    headers: Dict[str, str] = field(default_factory=dict)
    #: pre-encoded body overriding ``payload`` (used by /metrics)
    raw: Optional[bytes] = None
    content_type: str = "application/json"


def _parse_query(raw: str) -> Dict[str, str]:
    query: Dict[str, str] = {}
    for pair in raw.split("&"):
        if not pair:
            continue
        key, _, value = pair.partition("=")
        query[key] = value
    return query


async def read_request(
    reader: asyncio.StreamReader, timeout_s: float
) -> Optional[Request]:
    """Parse one request; None on immediate EOF (client connected and left).

    The whole head and the whole body must each arrive within
    ``timeout_s`` -- a drip-feeding client (slow-loris) is shed with 408
    rather than being allowed to pin a connection open indefinitely.
    """
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=timeout_s
        )
    except asyncio.TimeoutError:
        raise HttpError(408, "request head not received in time")
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request head too large")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean pre-request disconnect
        raise HttpError(400, "connection closed mid-request")
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(431, "request head too large")

    try:
        text = head.decode("latin-1")
        request_line, *header_lines = text.split("\r\n")
        method, target, version = request_line.split(" ", 2)
    except ValueError:
        raise HttpError(400, "malformed request line")
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")
    headers: Dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    path, _, raw_query = target.partition("?")
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length_header!r}")
        if length < 0:
            raise HttpError(400, f"bad Content-Length {length_header!r}")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=timeout_s
            )
        except asyncio.TimeoutError:
            raise HttpError(408, "request body not received in time")
        except asyncio.IncompleteReadError:
            raise HttpError(400, "connection closed mid-body")
    return Request(
        method=method.upper(),
        path=path,
        query=_parse_query(raw_query),
        headers=headers,
        body=body,
    )


def _head_bytes(
    status: int, headers: Dict[str, str]
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def _drain(writer: asyncio.StreamWriter) -> None:
    try:
        await writer.drain()
    except (ConnectionError, BrokenPipeError, RuntimeError) as error:
        raise ClientGone(str(error))


async def write_response(
    writer: asyncio.StreamWriter, response: Response
) -> None:
    """Serialise one complete (non-streaming) response."""
    if response.raw is not None:
        body = response.raw
    elif response.payload is None:
        body = b""
    else:
        body = (
            json.dumps(response.payload, sort_keys=True) + "\n"
        ).encode("utf-8")
    headers = {
        "Content-Type": response.content_type,
        "Content-Length": str(len(body)),
        "Connection": "close",
    }
    headers.update(response.headers)
    writer.write(_head_bytes(response.status, headers) + body)
    await _drain(writer)


async def start_sse(writer: asyncio.StreamWriter) -> None:
    """Open a Server-Sent Events stream (terminated by connection close)."""
    writer.write(_head_bytes(200, {
        "Content-Type": "text/event-stream",
        "Cache-Control": "no-store",
        "Connection": "close",
    }))
    await _drain(writer)


async def send_sse_event(
    writer: asyncio.StreamWriter, event: str, data: object
) -> None:
    """One ``event:``/``data:`` frame; raises :class:`ClientGone` if the
    consumer disconnected (the stream's only exit besides job completion)."""
    if writer.is_closing():
        raise ClientGone("SSE consumer closed the connection")
    payload = json.dumps(data, sort_keys=True)
    writer.write(f"event: {event}\ndata: {payload}\n\n".encode("utf-8"))
    await _drain(writer)
