"""Sweep-job specifications: the validated unit of work the service runs.

A job spec is the JSON body of ``POST /jobs``, parsed and range-checked
*before* anything is queued or persisted, so a bad submission costs one
400 response and nothing else.  The spec deliberately mirrors the
``repro compare`` CLI surface -- same technique names, same knob defaults
-- and reuses the CLI's module-level controller builders, so a spec both
pickles cleanly to pool workers and produces byte-identical aggregates to
the equivalent direct :meth:`BenchmarkRunner.sweep` call (the property the
chaos harness's golden-convergence invariants assert).
"""

from __future__ import annotations

import functools
import re
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.config import TuningConfig
from repro.errors import JobSpecError
from repro.uarch.workloads import SPEC2K

__all__ = ["JobSpec", "TECHNIQUES", "controller_factory"]

#: Technique name -> (builder qualname in repro.cli, parameter table).
#: Each parameter row is (spec key, builder kwarg, default, converter);
#: defaults match the ``repro compare`` flags so a spec with no params
#: behaves exactly like the bare CLI command.
TECHNIQUES: Dict[str, Tuple[str, Tuple[Tuple[str, str, object], ...]]] = {
    "tuning": ("_build_tuning", (
        ("response_time", "response_time", 100),
    )),
    "voltage-threshold": ("_build_voltage_threshold", (
        ("threshold_mv", "threshold_mv", 30.0),
        ("noise_mv", "noise_mv", 0.0),
        ("delay", "delay_cycles", 0),
    )),
    "damping": ("_build_damping", (
        ("delta_amps", "delta_amps", 13.0),
    )),
    "convolution": ("_build_convolution", (
        ("estimate_gain", "estimate_gain", 1.0),
    )),
}

_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Grid ceilings: a single submission may not exceed these (per-tenant
#: *cell* budgets are enforced separately by admission control).
_MAX_BENCHMARKS = 64
_MAX_SEEDS = 64
_MAX_WORKERS = 16


def _reject(message: str) -> None:
    raise JobSpecError(message)


def _as_int(value, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        _reject(f"{name} must be an integer, got {value!r}")
    return value


def _as_number(value, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _reject(f"{name} must be a number, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class JobSpec:
    """One validated sweep-job submission.

    Everything needed to reproduce the sweep lives here (and therefore in
    the durable job record): after a crash the service rebuilds the exact
    factory and grid from the persisted spec and resumes from the sweep
    checkpoint.
    """

    technique: str
    benchmarks: Tuple[str, ...]
    seeds: Tuple[Optional[int], ...] = (None,)
    n_cycles: int = 2_000
    warmup_cycles: int = 200
    params: Dict[str, object] = field(default_factory=dict)
    tenant: str = "default"
    #: extra attempts per failing cell (deterministically re-seeded)
    max_retries: int = 0
    #: job must *finish* within this many seconds of submission; a queued
    #: job whose deadline lapses before dispatch fails as DeadlineExceeded
    #: instead of burning compute nobody is waiting for.  None = no limit.
    deadline_s: Optional[float] = None
    #: artificial per-cell pacing (seconds slept after each completed
    #: cell).  Production jobs leave it 0; the chaos harness uses it to
    #: hold the kill-window open deterministically on fast grids.
    pace_s: float = 0.0
    #: sweep execution backend: "auto" picks sequential/pool from
    #: ``workers``; "dist" leases cells to worker subprocesses.  Every
    #: backend yields byte-identical aggregates.
    backend: str = "auto"
    #: worker processes for the pool/dist backends; 1 = in-process
    workers: int = 1

    def __post_init__(self) -> None:
        if self.technique not in TECHNIQUES:
            _reject(
                f"unknown technique {self.technique!r}"
                f" (expected one of {sorted(TECHNIQUES)})"
            )
        if not self.benchmarks:
            _reject("benchmarks must be a non-empty list")
        if len(self.benchmarks) > _MAX_BENCHMARKS:
            _reject(
                f"too many benchmarks ({len(self.benchmarks)} >"
                f" {_MAX_BENCHMARKS})"
            )
        unknown = [b for b in self.benchmarks if b not in SPEC2K]
        if unknown:
            _reject(
                f"unknown benchmarks {unknown!r}"
                f" (expected a subset of {sorted(SPEC2K)})"
            )
        if not self.seeds:
            _reject("seeds must be non-empty when given")
        if len(self.seeds) > _MAX_SEEDS:
            _reject(f"too many seeds ({len(self.seeds)} > {_MAX_SEEDS})")
        for seed in self.seeds:
            if seed is not None and (
                isinstance(seed, bool) or not isinstance(seed, int)
            ):
                _reject(f"seeds must be integers or null, got {seed!r}")
        if self.n_cycles <= 0:
            _reject(f"n_cycles must be positive, got {self.n_cycles!r}")
        if self.warmup_cycles < 0:
            _reject(
                f"warmup_cycles must be non-negative,"
                f" got {self.warmup_cycles!r}"
            )
        if self.max_retries < 0:
            _reject(
                f"max_retries must be non-negative, got {self.max_retries!r}"
            )
        if not _TENANT_RE.match(self.tenant):
            _reject(
                f"tenant must match {_TENANT_RE.pattern},"
                f" got {self.tenant!r}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            _reject(
                f"deadline_s must be positive when set,"
                f" got {self.deadline_s!r}"
            )
        if self.pace_s < 0 or self.pace_s > 5.0:
            _reject(f"pace_s must be within [0, 5], got {self.pace_s!r}")
        # Hardcoded choices (not imported from the backend registry) keep
        # spec validation import-light and the wire contract explicit.
        if self.backend not in ("auto", "sequential", "pool", "dist"):
            _reject(
                f"backend must be one of ['auto', 'sequential', 'pool',"
                f" 'dist'], got {self.backend!r}"
            )
        if (
            isinstance(self.workers, bool)
            or not isinstance(self.workers, int)
            or not 1 <= self.workers <= _MAX_WORKERS
        ):
            _reject(
                f"workers must be an integer in [1, {_MAX_WORKERS}],"
                f" got {self.workers!r}"
            )
        _, param_table = TECHNIQUES[self.technique]
        known = {key for key, _, _ in param_table}
        extra = sorted(set(self.params) - known)
        if extra:
            _reject(
                f"unknown params {extra!r} for technique"
                f" {self.technique!r} (expected a subset of {sorted(known)})"
            )

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: object) -> "JobSpec":
        """Parse and validate an untrusted JSON object into a spec."""
        if not isinstance(data, dict):
            _reject(f"job spec must be a JSON object, got {type(data).__name__}")
        allowed = {
            "technique", "benchmarks", "seeds", "n_cycles", "warmup_cycles",
            "params", "tenant", "max_retries", "deadline_s", "pace_s",
            "backend", "workers",
        }
        extra = sorted(set(data) - allowed)
        if extra:
            _reject(
                f"unknown job-spec fields {extra!r}"
                f" (expected a subset of {sorted(allowed)})"
            )
        if "technique" not in data:
            _reject("job spec requires a technique")
        technique = data["technique"]
        if not isinstance(technique, str):
            _reject(f"technique must be a string, got {technique!r}")
        benchmarks = data.get("benchmarks")
        if benchmarks is None:
            _reject("job spec requires a benchmarks list")
        if not isinstance(benchmarks, (list, tuple)) or not all(
            isinstance(b, str) for b in benchmarks
        ):
            _reject(f"benchmarks must be a list of strings, got {benchmarks!r}")
        seeds = data.get("seeds", [None])
        if not isinstance(seeds, (list, tuple)):
            _reject(f"seeds must be a list, got {seeds!r}")
        params = data.get("params", {})
        if not isinstance(params, dict):
            _reject(f"params must be an object, got {params!r}")
        deadline_s = data.get("deadline_s")
        kwargs = dict(
            technique=technique,
            benchmarks=tuple(benchmarks),
            seeds=tuple(seeds),
            n_cycles=_as_int(data.get("n_cycles", 2_000), "n_cycles"),
            warmup_cycles=_as_int(
                data.get("warmup_cycles", 200), "warmup_cycles"
            ),
            params=dict(params),
            max_retries=_as_int(data.get("max_retries", 0), "max_retries"),
            deadline_s=(
                None if deadline_s is None
                else _as_number(deadline_s, "deadline_s")
            ),
            pace_s=_as_number(data.get("pace_s", 0.0), "pace_s"),
        )
        backend = data.get("backend", "auto")
        if not isinstance(backend, str):
            _reject(f"backend must be a string, got {backend!r}")
        kwargs["backend"] = backend
        kwargs["workers"] = _as_int(data.get("workers", 1), "workers")
        tenant = data.get("tenant", "default")
        if not isinstance(tenant, str):
            _reject(f"tenant must be a string, got {tenant!r}")
        kwargs["tenant"] = tenant
        return cls(**kwargs)

    def to_dict(self) -> dict:
        data = asdict(self)
        data["benchmarks"] = list(self.benchmarks)
        data["seeds"] = list(self.seeds)
        return data

    # ------------------------------------------------------------------
    # Execution surface
    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        return len(self.benchmarks) * len(self.seeds)


def controller_factory(spec: JobSpec):
    """The picklable controller factory this spec describes.

    Built as ``functools.partial`` over the CLI's module-level builders,
    exactly as ``repro compare`` builds its factories: same defaults, same
    pickling behaviour, and -- critically for the golden-convergence
    invariants -- the same technique name and controller construction as a
    direct runner invocation with the same knobs.
    """
    # Function-level import: repro.cli imports this package for `serve`.
    from repro import cli as _cli

    builder_name, param_table = TECHNIQUES[spec.technique]
    builder = getattr(_cli, builder_name)
    kwargs = {}
    for spec_key, kwarg, default in param_table:
        value = spec.params.get(spec_key, default)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            _reject(f"param {spec_key} must be a number, got {value!r}")
        kwargs[kwarg] = value
    if spec.technique == "tuning":
        response_time = kwargs.pop("response_time")
        if isinstance(response_time, float):
            if not response_time.is_integer():
                _reject(
                    f"param response_time must be an integer,"
                    f" got {response_time!r}"
                )
            response_time = int(response_time)
        return functools.partial(
            _cli._build_tuning,
            tuning=TuningConfig(initial_response_time=response_time),
        )
    if spec.technique == "voltage-threshold":
        kwargs["threshold_volts"] = kwargs.pop("threshold_mv") * 1e-3
        kwargs["noise_volts"] = kwargs.pop("noise_mv") * 1e-3
        delay = kwargs.pop("delay_cycles")
        if isinstance(delay, float):
            if not delay.is_integer():
                _reject(f"param delay must be an integer, got {delay!r}")
            delay = int(delay)
        kwargs["delay_cycles"] = delay
    return functools.partial(builder, **kwargs)
