"""Lease-based work-stealing queue and worker registry for dist sweeps.

The scheduler side of :mod:`repro.dist` is split in two layers so the
policy is unit-testable without sockets:

* :class:`LeaseQueue` -- pure bookkeeping: pending cells in grid order,
  active leases with deadlines, deterministic requeue of expired leases
  (sorted by grid index, stolen back to the *front* of the queue so the
  oldest work is retried first).  Given the same grid and the same
  sequence of lease/complete/expire events, the queue replays the same
  dispatch order -- which is what makes incident lists reproducible.
* :class:`WorkerState` / :class:`SchedulerServer` -- per-worker liveness
  and the socket plumbing (bind/accept/poll, frame buffering, send
  serialization).  Policy -- what to lease, when to quarantine, when to
  degrade -- lives in :class:`repro.dist.backend.DistributedBackend`.
"""

from __future__ import annotations

import contextlib
import os
import selectors
import socket
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dist.protocol import FrameBuffer, encode_frame
from repro.errors import DistributedError

__all__ = ["Lease", "LeaseQueue", "WorkerState", "SchedulerServer"]

Cell = Tuple[str, Optional[int]]


@dataclass(frozen=True)
class Lease:
    """One cell checked out to one worker until a deadline."""

    cell: Cell
    worker_id: str
    deadline: float
    grid_index: int


class LeaseQueue:
    """Deterministic lease bookkeeping over a fixed cell grid.

    ``cells`` is the pending work in grid order; ``grid_index`` maps
    every cell to its position in the *full* sweep grid, which is the
    total order used whenever several leases expire at once.  The queue
    never invents ordering from wall-clock or hash iteration: dispatch
    order is a pure function of the construction order and the sequence
    of ``lease`` / ``complete`` / ``expire`` / ``release_worker`` calls.
    """

    def __init__(self, cells: Sequence[Cell], grid_index: Dict[Cell, int]):
        self._pending: List[Cell] = list(cells)
        self._grid_index = dict(grid_index)
        self._leases: Dict[Cell, Lease] = {}
        self._completed: set = set()

    # -- introspection -------------------------------------------------
    @property
    def pending(self) -> Tuple[Cell, ...]:
        return tuple(self._pending)

    @property
    def leased(self) -> Tuple[Lease, ...]:
        return tuple(
            sorted(self._leases.values(), key=lambda l: l.grid_index)
        )

    @property
    def done(self) -> bool:
        return not self._pending and not self._leases

    def is_completed(self, cell: Cell) -> bool:
        return cell in self._completed

    def holder(self, cell: Cell) -> Optional[str]:
        lease = self._leases.get(cell)
        return lease.worker_id if lease else None

    # -- mutation ------------------------------------------------------
    def push(self, cell: Cell) -> None:
        """Append a cell (a probe's released follower) in call order."""
        self._pending.append(cell)

    def lease(
        self, worker_id: str, now: float, timeout_s: float
    ) -> Optional[Lease]:
        """Check the next pending cell out to ``worker_id``."""
        if not self._pending:
            return None
        cell = self._pending.pop(0)
        lease = Lease(
            cell=cell,
            worker_id=worker_id,
            deadline=now + timeout_s,
            grid_index=self._grid_index.get(cell, 0),
        )
        self._leases[cell] = lease
        return lease

    def renew(self, cell: Cell, worker_id: str, now: float,
              timeout_s: float) -> bool:
        """Extend a lease's deadline (a retry attempt reported progress)."""
        lease = self._leases.get(cell)
        if lease is None or lease.worker_id != worker_id:
            return False
        self._leases[cell] = Lease(
            cell=cell, worker_id=worker_id, deadline=now + timeout_s,
            grid_index=lease.grid_index,
        )
        return True

    def complete(self, cell: Cell, worker_id: str) -> bool:
        """Mark a cell finished.  Returns False for a stale or duplicate
        result (cell already completed); late results from an expired
        lease are accepted as long as nobody finished the cell first --
        cells are deterministic, so whichever copy lands first is the
        same bytes."""
        if cell in self._completed:
            return False
        self._completed.add(cell)
        self._leases.pop(cell, None)
        with contextlib.suppress(ValueError):
            self._pending.remove(cell)  # was requeued after expiry
        return True

    def park(self, cell: Cell) -> None:
        """Remove a cell entirely (abandoned as a failure)."""
        self._completed.add(cell)
        self._leases.pop(cell, None)
        with contextlib.suppress(ValueError):
            self._pending.remove(cell)

    def expire(self, now: float) -> List[Lease]:
        """Steal back every lease past its deadline.

        Expired leases are returned -- and requeued at the *front* of
        the pending queue -- in grid order, so two runs expiring the
        same set of leases retry them in the same order regardless of
        dictionary iteration or wall-clock jitter.
        """
        expired = sorted(
            (l for l in self._leases.values() if now > l.deadline),
            key=lambda l: l.grid_index,
        )
        for lease in reversed(expired):
            del self._leases[lease.cell]
            self._pending.insert(0, lease.cell)
        return expired

    def release_worker(self, worker_id: str) -> List[Lease]:
        """Steal back every lease held by a dead worker (grid order)."""
        stolen = sorted(
            (l for l in self._leases.values() if l.worker_id == worker_id),
            key=lambda l: l.grid_index,
        )
        for lease in reversed(stolen):
            del self._leases[lease.cell]
            self._pending.insert(0, lease.cell)
        return stolen


@dataclass
class WorkerState:
    """Liveness and failure accounting for one connected worker."""

    worker_id: str
    sock: socket.socket
    pid: Optional[int] = None
    connected_at: float = 0.0
    last_heartbeat: float = 0.0
    current_cell: Optional[Cell] = None
    failures: int = 0
    quarantined: bool = False
    welcomed: bool = False
    buffer: FrameBuffer = field(default_factory=FrameBuffer)

    @property
    def leasable(self) -> bool:
        return self.welcomed and not self.quarantined \
            and self.current_cell is None


class SchedulerServer:
    """Socket plumbing for the scheduler: bind, accept, poll, send.

    Transport is ``"unix"`` (a socket file in a private temp directory)
    or ``"tcp"`` (127.0.0.1, kernel-chosen port).  The server assigns
    worker ids ``w0``, ``w1``, ... in accept order; message routing and
    policy stay with the caller, which drains :meth:`poll` events.
    """

    def __init__(self, transport: str = "unix"):
        if transport not in ("unix", "tcp"):
            raise DistributedError(
                f"unknown transport {transport!r} (use 'unix' or 'tcp')"
            )
        self.transport = transport
        self._tmpdir: Optional[str] = None
        if transport == "unix":
            self._tmpdir = tempfile.mkdtemp(prefix="repro-dist-")
            self.address = os.path.join(self._tmpdir, "scheduler.sock")
            self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._listener.bind(self.address)
        else:
            self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listener.bind(("127.0.0.1", 0))
            host, port = self._listener.getsockname()
            self.address = f"{host}:{port}"
        self._listener.listen(64)
        self._listener.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        self.workers: Dict[str, WorkerState] = {}
        self._next_id = 0
        self._closed = False

    # ------------------------------------------------------------------
    def _accept(self, now: float) -> WorkerState:
        conn, _addr = self._listener.accept()
        conn.setblocking(True)
        # Sends are small and workers always read between cells; a
        # bounded timeout turns a truly wedged peer into a failure
        # instead of wedging the scheduler.
        conn.settimeout(10.0)
        worker_id = f"w{self._next_id}"
        self._next_id += 1
        state = WorkerState(
            worker_id=worker_id, sock=conn,
            connected_at=now, last_heartbeat=now,
        )
        self.workers[worker_id] = state
        self._selector.register(conn, selectors.EVENT_READ, worker_id)
        return state

    def poll(self, timeout: float) -> List[Tuple[str, Optional[dict]]]:
        """One poll round: ``(worker_id, message)`` events in arrival
        order.  ``message=None`` means the worker disconnected (EOF or a
        poisoned frame stream); new connections surface as their first
        messages (usually ``hello``)."""
        events: List[Tuple[str, Optional[dict]]] = []
        now = time.monotonic()
        for key, _mask in self._selector.select(timeout):
            if key.data is None:
                with contextlib.suppress(OSError):
                    self._accept(now)
                continue
            worker_id = key.data
            state = self.workers.get(worker_id)
            if state is None:
                continue
            try:
                data = state.sock.recv(1 << 16)
            except OSError:
                data = b""
            if not data:
                events.append((worker_id, None))
                continue
            try:
                state.buffer.feed(data)
                for message in state.buffer.messages():
                    events.append((worker_id, message))
            except DistributedError:
                events.append((worker_id, None))
        return events

    def send(self, worker_id: str, message: dict) -> bool:
        """Send one message; False (never an exception) on a dead peer."""
        state = self.workers.get(worker_id)
        if state is None:
            return False
        try:
            state.sock.sendall(encode_frame(message))
            return True
        except OSError:
            return False

    def drop(self, worker_id: str) -> None:
        """Forget a worker and close its socket."""
        state = self.workers.pop(worker_id, None)
        if state is None:
            return
        with contextlib.suppress(Exception):
            self._selector.unregister(state.sock)
        with contextlib.suppress(OSError):
            state.sock.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for worker_id in list(self.workers):
            self.drop(worker_id)
        with contextlib.suppress(Exception):
            self._selector.unregister(self._listener)
        with contextlib.suppress(OSError):
            self._listener.close()
        self._selector.close()
        if self._tmpdir is not None:
            with contextlib.suppress(OSError):
                os.unlink(os.path.join(self._tmpdir, "scheduler.sock"))
            with contextlib.suppress(OSError):
                os.rmdir(self._tmpdir)

    def __enter__(self) -> "SchedulerServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
