"""Distributed sweep execution: scheduler, workers, wire protocol.

The subsystem splits a sweep across independent *worker subprocesses*
speaking a length-prefixed JSON protocol over a Unix or TCP socket --
the shape of a multi-host deployment, exercised on one host.  The
scheduler (:mod:`repro.dist.scheduler`) owns a lease-based work-stealing
queue with deterministic requeue of expired leases, per-worker liveness
accounting with quarantine, and bounded in-flight admission; the backend
(:mod:`repro.dist.backend`) plugs it into
:class:`~repro.sim.backends.SweepBackend` so ``--backend dist`` is
byte-identical to (and checkpoint-interchangeable with) the sequential
and process-pool backends.  See ``docs/robustness.md`` ("Distributed
execution, leases, and quarantine").
"""

from repro.dist.scheduler import Lease, LeaseQueue, WorkerState

__all__ = ["Lease", "LeaseQueue", "WorkerState"]
