"""Length-prefixed JSON wire protocol between scheduler and workers.

Every message is one JSON object encoded as UTF-8 and prefixed with a
4-byte big-endian length, so framing survives any TCP segmentation and
a partial read is always detectable.  Binary payloads that must cross
the wire intact -- the pickled cell spec and controller factory --
travel as base64 text fields inside the JSON.

Message types (``"type"`` field):

========== =========== ==================================================
type       direction   meaning
========== =========== ==================================================
hello      worker → s  worker announces itself (``worker``, ``pid``)
welcome    s → worker  registration ack: heartbeat interval, obs spec
lease      s → worker  one cell to execute, with spec/factory blobs,
                       retry budget and the lease deadline
renew      worker → s  retry attempt started: renew the cell's lease
heartbeat  worker → s  liveness only (background thread; never renews)
result     worker → s  cell finished: metrics or failure, telemetry
shutdown   s → worker  stop after the current message; close the socket
goodbye    worker → s  worker is exiting cleanly
========== =========== ==================================================

The scheduler never trusts a frame: oversized lengths and malformed
JSON raise :class:`~repro.errors.DistributedError` (for its own socket)
or count against the offending worker.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
from typing import Iterator, Optional

from repro.errors import DistributedError

__all__ = [
    "MAX_FRAME_BYTES",
    "encode_frame",
    "send_message",
    "recv_message",
    "FrameBuffer",
    "encode_blob",
    "decode_blob",
    "pickle_blob",
    "unpickle_blob",
]

#: Upper bound on one frame.  A lease (spec + factory blobs) is a few
#: KiB; 32 MiB leaves room for pathological telemetry without letting a
#: corrupt length prefix allocate gigabytes.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def encode_frame(message: dict) -> bytes:
    """One wire frame: 4-byte big-endian length + UTF-8 JSON."""
    payload = json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise DistributedError(
            f"refusing to send a {len(payload)}-byte frame"
            f" (limit {MAX_FRAME_BYTES})"
        )
    return _LENGTH.pack(len(payload)) + payload


def send_message(sock: socket.socket, message: dict) -> None:
    """Send one framed message (callers serialize access per socket)."""
    sock.sendall(encode_frame(message))


def _recv_exactly(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes, or None on a clean EOF at a boundary."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n:
                return None  # clean EOF between frames
            raise DistributedError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[dict]:
    """Blocking read of one message; None on clean EOF."""
    header = _recv_exactly(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise DistributedError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte"
            f" limit (corrupt stream?)"
        )
    payload = _recv_exactly(sock, length)
    if payload is None:  # EOF right after a header: mid-frame
        raise DistributedError("connection closed between header and body")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise DistributedError(f"malformed frame payload: {error}")
    if not isinstance(message, dict) or "type" not in message:
        raise DistributedError(
            f"frame payload is not a typed message:"
            f" {type(message).__name__}"
        )
    return message


class FrameBuffer:
    """Incremental decoder for the scheduler's non-blocking reads.

    Feed raw bytes as they arrive; iterate complete messages.  Malformed
    content raises :class:`DistributedError` -- the caller treats the
    connection as poisoned and drops the worker.
    """

    def __init__(self) -> None:
        self._data = bytearray()

    def feed(self, data: bytes) -> None:
        self._data.extend(data)

    def messages(self) -> Iterator[dict]:
        while len(self._data) >= _LENGTH.size:
            (length,) = _LENGTH.unpack(bytes(self._data[: _LENGTH.size]))
            if length > MAX_FRAME_BYTES:
                raise DistributedError(
                    f"frame length {length} exceeds the"
                    f" {MAX_FRAME_BYTES}-byte limit"
                )
            if len(self._data) < _LENGTH.size + length:
                return
            payload = bytes(self._data[_LENGTH.size: _LENGTH.size + length])
            del self._data[: _LENGTH.size + length]
            try:
                message = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as error:
                raise DistributedError(f"malformed frame payload: {error}")
            if not isinstance(message, dict) or "type" not in message:
                raise DistributedError("frame payload is not a typed message")
            yield message


# ----------------------------------------------------------------------
# Binary payloads inside JSON
# ----------------------------------------------------------------------

def encode_blob(data: bytes) -> str:
    """Binary-safe text form of ``data`` for a JSON field."""
    return base64.b64encode(data).decode("ascii")


def decode_blob(text: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except Exception as error:
        raise DistributedError(f"undecodable blob field: {error}")


def pickle_blob(obj) -> str:
    """Pickle an object into a JSON-safe text blob."""
    return encode_blob(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def unpickle_blob(text: str):
    return pickle.loads(decode_blob(text))
