"""Distributed sweep worker: ``python -m repro.dist.worker --connect ...``.

A worker is an independent subprocess (its own interpreter, simulator
state and base-run cache -- nothing shared with the scheduler beyond the
socket).  It connects, introduces itself with ``hello``, and then serves
``lease`` messages until told to ``shutdown``: each lease carries the
pickled cell spec and controller factory, the retry budget, and the
cell's coordinates; the worker rebuilds a private
:class:`~repro.sim.runner.BenchmarkRunner` (cached until the spec
changes) and executes the cell through the same ``_run_cell`` path as
every other backend -- which is why results are byte-identical.

Liveness and progress are deliberately separate channels:

* a background thread sends ``heartbeat`` every few seconds -- pure
  liveness, it never extends a lease;
* the main thread sends ``renew`` at each retry-attempt boundary --
  the only thing that moves a lease deadline.  A worker that is alive
  but wedged inside one attempt keeps heartbeating yet stops renewing,
  so its lease still expires and the cell is stolen back.

Network chaos (:mod:`repro.faults.chaos` sabotage transforms run inside
the cell, i.e. in *this* process) is armed through the module-level
:func:`chaos_drop_connection` / :func:`chaos_partition` /
:func:`chaos_delay_result` / :func:`chaos_duplicate_result` hooks and
applied at the result boundary, where real networks actually fail.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import socket
import sys
import threading
import time
from dataclasses import asdict
from typing import Optional

from repro.dist.protocol import (
    recv_message,
    send_message,
    unpickle_blob,
    pickle_blob,
)
from repro.errors import DistributedError

#: Chaos flags set by sabotage transforms mid-cell and consumed at the
#: result boundary.  Module-level so picklable transform objects can
#: reach them via ``import repro.dist.worker``.
_CHAOS: dict = {}


def chaos_drop_connection() -> None:
    """Arm: close the socket instead of sending the next result."""
    _CHAOS["drop_connection"] = True


def chaos_partition(seconds: float) -> None:
    """Arm: go silent (no heartbeats, no result) for ``seconds``."""
    _CHAOS["partition_s"] = float(seconds)


def chaos_delay_result(seconds: float) -> None:
    """Arm: hold the next result back for ``seconds`` (heartbeats live)."""
    _CHAOS["delay_result_s"] = float(seconds)


def chaos_duplicate_result() -> None:
    """Arm: deliver the next result frame twice."""
    _CHAOS["duplicate_result"] = True


# ----------------------------------------------------------------------
# Connection
# ----------------------------------------------------------------------

def connect(address: str, transport: str) -> socket.socket:
    if transport == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(address)
    elif transport == "tcp":
        host, _, port = address.rpartition(":")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.connect((host or "127.0.0.1", int(port)))
    else:
        raise DistributedError(f"unknown transport {transport!r}")
    return sock


class _Heartbeat(threading.Thread):
    """Liveness-only beacon; shares the send lock with the main thread."""

    def __init__(self, sock: socket.socket, lock: threading.Lock,
                 interval_s: float):
        super().__init__(daemon=True, name="dist-heartbeat")
        self._sock = sock
        self._lock = lock
        self._interval_s = interval_s
        self._stop = threading.Event()
        #: monotonic timestamp before which the beacon stays silent
        #: (a simulated network partition).
        self.muted_until = 0.0

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:
        while not self._stop.wait(self._interval_s):
            if time.monotonic() < self.muted_until:
                continue
            try:
                with self._lock:
                    send_message(self._sock, {"type": "heartbeat"})
            except OSError:
                return  # scheduler is gone; the main thread will notice


# ----------------------------------------------------------------------
# Cell execution
# ----------------------------------------------------------------------

#: Worker-process cache: the runner rebuilt from the last lease's spec
#: blob, reused across cells exactly like the pool workers'
#: ``_WORKER_STATE`` (so base runs amortise within one worker).
_STATE: dict = {}


def _execute_lease(lease: dict, renew) -> dict:
    """Run one leased cell; return the ``result`` message to send.

    Mirrors :func:`repro.sim.runner._worker_run_cell` -- same runner
    cache, same ``_run_cell`` retry/timeout path, same per-cell metrics
    snapshot -- but reports attempt boundaries through ``renew`` (the
    lease-extension channel) instead of a shared-memory heartbeat map.
    """
    from repro.obs import context as obs_context
    from repro.obs import metrics as obs_metrics
    from repro.obs import profile as obs_profile
    from repro.sim.runner import BenchmarkRunner, ResilienceConfig

    spec_blob = lease["spec"]
    if _STATE.get("spec") != spec_blob:
        (
            config,
            supply_transform,
            max_base_cache_entries,
            trace_store_path,
        ) = unpickle_blob(spec_blob)
        _STATE["runner"] = BenchmarkRunner(
            config,
            supply_transform=supply_transform,
            max_base_cache_entries=max_base_cache_entries,
            trace_store=trace_store_path,
        )
        _STATE["spec"] = spec_blob
    runner = _STATE["runner"]
    factory = unpickle_blob(lease["factory"])
    benchmark = lease["benchmark"]
    seed = lease["seed"]
    resilience = ResilienceConfig(
        timeout_s=lease.get("timeout_s"),
        max_retries=lease.get("max_retries", 0),
        backoff_base_s=lease.get("backoff_base_s", 0.0),
        backoff_max_s=lease.get("backoff_max_s", 30.0),
    )
    registry = obs_metrics.active_registry()
    if registry is not None:
        registry.reset()
    # The scheduler's lease context rides in the lease frame; installing
    # it (marked remote) chains the cell span under the lease span and
    # closes the scheduler's flow arrow.
    with obs_context.use_context(
        obs_context.TraceContext.from_dict(lease.get("ctx")), remote=True
    ):
        metrics, failure = runner._run_cell(
            benchmark,
            lease["technique"],
            factory,
            resilience,
            base_seed=seed,
            on_attempt=lambda attempt: renew(benchmark, seed),
        )
    profiler = obs_profile.active_profiler()
    if profiler is not None:
        profiler.flush_shard()
    telemetry = registry.snapshot() if registry is not None else None
    return {
        "type": "result",
        "benchmark": benchmark,
        "seed": seed,
        "metrics": None if metrics is None else asdict(metrics),
        "failure": None if failure is None else asdict(failure),
        "telemetry": None if telemetry is None else pickle_blob(telemetry),
    }


def _deliver_result(sock: socket.socket, lock: threading.Lock,
                    heartbeat: Optional[_Heartbeat], result: dict) -> None:
    """Send a result, applying any armed network chaos at the boundary."""
    partition_s = _CHAOS.pop("partition_s", None)
    if partition_s is not None:
        if heartbeat is not None:
            heartbeat.muted_until = time.monotonic() + partition_s
        time.sleep(partition_s)
    delay_s = _CHAOS.pop("delay_result_s", None)
    if delay_s is not None:
        time.sleep(delay_s)
    if _CHAOS.pop("drop_connection", None):
        # A mid-cell connection drop: the scheduler sees EOF with the
        # lease outstanding and must steal the cell back.
        with contextlib.suppress(OSError):
            sock.shutdown(socket.SHUT_RDWR)
        sock.close()
        raise SystemExit(1)
    repeats = 2 if _CHAOS.pop("duplicate_result", None) else 1
    for _ in range(repeats):
        with lock:
            send_message(sock, result)


# ----------------------------------------------------------------------
# Main loop
# ----------------------------------------------------------------------

def serve(address: str, transport: str) -> int:
    from repro import obs

    sock = connect(address, transport)
    lock = threading.Lock()
    with lock:
        send_message(sock, {"type": "hello", "pid": os.getpid()})
    welcome = recv_message(sock)
    if welcome is None or welcome.get("type") != "welcome":
        raise DistributedError(
            f"expected a welcome, got {welcome and welcome.get('type')!r}"
        )
    obs.init_worker(welcome.get("obs_spec"))
    heartbeat = _Heartbeat(
        sock, lock, float(welcome.get("heartbeat_interval_s", 2.0))
    )
    heartbeat.start()

    def renew(benchmark: str, seed) -> None:
        # Best effort: a lost renew only risks a premature lease expiry,
        # which the scheduler resolves through the normal stolen path.
        with contextlib.suppress(OSError):
            with lock:
                send_message(
                    sock,
                    {"type": "renew", "benchmark": benchmark, "seed": seed},
                )

    try:
        while True:
            message = recv_message(sock)
            if message is None:  # scheduler hung up
                return 0
            kind = message.get("type")
            if kind == "shutdown":
                with contextlib.suppress(OSError):
                    with lock:
                        send_message(sock, {"type": "goodbye"})
                return 0
            if kind == "lease":
                result = _execute_lease(message, renew)
                _deliver_result(sock, lock, heartbeat, result)
            # anything else (e.g. a stray ping) is ignored
    finally:
        heartbeat.stop()
        with contextlib.suppress(OSError):
            sock.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dist.worker",
        description="sweep worker: connect to a scheduler and serve leases",
    )
    parser.add_argument(
        "--connect", required=True,
        help="scheduler address (socket path, or host:port for tcp)",
    )
    parser.add_argument(
        "--transport", choices=("unix", "tcp"), default="unix",
    )
    args = parser.parse_args(argv)
    try:
        return serve(args.connect, args.transport)
    except (DistributedError, OSError) as error:
        print(f"worker error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    # ``python -m`` executes this file as ``__main__``, a *second* module
    # object distinct from the imported ``repro.dist.worker`` that chaos
    # transforms reach for.  Dispatch into the canonical module so the
    # serving loop and the chaos hooks share one ``_CHAOS``.
    from repro.dist.worker import main as _canonical_main

    sys.exit(_canonical_main())
