"""The ``dist`` sweep backend: lease cells to worker subprocesses.

:class:`DistributedBackend` plugs :mod:`repro.dist.scheduler` into the
:class:`~repro.sim.backends.SweepBackend` contract.  The scheduler owns
a lease-based work-stealing queue: every dispatched cell is leased to a
worker with a deadline; a lease is renewed only when the worker reports
a retry-attempt boundary, so a worker that is alive but wedged still
loses the cell, which is requeued deterministically (grid order) and
stolen by the next free worker.  Per-worker failures -- expired leases,
dropped connections, stale heartbeats -- accumulate toward quarantine,
after which the worker is never leased to again.

Every escape hatch degrades rather than fails:

* no worker connects within ``connect_deadline_s`` -- fall back to the
  local pool backend (or sequential), record a ``DistDegraded``
  incident, and run the sweep anyway;
* every worker is lost or quarantined mid-sweep with no relaunch budget
  left -- finish the remaining cells in-process, sequentially;
* a cell that keeps losing its worker is parked as a
  ``WorkerLostError`` failure after ``max_worker_restarts`` losses,
  exactly like the pool backend.

Because workers execute cells through the same ``_run_cell`` path as
every other backend, aggregates, failures and checkpoint files are
byte-identical to a sequential sweep's, and checkpoints resume across
backends in both directions.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import signal
import subprocess
import sys
import time
from dataclasses import asdict
from typing import Dict, List, Optional, Tuple

from repro.dist.protocol import encode_blob, pickle_blob, unpickle_blob
from repro.dist.scheduler import LeaseQueue, SchedulerServer
from repro.obs import context as obs_context
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.sim.backends import (
    ProcessPoolBackend,
    SequentialBackend,
    SweepBackend,
    SweepJob,
    _CellQueue,
)

__all__ = ["DistributedBackend"]

Cell = Tuple[str, Optional[int]]

#: Scheduler poll period; short enough that tiny lease timeouts in the
#: test-suite expire promptly, long enough to stay off the CPU.
_POLL_S = 0.05


def _incident(job: SweepJob, benchmark: str, seed, error_type: str,
              message: str, attempts: int = 0):
    """Record one supervision event on the summary's incident log."""
    from repro.sim.runner import FailureReport

    report = FailureReport(
        benchmark=benchmark,
        technique=job.technique,
        seed=seed,
        attempts=attempts,
        error_type=error_type,
        message=message,
    )
    job.incidents.append(report)
    return report


class DistributedBackend(SweepBackend):
    """Lease sweep cells to independent worker subprocesses.

    ``workers`` is the number of *local* worker subprocesses to launch;
    0 launches none and relies on externally started workers
    (``python -m repro.dist.worker --connect <address>``) joining
    within ``connect_deadline_s``.
    """

    name = "dist"

    def __init__(self, workers: int):
        self.workers = max(workers, 0)

    # ------------------------------------------------------------------
    # Worker subprocess management
    # ------------------------------------------------------------------
    def _launch_worker(self, server: SchedulerServer) -> subprocess.Popen:
        import repro

        # Workers are fresh interpreters, not forks: the pickled spec and
        # factory resolve by module reference, so the worker must be able
        # to import every module the scheduler can.  Propagate the whole
        # import path, not just the repro package.
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__
        )))
        entries = [src_dir] + [p for p in sys.path if p and os.path.isdir(p)]
        existing = os.environ.get("PYTHONPATH")
        if existing:
            entries.append(existing)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(entries))
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro.dist.worker",
                "--connect", server.address,
                "--transport", server.transport,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
        )

    # ------------------------------------------------------------------
    def execute(self, job: SweepJob) -> None:
        resilience = job.resilience
        server = SchedulerServer(resilience.dist_transport)
        procs: List[subprocess.Popen] = []
        try:
            for _ in range(self.workers):
                procs.append(self._launch_worker(server))
            early = self._await_first_worker(job, server)
            if early is None:
                self._degrade_at_connect(job, server, procs)
                return
            self._run(job, server, procs, early)
        finally:
            self._teardown(server, procs)

    # ------------------------------------------------------------------
    # Connect phase
    # ------------------------------------------------------------------
    def _await_first_worker(self, job: SweepJob, server: SchedulerServer):
        """Poll until a worker connects; the events consumed while
        waiting (typically its ``hello``) are returned for the main loop
        to process, or None if the deadline passes with no connection."""
        deadline = time.monotonic() + job.resilience.connect_deadline_s
        while time.monotonic() < deadline:
            if job.drain.is_set():
                raise job.drain_now()
            events = server.poll(_POLL_S)
            if server.workers:
                return events
        return None

    def _degrade_at_connect(self, job: SweepJob, server: SchedulerServer,
                            procs: List[subprocess.Popen]) -> None:
        """No worker joined in time: run the sweep on a local backend."""
        detail = (
            f"no worker connected within"
            f" {job.resilience.connect_deadline_s:g} s; degrading to a"
            f" local backend"
        )
        _incident(job, "*", None, "DistDegraded", detail)
        tracer = obs_trace.active_tracer()
        if tracer is not None:
            tracer.instant(
                "dist_degraded", cat=obs_trace.CAT_SUPERVISION,
                args={"reason": "connect_deadline", "detail": detail},
            )
        registry = obs_metrics.active_registry()
        if registry is not None:
            registry.counter(
                "dist_degradations_total",
                help="dist sweeps completed on a fallback backend",
            ).inc()
        self._teardown(server, procs)
        fallback_workers = min(max(self.workers, 1), max(len(job.pending), 1))
        if fallback_workers > 1 and len(job.pending) > 1:
            ProcessPoolBackend(fallback_workers).execute(job)
        else:
            SequentialBackend().execute(job)

    # ------------------------------------------------------------------
    # Main scheduling loop
    # ------------------------------------------------------------------
    def _run(self, job: SweepJob, server: SchedulerServer,
             procs: List[subprocess.Popen],
             early_events: Optional[list] = None) -> None:
        from repro import obs
        from repro.sim.runner import (
            FailureReport,
            _merge_worker_telemetry,
            _metrics_from_dict,
            _worker_lost_report,
        )

        runner = job.runner
        resilience = job.resilience
        tracer = obs_trace.active_tracer()
        registry = obs_metrics.active_registry()

        # Cached (resumed) cells report progress first, in grid order --
        # same contract as the pool backend.
        if job.progress is not None:
            for cell in job.grid:
                if cell in job.results:
                    job.progress(cell[0], job.results[cell])

        grid_index = {cell: i for i, cell in enumerate(job.grid)}
        cell_queue = _CellQueue(job, resilience.circuit_breaker)
        lease_queue = LeaseQueue([], grid_index)
        spec_blob = encode_blob(pickle.dumps(
            (
                runner.config,
                runner.supply_transform,
                runner.max_base_cache_entries,
                runner._trace_spec(resilience),
            ),
            protocol=pickle.HIGHEST_PROTOCOL,
        ))
        factory_blob = pickle_blob(job.factory)
        heartbeat_interval_s = 0.5
        if resilience.heartbeat_stale_s is not None:
            heartbeat_interval_s = min(
                0.5, resilience.heartbeat_stale_s / 4.0
            )
        lost_counts: Dict[Cell, int] = {}
        # Same shape as the pool's rebuild budget: each loss consumes
        # one relaunch, each cell is parked after max_worker_restarts
        # losses, so this cap only binds if supervision misbehaves.
        relaunches_left = (resilience.max_worker_restarts + 1) * max(
            1, len(job.pending)
        )

        def work_remains() -> bool:
            return bool(cell_queue) or not lease_queue.done

        def trace_instant(name: str, args: dict) -> None:
            if tracer is not None:
                tracer.instant(
                    name, cat=obs_trace.CAT_SUPERVISION, args=args
                )

        def count(metric: str, help_text: str) -> None:
            if registry is not None:
                registry.counter(metric, help=help_text).inc()

        def abandon_cell(cell: Cell, losses: int, detail: str) -> None:
            lease_queue.park(cell)
            job.record_failure(
                cell,
                _worker_lost_report(
                    cell[0], job.technique, cell[1], losses, detail
                ),
            )
            cell_queue.release_probe(cell, run_failed=False)

        def cell_lost(cell: Cell, detail: str, error_type: str) -> None:
            """One lease stolen back; park the cell if over budget."""
            losses = lost_counts.get(cell, 0) + 1
            lost_counts[cell] = losses
            _incident(
                job, cell[0], cell[1], error_type, detail, attempts=losses
            )
            if losses > resilience.max_worker_restarts:
                abandon_cell(
                    cell,
                    losses,
                    f"abandoned after losing its worker {losses} time(s)"
                    f" (budget {resilience.max_worker_restarts});"
                    f" last incident: {detail}",
                )

        def penalize(worker_id: str, detail: str,
                     cell: Optional[Cell] = None) -> None:
            state = server.workers.get(worker_id)
            if state is None or state.quarantined:
                return
            state.failures += 1
            if state.failures >= resilience.quarantine_failures:
                state.quarantined = True
                cell = cell or state.current_cell
                _incident(
                    job,
                    cell[0] if cell else "*",
                    cell[1] if cell else None,
                    "WorkerQuarantined",
                    f"worker {worker_id} quarantined after"
                    f" {state.failures} failure(s); last: {detail}",
                    attempts=state.failures,
                )
                trace_instant(
                    "worker_quarantined",
                    {"worker": worker_id, "failures": state.failures},
                )
                count(
                    "dist_workers_quarantined_total",
                    "workers quarantined after repeated failures",
                )

        def worker_gone(worker_id: str, detail: str) -> None:
            """EOF, poisoned stream, or a failed send: steal everything."""
            state = server.workers.get(worker_id)
            if state is None:
                return
            stolen = lease_queue.release_worker(worker_id)
            server.drop(worker_id)
            trace_instant(
                "dist_worker_lost",
                {
                    "worker": worker_id,
                    "stolen_cells": len(stolen),
                    "detail": detail,
                },
            )
            count(
                "dist_workers_lost_total",
                "worker connections lost mid-sweep",
            )
            for lease in stolen:
                last_loser[lease.cell] = worker_id
                cell_lost(lease.cell, detail, "WorkerLostError")

        def maybe_relaunch() -> None:
            nonlocal relaunches_left
            if not work_remains():
                return
            live = sum(1 for p in procs if p.poll() is None)
            while live < self.workers and relaunches_left > 0:
                relaunches_left -= 1
                live += 1
                procs.append(self._launch_worker(server))
                trace_instant(
                    "dist_worker_relaunch",
                    {"relaunches_left": relaunches_left},
                )
                count(
                    "dist_worker_relaunches_total",
                    "replacement worker subprocesses launched",
                )

        # Which worker most recently lost each cell (expired lease or
        # dead connection): dispatch avoids handing a stolen cell back
        # to its loser -- likely still wedged or partitioned -- whenever
        # any other worker is free.
        last_loser: Dict[Cell, str] = {}

        # Trace-context propagation: each lease derives a deterministic
        # child of the sweep context and ships it in the lease frame; the
        # worker chains its cell span under it.  The lease span itself is
        # written when the result lands (span_at), on a synthetic track
        # per worker so concurrent leases do not overlap.
        dispatch_ctx = obs_context.current_context()
        lease_seq: Dict[Cell, int] = {}
        lease_meta: Dict[Cell, tuple] = {}

        def worker_tid(worker_id: str) -> int:
            digits = "".join(c for c in worker_id if c.isdigit())
            return 900_000 + (int(digits) if digits else 0)

        def dispatch() -> None:
            now = time.monotonic()
            while lease_queue.pending or cell_queue.queue:
                leasable = [
                    worker_id
                    for worker_id, state in server.workers.items()
                    if state.leasable
                ]
                if not leasable:
                    return
                # Stolen (requeued) cells outrank fresh dispatch, so
                # expired work is retried in grid order before the
                # queue advances.
                if lease_queue.pending:
                    head = lease_queue.pending[0]
                else:
                    head = cell_queue.queue[0]
                worker_id = next(
                    (
                        w for w in leasable
                        if last_loser.get(head) != w
                    ),
                    leasable[0],
                )
                state = server.workers[worker_id]
                if not lease_queue.pending:
                    lease_queue.push(cell_queue.queue.popleft())
                lease = lease_queue.lease(
                    worker_id, now, resilience.lease_timeout_s
                )
                if lease is None:
                    return
                cell = lease.cell
                lease_ctx = None
                if dispatch_ctx is not None:
                    attempt = lease_seq.get(cell, 0)
                    lease_seq[cell] = attempt + 1
                    lease_ctx = dispatch_ctx.child(
                        f"lease|{cell[0]}|{cell[1]}|{attempt}"
                    )
                    lease_meta[cell] = (lease_ctx, now, worker_id)
                    if tracer is not None:
                        cell_ctx = lease_ctx.child(
                            f"cell|{cell[0]}|{job.technique}|{cell[1]}"
                        )
                        tracer.flow_start(
                            cell_ctx.span_id, ts=now, tid=worker_tid(worker_id)
                        )
                sent = server.send(worker_id, {
                    "type": "lease",
                    "benchmark": cell[0],
                    "seed": cell[1],
                    "technique": job.technique,
                    "spec": spec_blob,
                    "factory": factory_blob,
                    "timeout_s": resilience.timeout_s,
                    "max_retries": resilience.max_retries,
                    "backoff_base_s": resilience.backoff_base_s,
                    "backoff_max_s": resilience.backoff_max_s,
                    "lease_timeout_s": resilience.lease_timeout_s,
                    "ctx": None if lease_ctx is None else lease_ctx.to_dict(),
                })
                if not sent:
                    worker_gone(
                        worker_id, "lease dispatch failed (peer gone)"
                    )
                    continue
                state.current_cell = cell

        def record_result(worker_id: str, message: dict) -> None:
            state = server.workers.get(worker_id)
            cell: Cell = (message["benchmark"], message["seed"])
            if state is not None and state.current_cell == cell:
                state.current_cell = None
            accepted = lease_queue.complete(cell, worker_id)
            if not accepted:
                # Either a chaos-duplicated frame or a late result for a
                # cell someone else already finished; cells are
                # deterministic, so dropping the copy changes nothing.
                trace_instant(
                    "dist_duplicate_result_dropped",
                    {"worker": worker_id, "benchmark": cell[0]},
                )
                count(
                    "dist_duplicate_results_total",
                    "late or duplicated results dropped",
                )
                return
            meta = lease_meta.pop(cell, None)
            if meta is not None and tracer is not None:
                lease_ctx, dispatched_at, lease_worker = meta
                tracer.span_at(
                    f"lease {cell[0]}",
                    cat=obs_trace.CAT_DIST,
                    started=dispatched_at,
                    ended=time.monotonic(),
                    args={
                        "benchmark": cell[0],
                        "seed": cell[1],
                        "worker": lease_worker,
                        "outcome": (
                            "failed" if message.get("failure") is not None
                            else "completed"
                        ),
                    },
                    ctx=lease_ctx,
                    tid=worker_tid(lease_worker),
                )
            blob = message.get("telemetry")
            _merge_worker_telemetry(unpickle_blob(blob) if blob else None)
            failure = message.get("failure")
            if failure is not None:
                job.record_failure(cell, FailureReport(**failure))
                cell_queue.release_probe(cell, run_failed=True)
            else:
                job.record_success(
                    cell, _metrics_from_dict(message["metrics"])
                )
                cell_queue.release_probe(cell, run_failed=False)

        def handle_message(worker_id: str, message: Optional[dict]) -> None:
            if message is None:
                worker_gone(worker_id, "connection closed mid-sweep")
                maybe_relaunch()
                return
            state = server.workers.get(worker_id)
            if state is None:
                return
            kind = message.get("type")
            now = time.monotonic()
            if kind == "hello":
                state.pid = message.get("pid")
                state.last_heartbeat = now
                if server.send(worker_id, {
                    "type": "welcome",
                    "worker_id": worker_id,
                    "heartbeat_interval_s": heartbeat_interval_s,
                    "obs_spec": obs.worker_spec(),
                }):
                    state.welcomed = True
                else:
                    worker_gone(worker_id, "welcome send failed")
            elif kind == "heartbeat":
                state.last_heartbeat = now
            elif kind == "renew":
                state.last_heartbeat = now
                lease_queue.renew(
                    (message["benchmark"], message["seed"]),
                    worker_id, now, resilience.lease_timeout_s,
                )
            elif kind == "result":
                state.last_heartbeat = now
                record_result(worker_id, message)
            elif kind == "goodbye":
                worker_gone(worker_id, "worker said goodbye")

        def expire_leases() -> None:
            for lease in lease_queue.expire(time.monotonic()):
                trace_instant(
                    "dist_lease_expired",
                    {
                        "worker": lease.worker_id,
                        "benchmark": lease.cell[0],
                        "seed": lease.cell[1],
                    },
                )
                count(
                    "dist_leases_expired_total",
                    "leases stolen back after missing their deadline",
                )
                last_loser[lease.cell] = lease.worker_id
                cell_lost(
                    lease.cell,
                    f"lease on worker {lease.worker_id} expired after"
                    f" {resilience.lease_timeout_s:g} s without a renewal",
                    "LeaseExpired",
                )
                # The worker is suspect; stop counting on its in-flight
                # work (a late result is still accepted if it lands).
                state = server.workers.get(lease.worker_id)
                if state is not None and state.current_cell == lease.cell:
                    state.current_cell = None
                penalize(
                    lease.worker_id, "lease expired", cell=lease.cell
                )

        def retire_quarantined() -> None:
            """Shut down quarantined workers with nothing in flight.

            A quarantined worker gets no further leases, so once it has
            no cell we can deliver a result for, keeping it (and its
            process) alive would only stop the scheduler from noticing
            that the fleet is exhausted -- or from relaunching a
            replacement.
            """
            for worker_id in list(server.workers):
                state = server.workers.get(worker_id)
                if (
                    state is None or not state.quarantined
                    or state.current_cell is not None
                ):
                    continue
                server.send(worker_id, {"type": "shutdown"})
                server.drop(worker_id)
                if state.pid:
                    # A hung worker ignores the shutdown message.
                    with contextlib.suppress(OSError):
                        os.kill(state.pid, signal.SIGTERM)
                trace_instant(
                    "dist_worker_retired",
                    {"worker": worker_id, "failures": state.failures},
                )
                maybe_relaunch()

        def reap_stale_workers() -> None:
            if resilience.heartbeat_stale_s is None:
                return
            now = time.monotonic()
            for worker_id in list(server.workers):
                state = server.workers.get(worker_id)
                if state is None or not state.welcomed:
                    continue
                if now - state.last_heartbeat <= resilience.heartbeat_stale_s:
                    continue
                trace_instant(
                    "heartbeat_stale_kill",
                    {"worker": worker_id, "pid": state.pid},
                )
                if state.pid:
                    with contextlib.suppress(OSError):
                        os.kill(state.pid, signal.SIGKILL)
                penalize(worker_id, "heartbeat went stale")
                worker_gone(worker_id, "heartbeat went stale; killed")
                maybe_relaunch()

        def stalled() -> bool:
            """True when nothing can make progress any more."""
            for state in server.workers.values():
                # Any non-quarantined connection -- welcomed or still
                # mid-handshake -- and any worker with a cell in flight
                # can still move the sweep forward.
                if not state.quarantined or state.current_cell is not None:
                    return False
            if any(p.poll() is None for p in procs):
                return False  # a worker is still booting toward connect
            return relaunches_left <= 0 or self.workers == 0

        def drain_and_raise() -> None:
            deadline = time.monotonic() + resilience.drain_deadline_s
            from repro.sim.runner import _cell_key

            def in_flight() -> bool:
                return any(
                    s.current_cell is not None
                    for s in server.workers.values()
                )

            while in_flight() and time.monotonic() < deadline:
                for worker_id, message in server.poll(_POLL_S):
                    if message is None:
                        worker_gone(worker_id, "lost during drain")
                    elif message.get("type") == "result":
                        state = server.workers.get(worker_id)
                        cell = (message["benchmark"], message["seed"])
                        if state is not None and state.current_cell == cell:
                            state.current_cell = None
                        if not lease_queue.complete(cell, worker_id):
                            continue
                        blob = message.get("telemetry")
                        _merge_worker_telemetry(
                            unpickle_blob(blob) if blob else None
                        )
                        if message.get("failure") is None:
                            name, seed = cell
                            job.results[cell] = _metrics_from_dict(
                                message["metrics"]
                            )
                            job.cells[
                                _cell_key(
                                    job.ordinal, name, job.technique, seed
                                )
                            ] = asdict(job.results[cell])
            raise job.drain_now()

        # -- the loop --------------------------------------------------
        for worker_id, message in early_events or []:
            handle_message(worker_id, message)
        while work_remains():
            if job.drain.is_set():
                drain_and_raise()
            expire_leases()
            reap_stale_workers()
            retire_quarantined()
            dispatch()
            for worker_id, message in server.poll(_POLL_S):
                handle_message(worker_id, message)
            # A dead subprocess whose socket EOF we already consumed (or
            # that died before connecting) still needs replacing.
            if work_remains():
                for proc in procs:
                    if proc.poll() is not None:
                        maybe_relaunch()
                        break
            if work_remains() and stalled():
                detail = (
                    "every worker is lost or quarantined and the relaunch"
                    " budget is exhausted; finishing the sweep in-process"
                )
                _incident(job, "*", None, "DistDegraded", detail)
                trace_instant(
                    "dist_degraded",
                    {"reason": "workers_exhausted", "detail": detail},
                )
                count(
                    "dist_degradations_total",
                    "dist sweeps completed on a fallback backend",
                )
                self._finish_in_process(job, cell_queue)
                return

        # Orderly end: ask every worker to exit; workers answer with a
        # goodbye or simply hang up, both of which _teardown absorbs.
        for worker_id in list(server.workers):
            server.send(worker_id, {"type": "shutdown"})

    # ------------------------------------------------------------------
    def _finish_in_process(self, job: SweepJob,
                           cell_queue: _CellQueue) -> None:
        """Run whatever is left on the scheduler's own runner.

        Grid order, same ``_run_cell`` path -- results stay identical.
        Progress for already-completed cells has fired, so unlike
        :class:`SequentialBackend` this never replays it.
        """
        for cell in job.grid:
            if cell in job.results or cell in job.failure_map:
                continue
            if job.drain.is_set():
                raise job.drain_now()
            name, seed = cell
            metrics, failure = job.runner._run_cell(
                name, job.technique, job.factory, job.resilience,
                base_seed=seed,
            )
            if failure is not None:
                job.record_failure(cell, failure)
                cell_queue.release_probe(cell, run_failed=True)
                continue
            job.record_success(cell, metrics)
            cell_queue.release_probe(cell, run_failed=False)

    # ------------------------------------------------------------------
    def _teardown(self, server: SchedulerServer,
                  procs: List[subprocess.Popen]) -> None:
        server.close()
        deadline = time.monotonic() + 5.0
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            remaining = deadline - time.monotonic()
            try:
                proc.wait(timeout=max(remaining, 0.1))
            except subprocess.TimeoutExpired:
                proc.kill()
                with contextlib.suppress(Exception):
                    proc.wait(timeout=5.0)
