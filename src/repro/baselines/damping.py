"""The pipeline-damping baseline of Powell & Vijaykumar, ISCA'03 (ref [14]).

Damping bounds the *estimated* current variation over a damping window of
half the resonant period: within any window, the per-cycle issued-current
estimate may move at most ``delta`` amps peak to peak.  The estimate is
a-priori and per instruction class, in 0.5 A units (Section 5.3.2), and the
issue queue enforces the bound every cycle -- the upper bound by refusing
to issue more current, the lower bound by issuing phantom operations.

Following Section 5.3.2, damping is applied at the resonant period only
(window 50 cycles for the 100-cycle Table 1 period); covering the whole
resonance band instead requires tightening ``delta``, which Tables 5's
0.5x and 0.25x rows evaluate.  Per the paper's generous assumption, the
issue-queue modifications damping needs are not charged any extra delay.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from repro.config import PowerSupplyConfig, ProcessorConfig
from repro.core.controller import NoiseController
from repro.errors import ConfigurationError
from repro.power.rlc import RLCAnalysis
from repro.uarch.pipeline import ControlDirectives, NO_CONTROL

__all__ = ["PipelineDampingController"]


class PipelineDampingController(NoiseController):
    """Bounds per-window current variation via issue control (ref [14]).

    ``window_cycles`` may also be a sequence of window lengths: the
    *band-covering* variant the paper mentions but declines ("extend the
    per-cycle decisions to cover the range of frequencies in the band ...
    would complicate the issue queue further").  Each window keeps its own
    history and the issue bounds are the intersection of every window's
    bounds -- strictly stronger damping at strictly higher hardware cost,
    which ``benchmarks/bench_multiwindow_damping.py`` quantifies.
    """

    name = "pipeline-damping"

    def __init__(
        self,
        supply_config: PowerSupplyConfig,
        processor_config: ProcessorConfig,
        delta_amps: float = 26.0,
        window_cycles: "Optional[int | Sequence[int]]" = None,
    ):
        if delta_amps <= 0:
            raise ConfigurationError("delta_amps must be positive")
        self.supply_config = supply_config
        self.processor_config = processor_config
        self.delta_amps = delta_amps
        if window_cycles is None:
            period = RLCAnalysis(supply_config).resonant_period_cycles
            window_cycles = period // 2
        if isinstance(window_cycles, int):
            lengths = [window_cycles]
        else:
            lengths = sorted(set(int(w) for w in window_cycles))
        if not lengths or min(lengths) < 2:
            raise ConfigurationError("window lengths must be at least 2")
        self.window_lengths = tuple(lengths)
        self.window_cycles = lengths[-1]  # longest, for compatibility
        self._windows = [deque(maxlen=length) for length in lengths]
        self.damped_cycles = 0
        self.phantom_pad_cycles = 0

    # ------------------------------------------------------------------
    def directives(self, cycle: int) -> ControlDirectives:
        low = 0.0
        high = None
        for window in self._windows:
            if not window:
                continue
            low = max(low, max(window) - self.delta_amps)
            window_high = min(window) + self.delta_amps
            high = window_high if high is None else min(high, window_high)
        if high is None:
            return NO_CONTROL
        self.damped_cycles += 1
        return ControlDirectives(issue_estimate_bounds=(low, high))

    def observe(
        self, cycle: int, current_amps: float, voltage_volts: float, stats=None
    ) -> None:
        if stats is None:
            raise ConfigurationError(
                "pipeline damping needs per-cycle issue estimates; run it"
                " inside a Simulation (stats must be provided)"
            )
        estimate = stats.issued_estimate_amps
        if stats.phantom_amps > 0:
            self.phantom_pad_cycles += 1
        for window in self._windows:
            window.append(estimate)

    # ------------------------------------------------------------------
    @property
    def response_cycle_fractions(self) -> dict:
        # Damping is "always on"; the damped-cycle count mirrors how often
        # bounds were in force rather than a discrete response level.
        return {"first_level_cycles": self.damped_cycles, "second_level_cycles": 0}
