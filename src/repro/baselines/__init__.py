"""The techniques the paper compares against (Section 5.3).

* :class:`~repro.baselines.voltage_threshold.VoltageThresholdController` --
  the voltage-sensing control of Joseph, Brooks & Martonosi (HPCA'03,
  the paper's reference [10]).
* :class:`~repro.baselines.damping.PipelineDampingController` -- pipeline
  damping (Powell & Vijaykumar, ISCA'03, the paper's reference [14]).
* :class:`~repro.baselines.convolution.ConvolutionController` -- the
  convolution-based prediction of Grochowski et al. (HPCA'02, the paper's
  reference [8]), discussed throughout Sections 1 and 3.
"""

from repro.baselines.convolution import ConvolutionController
from repro.baselines.damping import PipelineDampingController
from repro.baselines.voltage_threshold import VoltageThresholdController

__all__ = [
    "ConvolutionController",
    "PipelineDampingController",
    "VoltageThresholdController",
]
