"""The voltage-threshold baseline of Joseph, Brooks & Martonosi (ref [10]).

The technique senses the supply voltage each cycle and reacts whenever the
(noisy, delayed) reading crosses a threshold inside the noise margin:

* voltage too **low** (current spiked): stop fetch and instruction issue --
  the paper's substitution for instantly clock-gating the back-end, which
  Section 5.3.1 argues is unrealistic;
* voltage too **high** (current dropped): phantom-fire the L1 caches and
  functional units, raising current back up.

Following Section 5.3.1, the configured *target* threshold is degraded by
half the sensor's peak-to-peak noise to the *actual* threshold, and a
sensor/control delay shifts reactions by whole cycles.  Because the
technique does not distinguish resonant from non-resonant variations --
or from the supply's own ringing, which this simulation faithfully feeds
back to it -- lower thresholds react to ever more spurious variations.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.config import PowerSupplyConfig, ProcessorConfig
from repro.core.controller import NoiseController
from repro.errors import ConfigurationError
from repro.uarch.pipeline import ControlDirectives, NO_CONTROL

__all__ = ["VoltageThresholdController"]


class VoltageThresholdController(NoiseController):
    """Reacts to supply-voltage threshold crossings (the [10] baseline)."""

    name = "voltage-threshold"

    def __init__(
        self,
        supply_config: PowerSupplyConfig,
        processor_config: ProcessorConfig,
        target_threshold_volts: float = 0.030,
        sensor_noise_pp_volts: float = 0.0,
        delay_cycles: int = 0,
        hold_cycles: int = 5,
        seed: Optional[int] = 0,
    ):
        margin = supply_config.noise_margin_volts
        actual = target_threshold_volts - 0.5 * sensor_noise_pp_volts
        if not 0 < actual <= margin:
            raise ConfigurationError(
                "actual threshold (target minus half the noise) must lie"
                f" inside the noise margin; got {actual * 1000:.1f} mV"
            )
        if delay_cycles < 0:
            raise ConfigurationError("delay_cycles must be non-negative")
        if hold_cycles < 1:
            raise ConfigurationError("hold_cycles must be at least 1")
        self.supply_config = supply_config
        self.processor_config = processor_config
        self.target_threshold_volts = target_threshold_volts
        self.sensor_noise_pp_volts = sensor_noise_pp_volts
        self.actual_threshold_volts = actual
        self.delay_cycles = delay_cycles
        #: once triggered, a response persists this many cycles: clock-gate
        #: and phantom-fire signals distributed across the die cannot toggle
        #: every cycle, and [10]'s responses fire resources for a window
        self.hold_cycles = hold_cycles
        self._rng = np.random.default_rng(seed) if sensor_noise_pp_volts else None
        # Pre-filled with nominal voltage so the first readings the sensor
        # delivers are the quiescent supply, not a leaked fresh value.
        self._delay_line = deque(
            [0.0] * (delay_cycles + 1), maxlen=delay_cycles + 1
        )
        self._mode = 0  # -1 = voltage low (throttle), +1 = voltage high (fire)
        self._hold_until = -1
        self._low_directives = ControlDirectives(stall_fetch=True, stall_issue=True)
        self._high_directives = ControlDirectives(
            current_floor_amps=processor_config.medium_current_amps
        )
        self.response_cycles = 0
        self.low_response_cycles = 0
        self.high_response_cycles = 0

    # ------------------------------------------------------------------
    def observe(
        self, cycle: int, current_amps: float, voltage_volts: float, stats=None
    ) -> None:
        reading = voltage_volts
        if self._rng is not None:
            reading += self._rng.uniform(
                -0.5 * self.sensor_noise_pp_volts, 0.5 * self.sensor_noise_pp_volts
            )
        self._delay_line.append(reading)
        delayed = self._delay_line[0]
        if delayed < -self.actual_threshold_volts:
            self._mode = -1
            self._hold_until = cycle + self.hold_cycles
        elif delayed > self.actual_threshold_volts:
            self._mode = 1
            self._hold_until = cycle + self.hold_cycles
        elif cycle >= self._hold_until:
            self._mode = 0

    def directives(self, cycle: int) -> ControlDirectives:
        if self._mode == 0:
            return NO_CONTROL
        self.response_cycles += 1
        if self._mode < 0:
            self.low_response_cycles += 1
            return self._low_directives
        self.high_response_cycles += 1
        return self._high_directives

    # ------------------------------------------------------------------
    @property
    def response_cycle_fractions(self) -> dict:
        # Reported as "second level" because each response's cost is
        # comparable to resonance tuning's second-level response (stalls and
        # phantom firing; Section 5.3.1).
        return {
            "first_level_cycles": 0,
            "second_level_cycles": self.response_cycles,
        }
