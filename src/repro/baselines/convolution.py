"""The convolution-based control of Grochowski, Ayers & Tiwari (ref [8]).

The HPCA'02 technique estimates chip current a priori, convolves it in real
time with the power-distribution network's impulse response to compute the
present (and imminent) supply voltage, and throttles or boosts activity when
the computed voltage approaches the noise margin.

We implement the convolution with its mathematically equivalent (and
cheaper) recursive form: an internal model of the Figure 1(b) state
equations driven by the *estimated* current -- convolving the input with
the impulse response of an LTI system is exactly integrating that system.
Each cycle the controller:

1. feeds its current estimate into the model (a-priori estimates are
   modelled as the true sensed current plus a configurable relative error
   and offset, capturing the paper's critique that accurate estimates are
   hard to obtain);
2. projects the model a few cycles ahead with the current held constant;
3. reacts like [10] when the projected voltage leaves the guard band:
   stall fetch/issue when too low, phantom-fire to a medium current when
   too high.

The paper's Section 1 critique -- "computing convolution quickly enough to
prevent noise-margin violations may be difficult to implement" -- concerns
hardware cost; this software model charges no cycle penalty for the
computation itself, so our results are generous to [8], like the paper's
treatment of damping's issue-queue changes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import PowerSupplyConfig, ProcessorConfig
from repro.core.controller import NoiseController
from repro.errors import ConfigurationError
from repro.power.integrator import HeunIntegrator
from repro.uarch.pipeline import ControlDirectives, NO_CONTROL

__all__ = ["ConvolutionController"]


class ConvolutionController(NoiseController):
    """Model-based voltage prediction from estimated current (ref [8])."""

    name = "convolution"

    def __init__(
        self,
        supply_config: PowerSupplyConfig,
        processor_config: ProcessorConfig,
        guard_band_fraction: float = 0.6,
        lookahead_cycles: int = 12,
        estimate_relative_error: float = 0.0,
        estimate_offset_amps: float = 0.0,
        estimate_gain: float = 1.0,
        hold_cycles: int = 5,
        seed: Optional[int] = 0,
    ):
        if not 0.0 < guard_band_fraction < 1.0:
            raise ConfigurationError("guard_band_fraction must be in (0, 1)")
        if lookahead_cycles < 0:
            raise ConfigurationError("lookahead_cycles must be non-negative")
        if estimate_relative_error < 0:
            raise ConfigurationError("estimate_relative_error must be >= 0")
        if estimate_gain <= 0:
            raise ConfigurationError("estimate_gain must be positive")
        if hold_cycles < 1:
            raise ConfigurationError("hold_cycles must be at least 1")
        self.supply_config = supply_config
        self.processor_config = processor_config
        self.guard_volts = (
            guard_band_fraction * supply_config.noise_margin_volts
        )
        self.lookahead_cycles = lookahead_cycles
        self.estimate_relative_error = estimate_relative_error
        self.estimate_offset_amps = estimate_offset_amps
        #: systematic multiplicative error of the a-priori estimates: a gain
        #: below 1 models the under-estimation the paper warns about ("it is
        #: hard to obtain accurate current estimates") -- the model then
        #: under-predicts voltage swings and reacts too late or not at all
        self.estimate_gain = estimate_gain
        self.hold_cycles = hold_cycles
        self._rng = (
            np.random.default_rng(seed) if estimate_relative_error else None
        )
        self._model = HeunIntegrator(supply_config)
        self._model.reset(processor_config.min_current_amps)
        self._last_estimate = processor_config.min_current_amps
        self._mode = 0
        self._hold_until = -1
        self._low_directives = ControlDirectives(
            stall_fetch=True, stall_issue=True
        )
        self._high_directives = ControlDirectives(
            current_floor_amps=processor_config.medium_current_amps
        )
        self.response_cycles = 0
        self.projections = 0

    # ------------------------------------------------------------------
    def _estimate(self, true_current: float) -> float:
        estimate = true_current * self.estimate_gain + self.estimate_offset_amps
        if self._rng is not None:
            estimate += true_current * self._rng.uniform(
                -self.estimate_relative_error, self.estimate_relative_error
            )
        return estimate

    def _projected_extreme(self) -> float:
        """Worst |voltage| over the lookahead with current held constant."""
        self.projections += 1
        probe = HeunIntegrator(self.supply_config)
        probe.state = self._model.state.copy()
        correction = self.supply_config.resistance_ohms * self._last_estimate
        worst = probe.state.voltage + correction
        extreme = abs(worst)
        signed = worst
        for _ in range(self.lookahead_cycles):
            raw = probe.step(self._last_estimate)
            reported = raw + correction
            if abs(reported) > extreme:
                extreme = abs(reported)
                signed = reported
        return signed

    # ------------------------------------------------------------------
    def observe(
        self, cycle: int, current_amps: float, voltage_volts: float, stats=None
    ) -> None:
        estimate = self._estimate(current_amps)
        self._last_estimate = estimate
        raw = self._model.step(estimate)
        reported = raw + self.supply_config.resistance_ohms * estimate
        # Arm the (more expensive) projection only when the model voltage is
        # already a good fraction of the guard band.
        if abs(reported) > 0.6 * self.guard_volts:
            reported = self._projected_extreme()
        if reported < -self.guard_volts:
            self._mode = -1
            self._hold_until = cycle + self.hold_cycles
        elif reported > self.guard_volts:
            self._mode = 1
            self._hold_until = cycle + self.hold_cycles
        elif cycle >= self._hold_until:
            self._mode = 0

    def directives(self, cycle: int) -> ControlDirectives:
        if self._mode == 0:
            return NO_CONTROL
        self.response_cycles += 1
        return self._low_directives if self._mode < 0 else self._high_directives

    # ------------------------------------------------------------------
    @property
    def response_cycle_fractions(self) -> dict:
        return {
            "first_level_cycles": 0,
            "second_level_cycles": self.response_cycles,
        }
