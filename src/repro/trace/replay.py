"""Replay a recorded current trace through the supply/detector stages.

:class:`ReplaySimulation` is a :class:`~repro.sim.simulation.Simulation`
whose "processor" is a stub that deals out the recorded per-cycle currents
and re-derives the energy accounting, skipping the uarch pipeline (the
dominant cost of a run) entirely.  Everything downstream -- the supply
recurrence, violation tracking, detector/controller observation, metrics
harvesting -- is the *real* simulation code, including the vectorized
kernel fast path, so a replayed result is bit-identical to a full run of
the same front end.

Replay is only sound for controllers whose directive schedule is a pure
function of the cycle index (:attr:`NoiseController.feedback_free`): the
recorded trace embeds the schedule's effect on the processor, so a
controller that reacts to what it observes would need the pipeline in the
loop.  :func:`schedule_token` is the gate -- ``None`` means "this
controller cannot replay", anything else names the schedule inside the
store key.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.controller import NoiseController, NullController
from repro.errors import TraceStoreError
from repro.power.supply import PowerSupply
from repro.sim.simulation import Simulation
from repro.trace.store import TracePayload

__all__ = ["ReplayFrontEnd", "ReplaySimulation", "schedule_token"]


def schedule_token(controller: Optional[NoiseController]) -> Optional[str]:
    """Name the controller's directive schedule, or ``None`` if unreplayable.

    ``NullController`` (every base cell) is the ``"null"`` schedule.  Other
    feedback-free controllers may opt in by exposing a non-empty string
    attribute ``directive_schedule_token`` that changes whenever their
    directive schedule changes; declaring one also promises that
    ``observe`` tolerates ``stats=None`` (the pipeline is skipped, so
    there are no per-cycle stats to deliver) without altering any
    reported statistic -- which :attr:`NoiseController.feedback_free`
    already requires.  Controllers that close a feedback loop return
    ``None`` and always run the full simulation.
    """
    if controller is None or type(controller) is NullController:
        return "null"
    if not getattr(controller, "feedback_free", False):
        return None
    token = getattr(controller, "directive_schedule_token", None)
    if isinstance(token, str) and token:
        return f"declared:{token}"
    return None


class ReplayFrontEnd:
    """Stand-in for :class:`~repro.uarch.processor.Processor` during replay.

    Re-derives the energy ledger from the recorded currents with the exact
    accumulation the power model uses (``energy += amps * vdd *
    cycle_seconds``, in trace order, from zero), so the ledger is
    bit-identical for *any* supply the replay attaches -- recorded traces
    are supply-independent and one record serves every RLC variant.
    Committed-instruction counts are integers carried verbatim in the
    payload; phantom energy is identically zero (captures with phantom
    energy are never recorded, see :class:`~repro.trace.store.TraceCapture`).
    """

    def __init__(self, payload: TracePayload):
        self.payload = payload
        self._vdd = 1.0
        self._cycle_seconds = 1e-10
        self.total_energy_joules = 0.0
        self.committed_instructions = 0
        self.phantom_energy_joules = 0.0

    @property
    def power(self) -> "ReplayFrontEnd":
        # Simulation only uses processor.power for attach_supply.
        return self

    def attach_supply(self, vdd_volts: float, cycle_seconds: float) -> None:
        self._vdd = vdd_volts
        self._cycle_seconds = cycle_seconds

    def _accumulate(self, currents: List[float]) -> None:
        energy = self.total_energy_joules
        vdd = self._vdd
        cycle_seconds = self._cycle_seconds
        for amps in currents:
            energy += amps * vdd * cycle_seconds
        self.total_energy_joules = energy

    def advance_to_boundary(self) -> None:
        payload = self.payload
        self._accumulate(payload.currents[:payload.warmup_cycles])
        self.committed_instructions = payload.instructions_warmup

    def advance_to_end(self) -> None:
        payload = self.payload
        self._accumulate(payload.currents[payload.warmup_cycles:])
        self.committed_instructions = payload.instructions_total


class ReplaySimulation(Simulation):
    """Feed a recorded trace to the supply/controller stages, bit-exactly.

    The kernel-vectorized path and the scalar loop are both supported:
    a plain :class:`PowerSupply` under an enabled kernel takes
    ``run_supply`` exactly as a full simulation would, while overlay
    supplies (e.g. a :class:`~repro.faults.attacker.ResonantAttacker`
    wrap) and ``REPRO_KERNEL=0`` runs use a per-cycle loop that mirrors
    ``Simulation._scalar_cycle_loop`` minus the processor step.  Errors
    the supply would raise mid-run (:class:`~repro.errors.FaultError`
    guards, overlay faults) surface at the same cycle as in a full run.
    """

    def __init__(
        self,
        payload: TracePayload,
        supply: PowerSupply,
        controller: Optional[NoiseController] = None,
        record: bool = False,
        benchmark: str = "workload",
    ):
        super().__init__(
            ReplayFrontEnd(payload),
            supply,
            controller=controller,
            record=record,
            benchmark=benchmark,
            warmup_cycles=payload.warmup_cycles,
        )
        self._payload = payload
        if schedule_token(self.controller) is None:
            raise TraceStoreError(
                f"controller {self.controller.name!r} closes a feedback "
                f"loop (or declares no schedule token); it cannot replay "
                f"a recorded trace"
            )

    def run(self, n_cycles: int):
        if n_cycles != self._payload.n_cycles:
            raise TraceStoreError(
                f"recorded trace covers {self._payload.n_cycles} measured "
                f"cycles; asked to replay {n_cycles}"
            )
        return super().run(n_cycles)

    # -- kernel fast path: the collect stage reads the payload instead of
    # stepping the pipeline; _kernel_advance_supply/_kernel_boundary/
    # _kernel_deliver/_assemble_result are inherited unchanged.
    def _kernel_collect(self, n_cycles: int):
        front_end = self.processor
        controller = self.controller
        currents = self._payload.currents
        front_end.advance_to_boundary()
        snapshot = self._snapshot()
        front_end.advance_to_end()
        if type(controller) is NullController:
            stats_log = None
        else:
            # Feedback-free declarers get their observe calls (late, as
            # the kernel path always delivers them) with stats=None.
            stats_log = [None] * len(currents)
        return currents, stats_log, snapshot

    # -- scalar path: REPRO_KERNEL=0 or an overlay-wrapped supply.
    def _scalar_cycle_loop(self, n_cycles: int) -> dict:
        front_end = self.processor
        supply = self.supply
        controller = self.controller
        currents = self._payload.currents
        record = self.record
        warmup = self.warmup_cycles
        observe = (
            None if type(controller) is NullController else controller.observe
        )
        snapshot = self._snapshot()
        for cycle in range(warmup + n_cycles):
            if cycle == warmup:
                reset_tracking = getattr(
                    supply, "reset_violation_tracking", None
                )
                if reset_tracking is not None:
                    reset_tracking()
                front_end.advance_to_boundary()
                snapshot = self._snapshot()
            amps = currents[cycle]
            voltage = supply.step(amps)
            if observe is not None:
                observe(cycle, amps, voltage, None)
            if record and cycle >= warmup:
                self.currents.append(amps)
                self.voltages.append(voltage)
        front_end.advance_to_end()
        return snapshot
