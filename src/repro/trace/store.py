"""Content-addressed per-cycle current-trace store (ROADMAP item 2).

The design-space sweeps explore detector thresholds, response policies and
supply RLC variants -- but for a feedback-free controller the per-cycle
current trace is a pure function of the *front end*: workload profile,
seed, instruction budget, processor config, cycle counts and any supply
overlay that perturbs what the processor sees.  This module captures that
trace once per front-end key and lets later cells replay it, following the
record / guard / fallback speculation idiom: record on the first (training)
run, guard on a digest of the front-end-relevant config at reuse, and fall
back to full simulation on any mismatch -- a guard miss costs time, never
correctness.

Layout of a store rooted at ``root/``::

    root/objects/<content_sha256>.json   the trace itself, addressed by the
                                         SHA-256 of its canonical float.hex
                                         encoding (same algorithm as the
                                         golden fingerprints)
    root/index/<config_digest>.json      front-end key digest -> content
                                         address + integrity metadata

Writes follow the v2 checkpoint durability discipline: unique temp file in
the target directory, fsync, atomic ``os.replace``, directory fsync.
Corrupt or mismatched entries are quarantined to ``<file>.corrupt-<n>`` and
reported as incidents; the caller then re-simulates and (on success)
re-records.  Nothing in here imports the simulator -- the replay side lives
in :mod:`repro.trace.replay`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import TraceStoreError
from repro.obs import metrics as obs_metrics
from repro.obs.log import warn_once

__all__ = [
    "STORE_VERSION",
    "TraceKey",
    "TracePayload",
    "TraceCapture",
    "TraceStore",
    "canonical_digest",
    "overlay_token",
    "stream_digest",
]

#: Bump on any change to the key schema or payload encoding: a version
#: mismatch is a guard miss (old entries are re-recorded), never a crash.
STORE_VERSION = 1

# Patchable seam, mirroring runner._fsync, so chaos tests can inject
# ENOSPC/EIO at the durability boundary.
_fsync = os.fsync


def stream_digest(values: Iterable) -> str:
    """Canonical SHA-256 of a float stream: newline-joined ``float.hex``.

    Deliberately the same algorithm as the golden fingerprints
    (:func:`repro.oracles.golden.stream_digest` with ``kind="float"``) --
    two streams hash equal iff they are bit-identical -- duplicated here
    so the store does not import the oracle package.  A conformance test
    asserts the two implementations agree.
    """
    lines = [float(v).hex() for v in values]
    return hashlib.sha256("\n".join(lines).encode("ascii")).hexdigest()


def _hexify(obj):
    """Recursively replace floats with their exact hex encoding.

    Canonical-JSON digests must not depend on repr rounding, so every
    float (including ones embedded in dataclass-derived dicts) is encoded
    via ``float.hex`` before serialization.
    """
    if isinstance(obj, float):
        return float(obj).hex()
    if isinstance(obj, dict):
        return {k: _hexify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_hexify(v) for v in obj]
    return obj


def canonical_digest(obj) -> str:
    """SHA-256 of the canonical (sorted-key, compact, float.hex) JSON."""
    payload = json.dumps(_hexify(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def overlay_token(supply_transform) -> Optional[str]:
    """Guard token for a supply overlay (attacker wrap etc.).

    An overlay can change what the *processor* experiences only through
    the supply object it wraps; the front end never reads the supply, so
    currents are overlay-independent -- but the overlay still belongs in
    the key defensively: a future overlay that perturbs timing would
    otherwise silently alias a clean trace.  Returns ``"none"`` without a
    transform, a pickle digest for picklable ones, and ``None`` (meaning
    "replay not available") when the transform cannot be fingerprinted.
    """
    if supply_transform is None:
        return "none"
    try:
        blob = pickle.dumps(supply_transform, protocol=4)
    except Exception:
        return None
    return "pickle-sha256:" + hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class TraceKey:
    """Digest-able description of everything that shapes the current trace.

    Supply parameters are deliberately absent: for a feedback-free
    controller the processor never observes the supply, so one recorded
    trace serves every supply/RLC/detector/response variant of the same
    front end -- that reuse across the design-space axes is the entire
    speedup.  The controller participates only through ``schedule``, a
    token describing its directive schedule (see
    :func:`repro.trace.replay.schedule_token`).
    """

    benchmark: str
    workload: Dict[str, Any]
    seed: Optional[int]
    n_instructions: int
    processor: Dict[str, Any]
    n_cycles: int
    warmup_cycles: int
    schedule: str
    overlay: str
    version: int = STORE_VERSION

    def digest(self) -> str:
        return canonical_digest(dataclasses.asdict(self))


@dataclass
class TracePayload:
    """A decoded, integrity-checked store entry ready for replay."""

    content_sha256: str
    config_digest: str
    n_cycles: int
    warmup_cycles: int
    instructions_warmup: int
    instructions_total: int
    currents: List[float]


class TraceCapture:
    """Accumulates the full (warmup + measured) current trace of one run.

    Attached to a :class:`~repro.sim.simulation.Simulation` as
    ``sim.capture``; the scalar loop and the kernel collect stage feed
    ``currents``, and ``finish`` runs the replayability proof before the
    capture may be persisted: the recorded trace, re-accumulated exactly
    the way the power model accumulates energy, must reproduce the run's
    boundary and end energies bit-for-bit, and the run must carry no
    phantom energy (phantom current is not derivable from the trace).  A
    capture that fails the proof is simply not recorded -- the run's own
    result is unaffected.
    """

    def __init__(self, key: TraceKey):
        self.key = key
        self.currents: List[float] = []
        self.completed = False
        self.instructions_warmup = 0
        self.instructions_total = 0

    def finish(
        self,
        boundary_snapshot: dict,
        end_snapshot: dict,
        vdd_volts: float,
        cycle_seconds: float,
    ) -> bool:
        """Validate the capture against the finished run; returns success."""
        warmup = self.key.warmup_cycles
        n_cycles = self.key.n_cycles
        if len(self.currents) != warmup + n_cycles:
            return False
        if end_snapshot["phantom"] != 0.0:
            return False
        energy = 0.0
        for i, amps in enumerate(self.currents):
            if i == warmup and energy != boundary_snapshot["energy"]:
                return False
            energy += amps * vdd_volts * cycle_seconds
        if energy != end_snapshot["energy"]:
            return False
        self.instructions_warmup = boundary_snapshot["instructions"]
        self.instructions_total = end_snapshot["instructions"]
        self.completed = True
        return True


def _fsync_directory(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        _fsync(fd)
    finally:
        os.close(fd)


class TraceStore:
    """Durable content-addressed store with guard-on-load semantics.

    Any load-time problem -- missing object, version or digest mismatch,
    truncation, bit flips, malformed floats -- degrades to a ``None``
    return (caller falls back to full simulation) plus a quarantined file
    and an incident record.  ``stats`` keeps plain-int counters for tests;
    the same counts feed the active obs metrics registry when one is
    installed.
    """

    def __init__(self, root: str, max_cached_payloads: int = 8):
        if max_cached_payloads < 0:
            raise TraceStoreError("max_cached_payloads must be non-negative")
        self.root = str(root)
        self.objects_dir = os.path.join(self.root, "objects")
        self.index_dir = os.path.join(self.root, "index")
        self.max_cached_payloads = max_cached_payloads
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "guard_failures": 0,
            "fallbacks": 0,
            "records": 0,
        }
        self.incidents: List[dict] = []
        self._cache: Dict[str, TracePayload] = {}
        self._context_label: Optional[str] = None

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _count(self, stat: str, n: int = 1) -> None:
        self.stats[stat] += n
        registry = obs_metrics.active_registry()
        if registry is not None:
            registry.counter(
                f"trace_store_{stat}_total",
                help=f"trace store {stat.replace('_', ' ')}",
            ).inc(n)

    def _incident(self, kind: str, path: str, reason: str) -> None:
        self.incidents.append({
            "error_type": "TraceStoreCorrupt",
            "kind": kind,
            "path": path,
            "reason": reason,
            "benchmark": self._context_label or "trace-store",
        })

    def _quarantine(self, path: str) -> None:
        """Move a bad entry aside (never deleted: evidence for forensics)."""
        for attempt in range(100):
            target = f"{path}.corrupt-{attempt}"
            if not os.path.exists(target):
                try:
                    os.replace(path, target)
                except OSError:
                    pass
                return

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _index_path(self, digest: str) -> str:
        return os.path.join(self.index_dir, f"{digest}.json")

    def _object_path(self, sha: str) -> str:
        return os.path.join(self.objects_dir, f"{sha}.json")

    def contains(self, key: TraceKey) -> bool:
        """Cheap existence probe (no integrity check) for prefetch planning."""
        return os.path.exists(self._index_path(key.digest()))

    # ------------------------------------------------------------------
    # load (guarded)
    # ------------------------------------------------------------------
    def load(
        self, key: TraceKey, label: Optional[str] = None
    ) -> Optional[TracePayload]:
        """Return the recorded trace for ``key``, or ``None`` on any doubt.

        ``label`` (usually the benchmark name) tags any incident this
        load records, so sweep summaries can attribute the fallback.
        """
        self._context_label = label
        digest = key.digest()
        cached = self._cache.get(digest)
        if cached is not None:
            self._count("hits")
            return cached
        index_path = self._index_path(digest)
        try:
            with open(index_path, "r", encoding="utf-8") as fh:
                index = json.load(fh)
        except FileNotFoundError:
            self._count("misses")
            return None
        except (OSError, ValueError) as exc:
            return self._guard_failure(
                "index", index_path, f"unreadable index: {exc}", quarantine=True
            )
        payload = self._validate_index(key, digest, index_path, index)
        if payload is None:
            return None
        self._count("hits")
        if self.max_cached_payloads:
            if len(self._cache) >= self.max_cached_payloads:
                self._cache.pop(next(iter(self._cache)), None)
            self._cache[digest] = payload
        return payload

    def _guard_failure(
        self, kind: str, path: str, reason: str, quarantine: bool = False
    ) -> None:
        self._count("guard_failures")
        self._count("fallbacks")
        self._incident(kind, path, reason)
        if quarantine:
            self._quarantine(path)
        warn_once(
            f"trace store entry rejected ({reason}); falling back "
            f"to full simulation: {path}",
            key=f"trace-store-guard:{path}:{reason}",
        )
        return None

    def _validate_index(
        self, key: TraceKey, digest: str, index_path: str, index
    ) -> Optional[TracePayload]:
        if not isinstance(index, dict):
            return self._guard_failure(
                "index", index_path, "index is not an object", quarantine=True
            )
        if index.get("version") != STORE_VERSION:
            return self._guard_failure(
                "index", index_path,
                f"index version {index.get('version')!r} != {STORE_VERSION}",
                quarantine=True,
            )
        if index.get("config_digest") != digest:
            # The wrong-digest case: an entry filed under this key that
            # claims to describe a different front end.
            return self._guard_failure(
                "index", index_path,
                "config digest mismatch (entry describes a different "
                "front end)",
                quarantine=True,
            )
        sha = index.get("content_sha256")
        if not (isinstance(sha, str) and len(sha) == 64
                and all(c in "0123456789abcdef" for c in sha)):
            return self._guard_failure(
                "index", index_path, "malformed content address",
                quarantine=True,
            )
        object_path = self._object_path(sha)
        try:
            with open(object_path, "r", encoding="utf-8") as fh:
                obj = json.load(fh)
        except FileNotFoundError:
            return self._guard_failure(
                "object", object_path, "content object missing",
            )
        except (OSError, ValueError) as exc:
            return self._guard_failure(
                "object", object_path, f"unreadable object: {exc}",
                quarantine=True,
            )
        return self._validate_object(key, digest, sha, object_path, obj)

    def _validate_object(
        self, key: TraceKey, digest: str, sha: str, object_path: str, obj
    ) -> Optional[TracePayload]:
        if not isinstance(obj, dict) or obj.get("version") != STORE_VERSION:
            return self._guard_failure(
                "object", object_path, "bad object version", quarantine=True
            )
        if obj.get("config_digest") != digest:
            return self._guard_failure(
                "object", object_path,
                "object recorded for a different front end",
                quarantine=True,
            )
        hex_lines = obj.get("currents_hex")
        n_cycles = obj.get("n_cycles")
        warmup = obj.get("warmup_cycles")
        instructions_warmup = obj.get("instructions_warmup")
        instructions_total = obj.get("instructions_total")
        if (not isinstance(hex_lines, list)
                or not all(isinstance(line, str) for line in hex_lines)
                or n_cycles != key.n_cycles
                or warmup != key.warmup_cycles
                or not isinstance(instructions_warmup, int)
                or not isinstance(instructions_total, int)):
            return self._guard_failure(
                "object", object_path, "object metadata malformed",
                quarantine=True,
            )
        if len(hex_lines) != warmup + n_cycles:
            return self._guard_failure(
                "object", object_path,
                f"trace truncated: {len(hex_lines)} samples, "
                f"expected {warmup + n_cycles}",
                quarantine=True,
            )
        recomputed = hashlib.sha256(
            "\n".join(hex_lines).encode("ascii", errors="replace")
        ).hexdigest()
        if recomputed != sha:
            return self._guard_failure(
                "object", object_path,
                "content hash mismatch (bit flip or tamper)",
                quarantine=True,
            )
        try:
            currents = [float.fromhex(line) for line in hex_lines]
        except (TypeError, ValueError) as exc:
            return self._guard_failure(
                "object", object_path, f"malformed sample: {exc}",
                quarantine=True,
            )
        return TracePayload(
            content_sha256=sha,
            config_digest=digest,
            n_cycles=n_cycles,
            warmup_cycles=warmup,
            instructions_warmup=instructions_warmup,
            instructions_total=instructions_total,
            currents=currents,
        )

    # ------------------------------------------------------------------
    # save (durable)
    # ------------------------------------------------------------------
    def save(self, capture: TraceCapture) -> bool:
        """Persist a completed capture; returns whether it is now stored.

        Storage failures are non-fatal by design (the sweep already has
        its full-simulation result); they warn and return ``False``.
        """
        if not capture.completed:
            raise TraceStoreError(
                "refusing to store an unvalidated capture; call "
                "TraceCapture.finish first"
            )
        key = capture.key
        digest = key.digest()
        hex_lines = [float(v).hex() for v in capture.currents]
        sha = hashlib.sha256("\n".join(hex_lines).encode("ascii")).hexdigest()
        obj = {
            "version": STORE_VERSION,
            "config_digest": digest,
            "content_sha256": sha,
            "n_cycles": key.n_cycles,
            "warmup_cycles": key.warmup_cycles,
            "instructions_warmup": capture.instructions_warmup,
            "instructions_total": capture.instructions_total,
            "currents_hex": hex_lines,
        }
        index = {
            "version": STORE_VERSION,
            "config_digest": digest,
            "content_sha256": sha,
            "benchmark": key.benchmark,
            "seed": key.seed,
            "n_cycles": key.n_cycles,
            "warmup_cycles": key.warmup_cycles,
            "schedule": key.schedule,
            "overlay": key.overlay,
        }
        try:
            os.makedirs(self.objects_dir, exist_ok=True)
            os.makedirs(self.index_dir, exist_ok=True)
            object_path = self._object_path(sha)
            # Content-addressed objects are immutable: an existing file
            # with this name already holds these bytes.
            if not os.path.exists(object_path):
                self._atomic_write_json(object_path, obj)
            self._atomic_write_json(self._index_path(digest), index)
        except OSError as exc:
            warn_once(
                f"trace store write failed ({exc}); this cell will "
                f"re-simulate until the store is writable",
                key=f"trace-store-write:{self.root}",
            )
            return False
        self._count("records")
        return True

    def _atomic_write_json(self, path: str, payload: dict) -> None:
        """v2 checkpoint discipline: temp file + fsync + replace + dir fsync.

        The temp name carries the pid so concurrent pool/dist workers
        recording the same key never collide mid-write; the final
        ``os.replace`` is atomic, and content addressing makes racing
        writers idempotent (they write identical bytes).
        """
        directory = os.path.dirname(path)
        tmp_path = f"{path}.tmp-{os.getpid()}"
        data = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        try:
            with open(tmp_path, "w", encoding="utf-8") as fh:
                fh.write(data)
                fh.flush()
                _fsync(fh.fileno())
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        _fsync_directory(directory)

    # ------------------------------------------------------------------
    # incident draining (for sweep summaries)
    # ------------------------------------------------------------------
    def drain_incidents(self) -> List[dict]:
        drained = self.incidents
        self.incidents = []
        return drained
