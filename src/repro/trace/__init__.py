"""Trace record/replay fast path (ROADMAP item 2).

Record the per-cycle current trace of a front end once, content-address it
in a durable store, and replay it through detector/supply variants with a
config-digest guard -- full simulation is always the fallback, so a store
can be cold, corrupt or mismatched without ever changing a result.
"""

from repro.trace.replay import ReplayFrontEnd, ReplaySimulation, schedule_token
from repro.trace.store import (
    STORE_VERSION,
    TraceCapture,
    TraceKey,
    TracePayload,
    TraceStore,
    canonical_digest,
    overlay_token,
    stream_digest,
)

__all__ = [
    "STORE_VERSION",
    "ReplayFrontEnd",
    "ReplaySimulation",
    "TraceCapture",
    "TraceKey",
    "TracePayload",
    "TraceStore",
    "canonical_digest",
    "overlay_token",
    "schedule_token",
    "stream_digest",
]
