"""Fault injection: seeded, composable fault models for robustness studies.

The subsystem has two halves:

* :mod:`repro.faults.models` -- sensor-path faults (stuck-at, dropped
  samples, burst noise, drift, quantizer saturation, reporting-delay
  jitter) chained onto a :class:`~repro.core.sensor.CurrentSensor` by
  :class:`FaultySensor`;
* :mod:`repro.faults.attacker` -- the adversarial resonant attacker, as a
  power-supply current injector and as a workload mutator.

A third, harness-facing half lives in :mod:`repro.faults.chaos`:
process-level injectors (worker kills, hangs, checkpoint corruption,
fsync failures) used by the crash-safety chaos harness rather than the
sensing-path fault campaigns.

Every model is deterministic given its seed; the
``ablation-fault-injection`` campaign (:mod:`repro.experiments.faults`)
sweeps their intensities and reports how detector coverage degrades.
"""

from repro.faults.attacker import ResonantAttacker, resonant_attack_profile
from repro.faults.chaos import (
    HangAlways,
    HangOnce,
    KillWorkerOnce,
    flip_bit,
    inject_fsync_faults,
    truncate_file,
)
from repro.faults.models import (
    BurstNoiseFault,
    DelayJitterFault,
    DriftFault,
    DroppedSampleFault,
    FaultySensor,
    SaturationFault,
    SensorFault,
    StuckAtFault,
)

__all__ = [
    "SensorFault",
    "StuckAtFault",
    "DroppedSampleFault",
    "BurstNoiseFault",
    "DriftFault",
    "SaturationFault",
    "DelayJitterFault",
    "FaultySensor",
    "ResonantAttacker",
    "resonant_attack_profile",
    "KillWorkerOnce",
    "HangOnce",
    "HangAlways",
    "truncate_file",
    "flip_bit",
    "inject_fsync_faults",
]
