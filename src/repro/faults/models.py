"""Composable, seeded sensor-fault models (the fault taxonomy).

The paper's sensitivity discussion (Sections 2.1.4 and 5.2) varies sensor
precision and reporting delay; this module goes further and models the ways
a real on-die current sensor *breaks*: readings stick, samples drop, noise
bursts, the quantizer saturates, the report path jitters, and slow drift
accumulates.  Every model is:

* **composable** -- a :class:`FaultySensor` chains any number of faults, in
  order, after the base :class:`~repro.core.sensor.CurrentSensor` has
  quantized/delayed the true current;
* **seeded** -- all randomness comes from a ``numpy`` generator created
  from the model's own seed, so a fault sequence is a pure function of
  ``(seed, cycle)`` and every campaign run is exactly reproducible;
* **resettable** -- ``reset()`` restores the initial state (fresh RNG,
  cleared hold/delay state), matching ``CurrentSensor.reset``.

See ``docs/robustness.md`` for the full taxonomy and the intensity mapping
used by the ``ablation-fault-injection`` campaign.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Optional, Sequence

import numpy as np

from repro.core.sensor import CurrentSensor
from repro.errors import ConfigurationError

__all__ = [
    "SensorFault",
    "StuckAtFault",
    "DroppedSampleFault",
    "BurstNoiseFault",
    "DriftFault",
    "SaturationFault",
    "DelayJitterFault",
    "FaultySensor",
]


class SensorFault(abc.ABC):
    """One transformation on the sensed-current report path.

    Subclasses implement :meth:`apply`; per-fault random state lives in
    ``self._rng`` which :meth:`reset` rebuilds from the stored seed.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    @abc.abstractmethod
    def apply(self, cycle: int, reading_amps: float) -> float:
        """Transform this cycle's sensor reading."""

    def reset(self) -> None:
        """Restore the initial (pre-run) fault state."""
        self._rng = np.random.default_rng(self.seed)


class StuckAtFault(SensorFault):
    """The sensor output sticks at a fixed value for a window of cycles.

    Models a latched comparator or a stuck report wire: from
    ``start_cycle`` on (for ``duration_cycles`` cycles, or forever when
    None) every reading is replaced by ``value_amps``.
    """

    def __init__(
        self,
        value_amps: float,
        start_cycle: int = 0,
        duration_cycles: Optional[int] = None,
        seed: int = 0,
    ):
        if start_cycle < 0:
            raise ConfigurationError("start_cycle must be non-negative")
        if duration_cycles is not None and duration_cycles <= 0:
            raise ConfigurationError(
                "duration_cycles must be positive when set"
            )
        super().__init__(seed)
        self.value_amps = value_amps
        self.start_cycle = start_cycle
        self.duration_cycles = duration_cycles

    def apply(self, cycle: int, reading_amps: float) -> float:
        if cycle < self.start_cycle:
            return reading_amps
        if (
            self.duration_cycles is not None
            and cycle >= self.start_cycle + self.duration_cycles
        ):
            return reading_amps
        return self.value_amps


class DroppedSampleFault(SensorFault):
    """Samples drop with probability ``p``; the report holds its last value.

    Models lost report-bus transfers with a last-value-hold register at the
    receiver (the hardware-natural recovery).  The first sample is never
    dropped (there is nothing to hold yet).
    """

    def __init__(self, drop_probability: float, seed: int = 0):
        if not 0.0 <= drop_probability <= 1.0:
            raise ConfigurationError("drop_probability must be in [0, 1]")
        super().__init__(seed)
        self.drop_probability = drop_probability
        self._held: Optional[float] = None

    def apply(self, cycle: int, reading_amps: float) -> float:
        if (
            self._held is not None
            and self._rng.random() < self.drop_probability
        ):
            return self._held
        self._held = reading_amps
        return reading_amps

    def reset(self) -> None:
        super().reset()
        self._held = None


class BurstNoiseFault(SensorFault):
    """Uniform noise bursts: quiet normally, loud for short windows.

    Each quiet cycle a burst starts with ``burst_probability``; during a
    burst of ``burst_length_cycles`` cycles the reading gains uniform noise
    of ``amplitude_pp_amps`` peak-to-peak (e.g. coupling from a neighbouring
    aggressor net).
    """

    def __init__(
        self,
        amplitude_pp_amps: float,
        burst_probability: float = 0.01,
        burst_length_cycles: int = 50,
        seed: int = 0,
    ):
        if amplitude_pp_amps < 0:
            raise ConfigurationError("amplitude_pp_amps must be non-negative")
        if not 0.0 <= burst_probability <= 1.0:
            raise ConfigurationError("burst_probability must be in [0, 1]")
        if burst_length_cycles <= 0:
            raise ConfigurationError("burst_length_cycles must be positive")
        super().__init__(seed)
        self.amplitude_pp_amps = amplitude_pp_amps
        self.burst_probability = burst_probability
        self.burst_length_cycles = burst_length_cycles
        self._remaining = 0

    def apply(self, cycle: int, reading_amps: float) -> float:
        if self._remaining > 0:
            self._remaining -= 1
            half = 0.5 * self.amplitude_pp_amps
            return reading_amps + float(self._rng.uniform(-half, half))
        if self._rng.random() < self.burst_probability:
            self._remaining = self.burst_length_cycles
        return reading_amps

    def reset(self) -> None:
        super().reset()
        self._remaining = 0


class DriftFault(SensorFault):
    """Slow additive offset growing linearly with time.

    Models thermal drift of the sensing reference: the reading gains
    ``drift_amps_per_kilocycle / 1000`` amps per cycle, optionally clamped
    at ``max_offset_amps``.
    """

    def __init__(
        self,
        drift_amps_per_kilocycle: float,
        max_offset_amps: Optional[float] = None,
        seed: int = 0,
    ):
        if max_offset_amps is not None and max_offset_amps < 0:
            raise ConfigurationError("max_offset_amps must be non-negative")
        super().__init__(seed)
        self.drift_amps_per_kilocycle = drift_amps_per_kilocycle
        self.max_offset_amps = max_offset_amps

    def apply(self, cycle: int, reading_amps: float) -> float:
        offset = self.drift_amps_per_kilocycle * max(cycle, 0) / 1000.0
        if self.max_offset_amps is not None:
            limit = self.max_offset_amps
            offset = max(-limit, min(limit, offset))
        return reading_amps + offset


class SaturationFault(SensorFault):
    """Quantizer saturation: readings clip at the sensor's full scale.

    An undersized sensor range reports every current above
    ``full_scale_amps`` as exactly full scale (and clips below
    ``min_amps``), flattening the very peaks detection relies on.
    """

    def __init__(
        self, full_scale_amps: float, min_amps: float = 0.0, seed: int = 0
    ):
        if full_scale_amps <= min_amps:
            raise ConfigurationError("full_scale_amps must exceed min_amps")
        super().__init__(seed)
        self.full_scale_amps = full_scale_amps
        self.min_amps = min_amps

    def apply(self, cycle: int, reading_amps: float) -> float:
        return max(self.min_amps, min(self.full_scale_amps, reading_amps))


class DelayJitterFault(SensorFault):
    """Transient reporting-delay jitter.

    With probability ``jitter_probability`` a cycle's report is replaced by
    a stale one from 1..``max_extra_delay_cycles`` cycles ago (uniformly
    chosen), modelling contention on a shared report bus.  Until the stale
    buffer fills, the oldest available reading is used.
    """

    def __init__(
        self,
        max_extra_delay_cycles: int,
        jitter_probability: float,
        seed: int = 0,
    ):
        if max_extra_delay_cycles <= 0:
            raise ConfigurationError("max_extra_delay_cycles must be positive")
        if not 0.0 <= jitter_probability <= 1.0:
            raise ConfigurationError("jitter_probability must be in [0, 1]")
        super().__init__(seed)
        self.max_extra_delay_cycles = max_extra_delay_cycles
        self.jitter_probability = jitter_probability
        self._recent = deque(maxlen=max_extra_delay_cycles + 1)

    def apply(self, cycle: int, reading_amps: float) -> float:
        self._recent.append(reading_amps)
        if self._rng.random() < self.jitter_probability:
            lag = int(self._rng.integers(1, self.max_extra_delay_cycles + 1))
            index = max(len(self._recent) - 1 - lag, 0)
            return self._recent[index]
        return reading_amps

    def reset(self) -> None:
        super().reset()
        self._recent.clear()


class FaultySensor:
    """A :class:`CurrentSensor` with an ordered chain of faults mounted.

    Drop-in replacement for ``CurrentSensor`` wherever one is consumed (the
    tuning controller's ``sensor=`` parameter): the base sensor quantizes /
    delays the true current as usual, then each fault transforms the
    report, in order.  Sequencing matters and is the caller's statement of
    where each fault physically sits (e.g. saturation *after* burst noise
    models an analog disturbance clipped by the quantizer; the reverse
    models digital-side corruption).
    """

    def __init__(
        self,
        faults: Sequence[SensorFault],
        base: Optional[CurrentSensor] = None,
    ):
        for fault in faults:
            if not isinstance(fault, SensorFault):
                raise ConfigurationError(
                    f"faults must be SensorFault instances, got {fault!r}"
                )
        self.base = base if base is not None else CurrentSensor()
        self.faults = tuple(faults)
        self._cycle = -1

    def read(self, true_current_amps: float) -> float:
        """Report this cycle's sensed current with all faults applied."""
        self._cycle += 1
        reading = self.base.read(true_current_amps)
        for fault in self.faults:
            reading = fault.apply(self._cycle, reading)
        return reading

    def reset(self) -> None:
        self.base.reset()
        for fault in self.faults:
            fault.reset()
        self._cycle = -1
