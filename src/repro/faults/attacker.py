"""The adversarial "resonant attacker" (worst-case fault for detection).

The paper's threat is *accidental* resonance; the nastiest fault an
experiment can inject is a *deliberate* one: extra current drawn as a
square wave right at the supply's resonant frequency ``f0``, where the
driving-point impedance peaks (Figure 1(c)) and a small amplitude builds
the largest voltage swing.  Two forms are provided:

* :class:`ResonantAttacker` -- a :class:`~repro.power.supply.PowerSupply`
  wrapper that adds the attack current at the die node, *invisible to the
  on-die current sensors* (they sense core current, not the attacker's);
  the detector must catch the resonance through the core current the
  attack entrains, which is exactly the degraded-input regime the
  fault-injection campaign probes.
* :func:`resonant_attack_profile` -- a workload mutator that rewrites any
  :class:`~repro.uarch.trace.WorkloadProfile` so its oscillation structure
  lands on the resonant period: the program itself becomes the attacker
  (a di/dt virus in the style of the power-virus literature).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.power.rlc import RLCAnalysis
from repro.power.supply import PowerSupply
from repro.uarch.trace import WorkloadProfile

__all__ = ["ResonantAttacker", "resonant_attack_profile"]


class ResonantAttacker:
    """Wrap a power supply; inject a square-wave current at ``f0``.

    The square wave alternates between 0 and ``amplitude_amps`` every half
    ``period_cycles`` (default: the supply's own resonant period), starting
    at ``start_cycle`` with a seed-derived phase, in episodes of
    ``episode_periods`` periods separated by ``gap_cycles`` of quiet (an
    endless attack when ``episode_periods`` is 0).  All other supply
    attributes delegate to the wrapped instance, so the wrapper is
    transparent to the simulation loop and to metrics collection.
    """

    def __init__(
        self,
        supply: PowerSupply,
        amplitude_amps: float,
        period_cycles: Optional[int] = None,
        start_cycle: int = 0,
        episode_periods: int = 0,
        gap_cycles: int = 0,
        seed: int = 0,
    ):
        if amplitude_amps < 0:
            raise ConfigurationError("amplitude_amps must be non-negative")
        if period_cycles is None:
            period_cycles = RLCAnalysis(supply.config).resonant_period_cycles
        if period_cycles < 2:
            raise ConfigurationError("period_cycles must be at least 2")
        if start_cycle < 0:
            raise ConfigurationError("start_cycle must be non-negative")
        if episode_periods < 0 or gap_cycles < 0:
            raise ConfigurationError(
                "episode_periods and gap_cycles must be non-negative"
            )
        self._supply = supply
        self.amplitude_amps = amplitude_amps
        self.period_cycles = period_cycles
        self.start_cycle = start_cycle
        self.episode_periods = episode_periods
        self.gap_cycles = gap_cycles
        self.seed = seed
        self._phase = int(
            np.random.default_rng(seed).integers(0, period_cycles)
        )
        self._attack_cycle = 0
        self.injected_cycles = 0

    def attack_current(self) -> float:
        """The attacker's current draw for the next cycle."""
        if self._attack_cycle < self.start_cycle:
            return 0.0
        position = self._attack_cycle - self.start_cycle + self._phase
        if self.episode_periods:
            episode_span = self.episode_periods * self.period_cycles
            position %= episode_span + self.gap_cycles
            if position >= episode_span:
                return 0.0
        half = self.period_cycles // 2
        high = (position // half) % 2 == 0
        return self.amplitude_amps if high else 0.0

    def step(self, cpu_current: float) -> float:
        injection = self.attack_current()
        if injection:
            self.injected_cycles += 1
        self._attack_cycle += 1
        return self._supply.step(cpu_current + injection)

    def __getattr__(self, name):
        # Everything we do not override (config, violation counters, trace,
        # reset...) behaves exactly like the wrapped supply.
        return getattr(self._supply, name)


def resonant_attack_profile(
    profile: WorkloadProfile,
    supply_config=None,
    ipc_estimate: float = 4.2,
    episode_periods: int = 8,
    gap_instrs: int = 6000,
) -> WorkloadProfile:
    """Mutate a workload so its activity oscillates at the resonant period.

    Rewrites the profile's oscillation structure (keeping its instruction
    mix and memory behaviour) into boosted high-ILP phases alternating with
    short serial chains whose emergent period is the supply's resonant
    period: ``period_instrs = period_cycles * ipc_estimate`` instructions
    per full oscillation.  The mutated program is a worst-case *workload*
    attacker for the given supply.
    """
    from repro.config import TABLE1_SUPPLY

    if ipc_estimate <= 0:
        raise ConfigurationError("ipc_estimate must be positive")
    supply_config = supply_config if supply_config is not None else TABLE1_SUPPLY
    period_cycles = RLCAnalysis(supply_config).resonant_period_cycles
    period_instrs = max(8, round(period_cycles * ipc_estimate))
    low_instrs = max(4, round(period_instrs * 0.12))
    return replace(
        profile,
        description=f"{profile.description} [resonant attacker]",
        osc_kind="serial",
        osc_period_instrs=period_instrs,
        osc_low_instrs=low_instrs,
        osc_jitter_instrs=2,
        osc_boost_ilp=True,
        osc_boost_dep=16,
        osc_episode_periods=episode_periods,
        osc_gap_instrs=gap_instrs,
    )
