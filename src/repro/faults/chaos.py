"""Process-level chaos injectors for the sweep supervision layer.

Where :mod:`repro.faults.models` lies to the *sensors*, this module
attacks the *harness*: supply transforms that SIGKILL or hang the worker
process running a chosen benchmark, file mutilators that truncate or
bit-flip a checkpoint between runs, and an fsync fault injector that
simulates a full or dying disk during checkpoint writes.

Everything here is a plain module-level class or function, so the supply
transforms pickle by qualified name and survive the trip into pool
workers under any multiprocessing start method.  One-shot injectors
coordinate across processes through an exclusive-create marker file:
exactly one process performs the sabotage, every later encounter runs
clean -- which is what lets the chaos harness assert that a disturbed
sweep still converges to byte-identical aggregates.

Used by ``tools/chaos.py`` and ``tests/test_chaos.py``; see
``docs/robustness.md``.
"""

from __future__ import annotations

import contextlib
import errno
import os
import signal
import time
from typing import Callable, Optional

__all__ = [
    "KillWorkerOnce",
    "HangOnce",
    "HangAlways",
    "DropConnectionOnce",
    "PartitionWorkerOnce",
    "DelayResultOnce",
    "DuplicateResultOnce",
    "ComposeTransforms",
    "truncate_file",
    "flip_bit",
    "inject_fsync_faults",
]


class ComposeTransforms:
    """Chain several supply transforms into one (stays picklable).

    Lets a single sweep suffer several independent injectors at once --
    e.g. a delayed result on one benchmark and a duplicated result on
    another.
    """

    def __init__(self, *transforms):
        self.transforms = transforms

    def __call__(self, supply, benchmark: str):
        for transform in self.transforms:
            supply = transform(supply, benchmark)
        return supply


class _SabotagedSupply:
    """Supply proxy that triggers ``action`` once, ``after_cycles`` in."""

    def __init__(self, supply, action: Callable[[], None], after_cycles: int):
        self._supply = supply
        self._action = action
        self._after_cycles = after_cycles
        self._cycles = 0

    def step(self, cpu_current):
        self._cycles += 1
        if self._cycles == self._after_cycles:
            self._action()
        return self._supply.step(cpu_current)

    def __getattr__(self, name):
        return getattr(self._supply, name)


class _OneShotSabotage:
    """Supply transform targeting one benchmark, armed by a marker file.

    The marker is created with ``O_EXCL`` immediately before the sabotage
    fires, so across any number of worker processes exactly one run of
    ``benchmark`` is disturbed; requeued or retried runs find the marker
    and proceed clean.
    """

    def __init__(self, marker_path: str, benchmark: str,
                 after_cycles: int = 400):
        self.marker_path = marker_path
        self.benchmark = benchmark
        self.after_cycles = after_cycles

    def _arm(self) -> bool:
        try:
            fd = os.open(
                self.marker_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def _sabotage(self) -> None:  # pragma: no cover - subclass hook
        raise NotImplementedError

    def _fire(self) -> None:
        if self._arm():
            self._sabotage()

    def __call__(self, supply, benchmark: str):
        if benchmark != self.benchmark:
            return supply
        return _SabotagedSupply(supply, self._fire, self.after_cycles)


class KillWorkerOnce(_OneShotSabotage):
    """SIGKILL the process running ``benchmark``, exactly once.

    In a parallel sweep this simulates an OOM kill mid-cell: the pool
    breaks, the supervisor rebuilds it and requeues the cell, and the
    requeued run (marker present) completes normally.  Never mount this
    on a sequential sweep -- the "worker" would be the parent itself.
    """

    def _sabotage(self) -> None:
        os.kill(os.getpid(), signal.SIGKILL)


class HangOnce(_OneShotSabotage):
    """Stall the first run of ``benchmark`` far past any stale threshold."""

    def __init__(self, marker_path: str, benchmark: str,
                 after_cycles: int = 400, sleep_s: float = 3600.0):
        super().__init__(marker_path, benchmark, after_cycles)
        self.sleep_s = sleep_s

    def _sabotage(self) -> None:
        time.sleep(self.sleep_s)


class HangAlways:
    """Stall *every* run of ``benchmark`` (a deterministically hung cell)."""

    def __init__(self, benchmark: str, after_cycles: int = 400,
                 sleep_s: float = 3600.0):
        self.benchmark = benchmark
        self.after_cycles = after_cycles
        self.sleep_s = sleep_s

    def __call__(self, supply, benchmark: str):
        if benchmark != self.benchmark:
            return supply
        return _SabotagedSupply(
            supply, lambda: time.sleep(self.sleep_s), self.after_cycles
        )


# ----------------------------------------------------------------------
# Network chaos for the distributed backend
# ----------------------------------------------------------------------
#
# These transforms run inside a dist worker subprocess (the supply is
# built where the cell executes) and arm the module-level chaos hooks of
# :mod:`repro.dist.worker`, which applies them at the result boundary --
# where a real network actually fails.  On any other backend the armed
# flag has no consumer and the run proceeds clean, so the same scenario
# plan is safe everywhere.

class DropConnectionOnce(_OneShotSabotage):
    """Sever the worker's scheduler connection mid-cell, exactly once.

    The worker computes the cell, then closes its socket and exits
    instead of delivering the result: the scheduler sees an EOF with the
    lease outstanding, steals the cell back, and the requeued run
    (marker present) completes normally.
    """

    def _sabotage(self) -> None:
        from repro.dist import worker

        worker.chaos_drop_connection()


class PartitionWorkerOnce(_OneShotSabotage):
    """Partition the worker off the network for ``silence_s``, once.

    Heartbeats stop and the result is held back, as if a switch dropped
    the link and later healed: depending on the scheduler's lease and
    staleness thresholds the cell is either delivered late (and possibly
    deduplicated against a stolen re-run) or the worker is declared
    stale.
    """

    def __init__(self, marker_path: str, benchmark: str,
                 after_cycles: int = 400, silence_s: float = 2.0):
        super().__init__(marker_path, benchmark, after_cycles)
        self.silence_s = silence_s

    def _sabotage(self) -> None:
        from repro.dist import worker

        worker.chaos_partition(self.silence_s)


class DelayResultOnce(_OneShotSabotage):
    """Delay one result's delivery by ``delay_s`` (heartbeats keep
    flowing -- pure latency, not a partition)."""

    def __init__(self, marker_path: str, benchmark: str,
                 after_cycles: int = 400, delay_s: float = 2.0):
        super().__init__(marker_path, benchmark, after_cycles)
        self.delay_s = delay_s

    def _sabotage(self) -> None:
        from repro.dist import worker

        worker.chaos_delay_result(self.delay_s)


class DuplicateResultOnce(_OneShotSabotage):
    """Deliver one result frame twice (a retransmit the scheduler must
    deduplicate rather than double-count)."""

    def _sabotage(self) -> None:
        from repro.dist import worker

        worker.chaos_duplicate_result()


def truncate_file(path: str, keep_fraction: float) -> int:
    """Cut a file to ``keep_fraction`` of its bytes; returns the new size."""
    size = os.path.getsize(path)
    keep = max(0, min(size, int(size * keep_fraction)))
    with open(path, "rb+") as handle:
        handle.truncate(keep)
    return keep


def flip_bit(path: str, offset: Optional[int] = None, bit: int = 0) -> int:
    """Flip one bit of a file in place; returns the byte offset flipped."""
    with open(path, "rb+") as handle:
        data = handle.read()
        if not data:
            return 0
        at = (offset if offset is not None else len(data) // 2) % len(data)
        handle.seek(at)
        handle.write(bytes([data[at] ^ (1 << (bit % 8))]))
    return at


@contextlib.contextmanager
def inject_fsync_faults(every: int = 2, error_number: int = errno.ENOSPC):
    """Make every ``every``-th checkpoint fsync raise an injected OSError.

    Patches the :data:`repro.sim.runner._fsync` seam for the duration of
    the context (ENOSPC by default -- a full disk -- or any errno, e.g.
    ``errno.EIO``).  Yields a counter dict: ``calls`` fsyncs attempted,
    ``faults`` injected.
    """
    from repro.sim import runner

    if every < 1:
        raise ValueError("every must be >= 1")
    original = runner._fsync
    counter = {"calls": 0, "faults": 0}

    def faulty_fsync(fd):
        counter["calls"] += 1
        if counter["calls"] % every == 0:
            counter["faults"] += 1
            raise OSError(error_number, f"{os.strerror(error_number)} (injected)")
        return original(fd)

    runner._fsync = faulty_fsync
    try:
        yield counter
    finally:
        runner._fsync = original
