"""Deterministic trace-context propagation across process boundaries.

A :class:`TraceContext` names one node in a causal tree: a ``trace_id``
shared by every span of one logical operation (an HTTP job, a sweep), a
``span_id`` for this node, and the ``parent_id`` it hangs under.  Ids are
*derived*, not random: ``sha256`` over the parent ids and a stable name,
so a fixed-seed sweep produces byte-identical linkage on every run and on
every backend.  That determinism is what lets the goldens and the chaos
convergence checks stay bit-exact with tracing enabled.

Contexts cross process boundaries as plain dicts — in the pool worker
cell submission, in the ``repro.dist`` lease frame, and in the
``traceparent`` HTTP header — and are re-installed on the far side with
:func:`use_context`.  The current context is thread-local because
``repro serve`` runs concurrent job threads in one process.
"""

from __future__ import annotations

import contextlib
import hashlib
import re
import threading
from dataclasses import dataclass
from typing import Iterator, Optional


def _derive(material: str, length: int) -> str:
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:length]


_TRACEPARENT_RE = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-[0-9a-f]{2}$"
)


@dataclass(frozen=True)
class TraceContext:
    """One node of a causal trace tree, with deterministic ids."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    @classmethod
    def root(cls, identity: str) -> "TraceContext":
        """A new trace rooted at a stable identity string."""
        return cls(
            trace_id=_derive("trace|" + identity, 32),
            span_id=_derive("span|" + identity, 16),
        )

    def child(self, name: str) -> "TraceContext":
        """A child node: same trace, span id derived from this node."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_derive(f"{self.trace_id}|{self.span_id}|{name}", 16),
            parent_id=self.span_id,
        )

    def span_args(self) -> dict:
        """The id triple in the shape span ``args`` carry."""
        out = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        return out

    def to_dict(self) -> dict:
        return self.span_args()

    @classmethod
    def from_dict(cls, data: Optional[dict]) -> Optional["TraceContext"]:
        if not isinstance(data, dict):
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        parent = data.get("parent_id")
        return cls(trace_id, span_id, parent if isinstance(parent, str) else None)

    def to_traceparent(self) -> str:
        """W3C-style ``traceparent`` header value."""
        return f"00-{self.trace_id:0>32}-{self.span_id:0>16}-01"

    @classmethod
    def from_traceparent(cls, header: Optional[str]) -> Optional["TraceContext"]:
        if not header:
            return None
        match = _TRACEPARENT_RE.match(header.strip().lower())
        if match is None:
            return None
        return cls(trace_id=match.group(1), span_id=match.group(2))


class _State(threading.local):
    def __init__(self) -> None:
        self.context: Optional[TraceContext] = None
        self.remote = False


_STATE = _State()


def current_context() -> Optional[TraceContext]:
    """The context installed on this thread, or None."""
    return _STATE.context


def context_is_remote() -> bool:
    """True when the current context arrived from another process."""
    return _STATE.remote


@contextlib.contextmanager
def use_context(
    ctx: Optional[TraceContext], remote: bool = False
) -> Iterator[Optional[TraceContext]]:
    """Install ``ctx`` as the current context for this thread.

    ``remote=True`` marks the context as having crossed a process
    boundary, which tells the cell span to close the pending flow arrow.
    A ``None`` context is a no-op so callers need no off-path branch.
    """
    if ctx is None:
        yield None
        return
    prev = (_STATE.context, _STATE.remote)
    _STATE.context = ctx
    _STATE.remote = remote
    try:
        yield ctx
    finally:
        _STATE.context, _STATE.remote = prev
