"""Span tracing with a Perfetto-compatible Chrome trace-event export.

Every traced process -- the sweep parent and each pool worker -- owns one
:class:`Tracer` appending JSON-lines events to its *own* shard file under
``<trace_out>.shards/``.  No file handle or lock ever crosses a process
boundary, which makes the sink process-safe by construction; within a
process a lock serializes writers, so worker heartbeat threads and the
supervisor can trace concurrently.

Events are Chrome trace-event dictionaries from the moment they are
written: complete spans (``ph: "X"`` with microsecond ``ts``/``dur`` from
``time.monotonic``, which shares its epoch across processes on Linux) and
instant events (``ph: "i"``).  :func:`export_chrome_trace` merges the
shards into one ``{"traceEvents": [...]}`` JSON file that loads directly
in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

Determinism: event ids are per-process sequence numbers (no ``id()`` or
randomness), the merged file is sorted by ``(ts, pid, tid, seq)``, and a
truncated shard line (a worker killed mid-write) is skipped rather than
poisoning the export.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Tracer",
    "active_tracer",
    "set_active_tracer",
    "shard_dir_for",
    "export_chrome_trace",
    "load_trace_events",
]

#: Categories used by the built-in instrumentation (documented in
#: docs/observability.md): phase/cell spans and supervision instants,
#: serve request and dist lease spans, and cross-process flow arrows.
CAT_PHASE = "phase"
CAT_CELL = "cell"
CAT_SIM = "sim"
CAT_SUPERVISION = "supervision"
CAT_SERVE = "serve"
CAT_DIST = "dist"
CAT_FLOW = "flow"


def shard_dir_for(trace_path: str) -> str:
    """Directory holding the per-process JSONL shards of one trace."""
    return trace_path + ".shards"


class Tracer:
    """Appends Chrome trace events to this process's JSONL shard."""

    def __init__(self, shard_dir: str, process_label: str = "repro"):
        self._shard_dir = shard_dir
        self._process_label = process_label
        self._lock = threading.Lock()
        self._handle = None
        self._pid = os.getpid()
        self._seq = 0

    # ------------------------------------------------------------------
    def _write(self, event: dict) -> None:
        with self._lock:
            if self._pid != os.getpid():  # forked child: never share a handle
                self._handle = None
                self._pid = os.getpid()
                self._seq = 0
            if self._handle is None:
                os.makedirs(self._shard_dir, exist_ok=True)
                path = os.path.join(self._shard_dir, f"pid-{self._pid}.jsonl")
                self._handle = open(path, "a")
                self._emit_locked({
                    "ph": "M", "name": "process_name", "ts": 0, "dur": 0,
                    "args": {"name": f"{self._process_label} [{self._pid}]"},
                })
            self._emit_locked(event)

    def _emit_locked(self, event: dict) -> None:
        event["pid"] = self._pid
        if "tid" not in event:  # synthetic per-worker lease tracks keep theirs
            event["tid"] = threading.get_ident() % 1_000_000
        event["seq"] = self._seq
        self._seq += 1
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and self._pid == os.getpid():
                with contextlib.suppress(OSError):
                    self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def span(
        self,
        name: str,
        cat: str = CAT_PHASE,
        args: Optional[dict] = None,
        ctx=None,
    ) -> Iterator[dict]:
        """Record a complete span around the enclosed block.

        Yields the mutable ``args`` dict, so the block can attach results
        (attempt counts, outcome) that are only known at exit.  A
        ``TraceContext`` passed as ``ctx`` stamps its deterministic
        trace_id/span_id/parent_id triple into the args.
        """
        span_args: dict = dict(args or {})
        if ctx is not None:
            span_args.update(ctx.span_args())
        started = time.monotonic()
        try:
            yield span_args
        finally:
            duration = time.monotonic() - started
            self._write({
                "ph": "X",
                "name": name,
                "cat": cat,
                "ts": round(started * 1e6, 3),
                "dur": round(duration * 1e6, 3),
                "args": span_args,
            })

    def span_at(
        self,
        name: str,
        cat: str,
        started: float,
        ended: float,
        args: Optional[dict] = None,
        ctx=None,
        tid: Optional[int] = None,
    ) -> None:
        """Record a complete span from explicit ``time.monotonic`` stamps.

        Used where the span is only known after the fact: the serve HTTP
        request span (status known once the response is written) and the
        dist scheduler lease span (closed when the result frame lands).
        An explicit ``tid`` places the span on a synthetic track (one per
        dist worker) so concurrent leases do not overlap on one track.
        """
        span_args: dict = dict(args or {})
        if ctx is not None:
            span_args.update(ctx.span_args())
        event = {
            "ph": "X",
            "name": name,
            "cat": cat,
            "ts": round(started * 1e6, 3),
            "dur": round(max(ended - started, 0.0) * 1e6, 3),
            "args": span_args,
        }
        if tid is not None:
            event["tid"] = tid
        self._write(event)

    def flow_start(
        self, flow_id: str, name: str = "dispatch",
        ts: Optional[float] = None, tid: Optional[int] = None,
    ) -> None:
        """Open a flow arrow at the dispatch site (inside the open span)."""
        event = {
            "ph": "s",
            "name": name,
            "cat": CAT_FLOW,
            "id": flow_id,
            "ts": round((time.monotonic() if ts is None else ts) * 1e6, 3),
            "args": {},
        }
        if tid is not None:
            event["tid"] = tid
        self._write(event)

    def flow_end(self, flow_id: str, name: str = "dispatch") -> None:
        """Close a flow arrow inside the receiving span (other process)."""
        self._write({
            "ph": "f",
            "bp": "e",
            "name": name,
            "cat": CAT_FLOW,
            "id": flow_id,
            "ts": round(time.monotonic() * 1e6, 3),
            "args": {},
        })

    def instant(
        self, name: str, cat: str = CAT_SUPERVISION, args: Optional[dict] = None
    ) -> None:
        """Record a zero-duration marker (retry, kill, rebuild, drain...)."""
        self._write({
            "ph": "i",
            "name": name,
            "cat": cat,
            "ts": round(time.monotonic() * 1e6, 3),
            "s": "p",  # process scope: draw across the whole track group
            "args": dict(args or {}),
        })


#: Process-wide tracer; None until observability is configured, so the
#: disabled path costs one module-attribute read at each seam.
_ACTIVE: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    return _ACTIVE


def set_active_tracer(tracer: Optional[Tracer]) -> None:
    global _ACTIVE
    _ACTIVE = tracer


# ----------------------------------------------------------------------
# Shard merge and export
# ----------------------------------------------------------------------

def _read_shard(path: str) -> List[dict]:
    events = []
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue  # truncated tail of a killed worker
                if isinstance(event, dict):
                    events.append(event)
    except OSError:
        return []
    return events


def merge_shards(shard_dir: str) -> List[dict]:
    """All events from every shard, in deterministic order."""
    events: List[dict] = []
    if os.path.isdir(shard_dir):
        for entry in sorted(os.listdir(shard_dir)):
            if entry.endswith(".jsonl"):
                events.extend(_read_shard(os.path.join(shard_dir, entry)))
    events.sort(
        key=lambda e: (
            e.get("ts", 0), e.get("pid", 0), e.get("tid", 0), e.get("seq", 0)
        )
    )
    return events


def export_chrome_trace(
    trace_path: str,
    metadata: Optional[Dict[str, object]] = None,
    cleanup: bool = True,
) -> int:
    """Merge the shards of ``trace_path`` into the final Chrome JSON.

    Returns the number of events exported.  With ``cleanup`` (default),
    the shard directory is removed afterwards so reruns start clean.
    """
    shard_dir = shard_dir_for(trace_path)
    events = merge_shards(shard_dir)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }
    directory = os.path.dirname(trace_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(trace_path, "w") as handle:
        json.dump(payload, handle, indent=None, separators=(",", ":"))
        handle.write("\n")
    if cleanup and os.path.isdir(shard_dir):
        for entry in os.listdir(shard_dir):
            with contextlib.suppress(OSError):
                os.remove(os.path.join(shard_dir, entry))
        with contextlib.suppress(OSError):
            os.rmdir(shard_dir)
    return len(events)


def load_trace_events(path: str) -> List[dict]:
    """Events of an exported trace (object or bare-array Chrome format)."""
    with open(path) as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        events = data.get("traceEvents", [])
    elif isinstance(data, list):
        events = data
    else:
        raise ValueError(f"{path!r} is not a Chrome trace file")
    return [e for e in events if isinstance(e, dict)]
