"""Counters, gauges and histograms for the simulation and sweep hot paths.

A :class:`MetricsRegistry` holds named metrics, each optionally split by a
small set of label values (``sim_resonant_events_total{polarity=...}``).
Instrumented code never pays for disabled metrics: the process-wide
registry (:func:`active_registry`) is ``None`` until observability is
configured, and call sites guard with a single attribute read.

Two export formats are supported, both deterministic (sorted names, sorted
label sets):

* :meth:`MetricsRegistry.to_dict` / :meth:`to_json` -- machine-readable
  JSON for the sweep smoke tests and downstream analysis;
* :meth:`MetricsRegistry.to_prometheus` -- Prometheus text exposition
  (``# HELP`` / ``# TYPE`` plus one sample line per label set).

Worker processes accumulate into their own registry and ship the cell's
delta back with :meth:`snapshot`; the parent's :meth:`merge` is additive
and commutative, so the merged totals are independent of cell completion
order -- parallel sweeps report the same numbers as sequential ones.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "active_registry",
    "set_active_registry",
]

LabelPairs = Tuple[Tuple[str, str], ...]

#: Default histogram buckets for per-cell wall-clock latency, in seconds.
DEFAULT_LATENCY_BUCKETS_S = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)


def _label_key(labels: Optional[Dict[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus 0.0.4 text format.

    Backslash first, then double-quote and newline -- otherwise the
    backslashes introduced by the latter two would be doubled again.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """HELP lines escape only backslash and newline (quotes are legal)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(pairs: LabelPairs) -> str:
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


class Counter:
    """Monotonically increasing value, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: Dict[LabelPairs, float] = {}

    def inc(self, amount: float = 1.0, labels: Optional[Dict[str, str]] = None) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, labels: Optional[Dict[str, str]] = None) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> List[Tuple[LabelPairs, float]]:
        return sorted(self._values.items())


class Gauge:
    """Last-written value, optionally split by labels."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: Dict[LabelPairs, float] = {}

    def set(self, value: float, labels: Optional[Dict[str, str]] = None) -> None:
        self._values[_label_key(labels)] = float(value)

    def value(self, labels: Optional[Dict[str, str]] = None) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> List[Tuple[LabelPairs, float]]:
        return sorted(self._values.items())


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics: ``le`` bounds)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        # counts[i] observations fell at or below buckets[i]; the implicit
        # +Inf bucket is (count - sum(counts)).
        self._counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        index = bisect_left(self.buckets, value)
        if index < len(self._counts):
            self._counts[index] += 1

    def cumulative_counts(self) -> List[int]:
        """Per-``le`` cumulative counts, excluding the +Inf bucket."""
        total, out = 0, []
        for c in self._counts:
            total += c
            out.append(total)
        return out


class MetricsRegistry:
    """Thread-safe home of every metric one process reports."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, kind, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} already registered as"
                    f" {type(metric).__name__}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> Histogram:
        return self._get_or_create(name, Histogram, help=help, buckets=buckets)

    def reset(self) -> None:
        """Drop every metric (worker processes reset between cells)."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------
    # Snapshots and cross-process merging
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-data form of every metric, suitable for pickling."""
        with self._lock:
            out: dict = {}
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                entry: dict = {"kind": metric.kind, "help": metric.help}
                if isinstance(metric, Histogram):
                    entry["buckets"] = list(metric.buckets)
                    entry["counts"] = list(metric._counts)
                    entry["count"] = metric.count
                    entry["sum"] = metric.sum
                else:
                    entry["samples"] = [
                        [list(map(list, pairs)), value]
                        for pairs, value in metric.samples()
                    ]
                out[name] = entry
            return out

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` into this registry (additive for
        counters and histograms, last-write for gauges)."""
        for name, entry in snapshot.items():
            kind = entry["kind"]
            if kind == "histogram":
                histogram = self.histogram(
                    name, help=entry.get("help", ""),
                    buckets=entry["buckets"],
                )
                if list(histogram.buckets) != list(entry["buckets"]):
                    raise ValueError(
                        f"histogram {name!r} bucket layouts disagree"
                    )
                for i, c in enumerate(entry["counts"]):
                    histogram._counts[i] += c
                histogram.count += entry["count"]
                histogram.sum += entry["sum"]
                continue
            for raw_pairs, value in entry["samples"]:
                labels = {k: v for k, v in raw_pairs}
                if kind == "counter":
                    self.counter(name, help=entry.get("help", "")).inc(
                        value, labels=labels or None
                    )
                elif kind == "gauge":
                    self.gauge(name, help=entry.get("help", "")).set(
                        value, labels=labels or None
                    )
                else:
                    raise ValueError(f"unknown metric kind {kind!r}")

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Deterministic JSON-ready dump, grouped by metric type."""
        counters: dict = {}
        gauges: dict = {}
        histograms: dict = {}
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if isinstance(metric, Histogram):
                    histograms[name] = {
                        "help": metric.help,
                        "buckets": list(metric.buckets),
                        "cumulative_counts": metric.cumulative_counts(),
                        "count": metric.count,
                        "sum": metric.sum,
                    }
                    continue
                samples = {
                    _format_labels(pairs) or "": value
                    for pairs, value in metric.samples()
                }
                target = counters if isinstance(metric, Counter) else gauges
                target[name] = {"help": metric.help, "samples": samples}
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format, version 0.0.4."""
        lines: List[str] = []
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if metric.help:
                    lines.append(f"# HELP {name} {_escape_help(metric.help)}")
                lines.append(f"# TYPE {name} {metric.kind}")
                if isinstance(metric, Histogram):
                    cumulative = metric.cumulative_counts()
                    for bound, count in zip(metric.buckets, cumulative):
                        lines.append(
                            f'{name}_bucket{{le="{bound:g}"}} {count}'
                        )
                    lines.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
                    lines.append(f"{name}_sum {metric.sum:g}")
                    lines.append(f"{name}_count {metric.count}")
                    continue
                for pairs, value in metric.samples():
                    lines.append(f"{name}{_format_labels(pairs)} {value:g}")
        return "\n".join(lines) + "\n"


#: Process-wide registry; None until observability is configured, so the
#: disabled path costs exactly one module-attribute read per call site.
_ACTIVE: Optional[MetricsRegistry] = None


def active_registry() -> Optional[MetricsRegistry]:
    """The process-wide registry, or None when metrics are disabled."""
    return _ACTIVE


def set_active_registry(registry: Optional[MetricsRegistry]) -> None:
    global _ACTIVE
    _ACTIVE = registry
