"""Shared structured logging for the repro package.

Every component logs through a child of the ``repro`` logger.  Two
channels coexist:

* :func:`get_logger` returns a standard :mod:`logging` logger whose
  default handler writes plain messages to stderr at WARNING and above --
  byte-identical to the ad-hoc ``print(..., file=sys.stderr)`` notices it
  replaces.  ``--log-level`` (via :func:`configure_logging`) lowers the
  threshold and switches to a structured ``timestamp level logger ::
  message`` format.
* :func:`warn_once` replaces the runner's ad-hoc ``warnings.warn`` calls:
  it still emits a real :class:`Warning` (so ``pytest.warns``, ``-W
  error`` and the default once-per-location display keep working) and
  additionally records a structured DEBUG entry; an optional ``key``
  dedups repeat emissions process-wide.
"""

from __future__ import annotations

import logging
import sys
import threading
import warnings
from typing import Optional, Set, Type

__all__ = [
    "LOGGER_NAME",
    "configure_logging",
    "get_logger",
    "reset_warn_dedup",
    "warn_once",
]

LOGGER_NAME = "repro"

#: Default, notice-preserving format: exactly the message, nothing else.
_PLAIN_FORMAT = "%(message)s"
#: Structured format installed when a log level is configured explicitly.
_STRUCTURED_FORMAT = "%(asctime)s %(levelname)s %(name)s :: %(message)s"

_lock = threading.Lock()
_handler: Optional[logging.Handler] = None
_seen_keys: Set[str] = set()


class _StderrHandler(logging.StreamHandler):
    """Stream handler bound to the *current* ``sys.stderr``.

    Resolving the stream per-record (instead of at handler creation)
    keeps routed notices visible through pytest's capture machinery and
    any other stderr redirection installed after import.
    """

    def __init__(self):
        logging.Handler.__init__(self)

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value):  # StreamHandler API compat; always live
        pass


def _ensure_handler() -> logging.Handler:
    """Install the stderr handler on the root ``repro`` logger, once."""
    global _handler
    with _lock:
        if _handler is None:
            handler = _StderrHandler()
            handler.setFormatter(logging.Formatter(_PLAIN_FORMAT))
            root = logging.getLogger(LOGGER_NAME)
            root.addHandler(handler)
            root.setLevel(logging.WARNING)
            root.propagate = False
            _handler = handler
        return _handler


def get_logger(name: str = LOGGER_NAME) -> logging.Logger:
    """A logger under the shared ``repro`` hierarchy.

    ``name`` may be a bare suffix (``"runner"``) or a full dotted path
    (``"repro.sim.runner"``); both land under the same root handler.
    """
    _ensure_handler()
    if name != LOGGER_NAME and not name.startswith(LOGGER_NAME + "."):
        name = f"{LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def configure_logging(level: Optional[str]) -> None:
    """Apply a ``--log-level`` choice (None keeps the plain default).

    An explicit level switches the handler to the structured format so
    DEBUG/INFO records carry their origin and timestamp.
    """
    handler = _ensure_handler()
    if level is None:
        return
    numeric = logging.getLevelName(str(level).upper())
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    root = logging.getLogger(LOGGER_NAME)
    root.setLevel(numeric)
    handler.setLevel(numeric)
    handler.setFormatter(logging.Formatter(_STRUCTURED_FORMAT))


def warn_once(
    message: str,
    key: Optional[str] = None,
    category: Type[Warning] = RuntimeWarning,
    stacklevel: int = 2,
    logger: Optional[logging.Logger] = None,
) -> bool:
    """Emit a warning once per ``key`` (always, when ``key`` is None).

    The warning goes through :mod:`warnings` (preserving stderr display
    and test capture semantics) and is mirrored as a structured DEBUG
    record on the shared logger.  Returns True when emitted, False when
    deduplicated.
    """
    if key is not None:
        with _lock:
            if key in _seen_keys:
                return False
            _seen_keys.add(key)
    # +1 accounts for this helper frame, so the reported location is the
    # caller's caller, same as a direct warnings.warn at the call site.
    warnings.warn(message, category, stacklevel=stacklevel + 1)
    (logger or get_logger()).debug(
        "%s (category=%s key=%s)", message, category.__name__, key
    )
    return True


def reset_warn_dedup() -> None:
    """Forget all :func:`warn_once` keys (test isolation hook)."""
    with _lock:
        _seen_keys.clear()
