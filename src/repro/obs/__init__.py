"""Observability: structured logging, metrics, and span tracing.

The subsystem is **off by default** and costs nothing measurable when off:
instrumented seams read one module attribute (the active tracer or
registry) and skip when it is ``None``; nothing is allocated, opened or
formatted.  ``configure()`` -- driven by the ``--trace-out``,
``--metrics-out`` and ``--log-level`` CLI flags -- turns the layers on
individually:

* ``--trace-out trace.json`` records phase/cell spans and supervision
  instants (see :mod:`repro.obs.trace`) and, at :func:`finalize`, merges
  the per-process shards into a Chrome trace-event JSON that opens
  directly in Perfetto;
* ``--metrics-out metrics.json`` activates the process-wide
  :class:`~repro.obs.metrics.MetricsRegistry` and, at :func:`finalize`,
  writes the JSON dump plus a Prometheus text exposition sibling
  (``metrics.prom``);
* ``--log-level DEBUG`` lowers the shared ``repro`` logger's threshold
  and switches it to a structured format (:mod:`repro.obs.log`).

* ``--profile-out profile.json`` starts the stdlib sampling profiler
  (:mod:`repro.obs.profile`) and, at :func:`finalize`, writes a
  speedscope JSON (https://speedscope.app) plus a collapsed-stack
  sibling (``profile.json.collapsed``).

Worker processes inherit the configuration through
:func:`worker_spec` / :func:`init_worker` (wired into the sweep pool
initializer and the dist welcome frame), writing their spans and profile
samples into their own shard files and shipping metric deltas back with
each cell result.  Trace spans carry deterministic
:class:`~repro.obs.context.TraceContext` ids, so one job's lifecycle
links across every process boundary.
"""

from __future__ import annotations

import argparse
import contextlib
import os
from typing import Dict, List, Optional

from repro.obs import log as log  # noqa: F401  (re-exported module)
from repro.obs import profile as profile  # noqa: F401  (re-exported module)
from repro.obs.context import TraceContext, current_context, use_context
from repro.obs.log import configure_logging, get_logger, warn_once
from repro.obs.metrics import (
    MetricsRegistry,
    active_registry,
    set_active_registry,
)
from repro.obs.profile import (
    SamplingProfiler,
    active_profiler,
    set_active_profiler,
)
from repro.obs.trace import (
    Tracer,
    active_tracer,
    export_chrome_trace,
    set_active_tracer,
    shard_dir_for,
)

__all__ = [
    "configure",
    "configure_from_args",
    "add_observability_flags",
    "finalize",
    "is_configured",
    "active_registry",
    "ensure_registry",
    "active_tracer",
    "active_profiler",
    "worker_spec",
    "init_worker",
    "get_logger",
    "warn_once",
    "MetricsRegistry",
    "Tracer",
    "SamplingProfiler",
    "TraceContext",
    "current_context",
    "use_context",
]

_trace_out: Optional[str] = None
_metrics_out: Optional[str] = None
_profile_out: Optional[str] = None


def _clear_shards(shard_dir: str) -> None:
    """Remove leftovers of a previous run so old events cannot leak in."""
    if not os.path.isdir(shard_dir):
        return
    for entry in os.listdir(shard_dir):
        if entry.endswith(".jsonl"):
            with contextlib.suppress(OSError):
                os.remove(os.path.join(shard_dir, entry))


def configure(
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    log_level: Optional[str] = None,
    profile_out: Optional[str] = None,
) -> None:
    """Activate the requested observability layers in this process."""
    global _trace_out, _metrics_out, _profile_out
    configure_logging(log_level)
    if trace_out is not None:
        _trace_out = trace_out
        shard_dir = shard_dir_for(trace_out)
        _clear_shards(shard_dir)
        set_active_tracer(Tracer(shard_dir, process_label="sweep"))
    if metrics_out is not None:
        _metrics_out = metrics_out
        if active_registry() is None:
            set_active_registry(MetricsRegistry())
    if profile_out is not None:
        _profile_out = profile_out
        profile.cleanup_shards(profile.shard_dir_for(profile_out))
        profiler = SamplingProfiler(process_label="sweep")
        set_active_profiler(profiler)
        profiler.start()


def is_configured() -> bool:
    return (
        active_tracer() is not None
        or active_registry() is not None
        or active_profiler() is not None
    )


def ensure_registry() -> MetricsRegistry:
    """Return the active metrics registry, installing one if none is.

    Long-lived processes that always want metrics (the sweep service's
    ``/metrics`` endpoint) call this once at startup; unlike
    :func:`configure` it never touches logging or tracing and never
    schedules an export -- the caller owns exposition.
    """
    registry = active_registry()
    if registry is None:
        registry = MetricsRegistry()
        set_active_registry(registry)
    return registry


def _prometheus_path(metrics_path: str) -> str:
    root, ext = os.path.splitext(metrics_path)
    return (root if ext == ".json" else metrics_path) + ".prom"


def finalize(metadata: Optional[Dict[str, object]] = None) -> List[str]:
    """Export the configured artifacts and deactivate the subsystem.

    Returns the list of files written: the merged Chrome trace, the
    metrics JSON and its Prometheus sibling, and the speedscope profile
    plus its collapsed-stack sibling (for whichever layers were
    configured).  Safe to call when nothing is configured (no-op).
    """
    global _trace_out, _metrics_out, _profile_out
    written: List[str] = []
    tracer = active_tracer()
    if tracer is not None and _trace_out is not None:
        tracer.close()
        export_chrome_trace(_trace_out, metadata=metadata)
        written.append(_trace_out)
    registry = active_registry()
    if registry is not None and _metrics_out is not None:
        directory = os.path.dirname(_metrics_out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(_metrics_out, "w") as handle:
            handle.write(registry.to_json() + "\n")
        written.append(_metrics_out)
        prom_path = _prometheus_path(_metrics_out)
        with open(prom_path, "w") as handle:
            handle.write(registry.to_prometheus())
        written.append(prom_path)
    profiler = active_profiler()
    if profiler is not None and _profile_out is not None:
        profiler.stop()
        shard_dir = profile.shard_dir_for(_profile_out)
        processes = profile.merge_profiles(profiler, shard_dir)
        profile.write_speedscope(_profile_out, processes)
        written.append(_profile_out)
        collapsed_path = _profile_out + ".collapsed"
        profile.write_collapsed(collapsed_path, processes)
        written.append(collapsed_path)
        profile.cleanup_shards(shard_dir)
    set_active_tracer(None)
    set_active_registry(None)
    set_active_profiler(None)
    _trace_out = None
    _metrics_out = None
    _profile_out = None
    return written


# ----------------------------------------------------------------------
# Worker-process propagation (used by the sweep pool initializer)
# ----------------------------------------------------------------------

def worker_spec() -> Optional[dict]:
    """Picklable description of this process's observability, or None."""
    tracer = active_tracer()
    spec: dict = {}
    if tracer is not None and _trace_out is not None:
        spec["trace_shard_dir"] = shard_dir_for(_trace_out)
    if active_registry() is not None:
        spec["metrics"] = True
    if active_profiler() is not None and _profile_out is not None:
        spec["profile_shard_dir"] = profile.shard_dir_for(_profile_out)
    return spec or None


def init_worker(spec: Optional[dict]) -> None:
    """Activate observability inside a pool worker from a parent's spec."""
    if not spec:
        return
    shard_dir = spec.get("trace_shard_dir")
    if shard_dir:
        set_active_tracer(Tracer(shard_dir, process_label="worker"))
    if spec.get("metrics"):
        set_active_registry(MetricsRegistry())
    profile_shard_dir = spec.get("profile_shard_dir")
    if profile_shard_dir and active_profiler() is None:
        shard_path = os.path.join(
            profile_shard_dir, f"pid-{os.getpid()}.json"
        )
        profiler = SamplingProfiler(
            process_label="worker", shard_path=shard_path
        )
        set_active_profiler(profiler)
        profiler.start()


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------

def add_observability_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared observability flags to a CLI parser."""
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Chrome/Perfetto trace of the run (phase and cell"
             " spans, retry/supervision events) to PATH",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write the metrics registry to PATH as JSON, plus a"
             " Prometheus text exposition next to it (.prom)",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="sample Python stacks across all processes and write a"
             " speedscope JSON profile to PATH, plus a collapsed-stack"
             " sibling (.collapsed)",
    )
    parser.add_argument(
        "--log-level",
        metavar="LEVEL",
        default=None,
        choices=["DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"],
        help="structured-logging threshold for the shared 'repro' logger"
             " (default: WARNING, plain-message format)",
    )


def configure_from_args(args) -> bool:
    """Apply parsed observability flags; returns True if any layer is on."""
    configure(
        trace_out=getattr(args, "trace_out", None),
        metrics_out=getattr(args, "metrics_out", None),
        log_level=getattr(args, "log_level", None),
        profile_out=getattr(args, "profile_out", None),
    )
    return is_configured()
