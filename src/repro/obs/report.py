"""Ops report: one self-contained HTML page from a run's obs artifacts.

``repro obs report`` (or ``tools/obs_report.py``) folds the artifacts a
sweep leaves behind -- the merged Chrome trace, the metrics JSON, and
optionally a speedscope profile -- into a single static HTML file with no
external assets: a phase waterfall, cell-latency histograms, the
slowest-stack table, the incident/retry/quarantine timeline, and the
trace-store hit rates.  It answers the operator questions ("where did
the time go, what broke, what was hot") without opening Perfetto or
speedscope, while linking the trace ids needed to go deeper there.
"""

from __future__ import annotations

import argparse
import html
import json
import os
import sys
from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.obs.trace import load_trace_events

__all__ = ["build_report", "render_html", "main"]

#: Phase spans of one sweep, in waterfall order.
PHASES = ("setup", "execute", "checkpoint_io", "aggregate")

_CSS = """
body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto;
       max-width: 72rem; padding: 0 1rem; color: #1c2733; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem;
  border-bottom: 1px solid #d6dde4; padding-bottom: .3rem; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { text-align: left; padding: .25rem .6rem;
         border-bottom: 1px solid #eef1f4; }
th { color: #5a6b7b; font-weight: 600; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar-row { display: flex; align-items: center; margin: 2px 0; }
.bar-label { width: 16rem; font-size: 12px; color: #45535f;
  white-space: nowrap; overflow: hidden; text-overflow: ellipsis; }
.bar-track { flex: 1; background: #f1f4f7; border-radius: 3px;
  position: relative; height: 16px; }
.bar-fill { position: absolute; top: 0; bottom: 0; border-radius: 3px;
  background: #4a90d9; min-width: 1px; }
.bar-fill.warn { background: #d9824a; }
.bar-value { width: 7rem; text-align: right; font-size: 12px;
  color: #45535f; font-variant-numeric: tabular-nums; padding-left: .5rem; }
.kv { color: #5a6b7b; font-size: 13px; }
code { background: #f1f4f7; padding: 0 .25rem; border-radius: 3px;
  font-size: 12px; }
.empty { color: #8796a5; font-style: italic; }
""".strip()


# ----------------------------------------------------------------------
# Artifact digestion
# ----------------------------------------------------------------------

def _spans(events: List[dict], cat: Optional[str] = None,
           name: Optional[str] = None) -> List[dict]:
    out = []
    for event in events:
        if event.get("ph") != "X":
            continue
        if cat is not None and event.get("cat") != cat:
            continue
        if name is not None and event.get("name") != name:
            continue
        out.append(event)
    return out


def _phase_waterfall(events: List[dict]) -> List[dict]:
    """Phase spans positioned on a shared, zero-based time axis (ms)."""
    phase_spans = [
        e for e in _spans(events)
        if e.get("cat") == "phase" and e.get("name") in PHASES + ("sweep",)
    ]
    if not phase_spans:
        return []
    origin = min(e.get("ts", 0.0) for e in phase_spans)
    rows = []
    for event in sorted(phase_spans, key=lambda e: e.get("ts", 0.0)):
        rows.append({
            "name": event.get("name", "?"),
            "start_ms": (event.get("ts", 0.0) - origin) / 1000.0,
            "dur_ms": event.get("dur", 0.0) / 1000.0,
            "pid": event.get("pid"),
        })
    return rows


def _cell_histogram(events: List[dict], buckets: int = 12) -> dict:
    durations = sorted(
        e.get("dur", 0.0) / 1000.0 for e in _spans(events, cat="cell")
    )
    if not durations:
        return {"bins": [], "count": 0}
    low, high = durations[0], durations[-1]
    width = (high - low) / buckets or 1.0
    bins = []
    for i in range(buckets):
        lo = low + i * width
        hi = high if i == buckets - 1 else lo + width
        n = sum(1 for d in durations if lo <= d <= hi or (i == 0 and d < lo))
        bins.append({"lo_ms": lo, "hi_ms": hi, "count": n})
    return {
        "bins": bins,
        "count": len(durations),
        "p50_ms": durations[len(durations) // 2],
        "max_ms": high,
    }


def _slowest_cells(events: List[dict], top: int = 10) -> List[dict]:
    cells = sorted(
        _spans(events, cat="cell"),
        key=lambda e: e.get("dur", 0.0), reverse=True,
    )
    return [
        {
            "name": e.get("name", "?"),
            "dur_ms": e.get("dur", 0.0) / 1000.0,
            "args": e.get("args", {}),
            "pid": e.get("pid"),
        }
        for e in cells[:top]
    ]


def _timeline(events: List[dict]) -> List[dict]:
    """Supervision instants plus lease/request spans, time-ordered."""
    items = []
    origin = None
    for event in events:
        ts = event.get("ts")
        if ts is None:
            continue
        if event.get("ph") == "M":
            continue
        origin = ts if origin is None else min(origin, ts)
    for event in events:
        if event.get("ph") == "i" and event.get("cat") == "supervision":
            items.append({
                "t_ms": (event.get("ts", 0.0) - (origin or 0.0)) / 1000.0,
                "kind": event.get("name", "?"),
                "detail": json.dumps(event.get("args", {}), sort_keys=True),
            })
    items.sort(key=lambda item: item["t_ms"])
    return items


def _slowest_stacks(profile: Optional[dict], top: int = 15) -> List[dict]:
    """Heaviest sampled stacks across every profiled process."""
    if not profile:
        return []
    frames = profile.get("shared", {}).get("frames", [])
    weights: Counter = Counter()
    total = 0
    for prof in profile.get("profiles", []):
        for sample, weight in zip(
            prof.get("samples", []), prof.get("weights", [])
        ):
            if not sample:
                continue
            names = tuple(
                frames[i].get("name", "?") if 0 <= i < len(frames) else "?"
                for i in sample
            )
            weights[names] += weight
            total += weight
    rows = []
    for stack, weight in weights.most_common(top):
        rows.append({
            "leaf": stack[-1],
            "stack": ";".join(stack),
            "samples": weight,
            "share": weight / total if total else 0.0,
        })
    return rows


def _store_rates(metrics: Optional[dict]) -> List[Tuple[str, float]]:
    if not metrics:
        return []
    counters = metrics.get("counters", {})
    totals: Dict[str, float] = {}
    for name, entry in counters.items():
        if not name.startswith("trace_store_"):
            continue
        totals[name] = sum(entry.get("samples", {}).values())
    if not totals:
        return []
    hits = totals.get("trace_store_hits_total", 0.0)
    misses = totals.get("trace_store_misses_total", 0.0)
    rows = sorted(totals.items())
    lookups = hits + misses
    if lookups:
        rows.append(("hit_rate", hits / lookups))
    return rows


def build_report(
    trace_path: str,
    metrics_path: Optional[str] = None,
    profile_path: Optional[str] = None,
    top: int = 10,
) -> dict:
    """Digest the artifacts into the plain-data model the HTML renders."""
    events = load_trace_events(trace_path)
    metrics = None
    if metrics_path and os.path.exists(metrics_path):
        with open(metrics_path) as handle:
            metrics = json.load(handle)
    profile = None
    if profile_path and os.path.exists(profile_path):
        with open(profile_path) as handle:
            profile = json.load(handle)
    pids = sorted({e["pid"] for e in events if "pid" in e})
    traces: Counter = Counter()
    for event in _spans(events):
        trace_id = event.get("args", {}).get("trace_id")
        if trace_id:
            traces[trace_id] += 1
    metadata = {}
    try:
        with open(trace_path) as handle:
            metadata = json.load(handle).get("otherData", {}) or {}
    except (OSError, ValueError):
        pass
    return {
        "trace_path": trace_path,
        "metadata": metadata,
        "event_count": len(events),
        "pids": pids,
        "trace_ids": traces.most_common(),
        "waterfall": _phase_waterfall(events),
        "histogram": _cell_histogram(events),
        "slowest_cells": _slowest_cells(events, top),
        "timeline": _timeline(events),
        "stacks": _slowest_stacks(profile, top),
        "store_rates": _store_rates(metrics),
    }


# ----------------------------------------------------------------------
# HTML rendering
# ----------------------------------------------------------------------

def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _bar(label: str, value: float, peak: float, text: str,
         offset: float = 0.0, span: float = 1.0, warn: bool = False) -> str:
    left = 100.0 * offset / peak if peak else 0.0
    width = max(100.0 * value / peak if peak else 0.0, 0.15)
    width = min(width, 100.0 - left)
    cls = "bar-fill warn" if warn else "bar-fill"
    return (
        f'<div class="bar-row"><div class="bar-label">{_esc(label)}</div>'
        f'<div class="bar-track"><div class="{cls}" style="left:{left:.2f}%;'
        f'width:{width:.2f}%"></div></div>'
        f'<div class="bar-value">{_esc(text)}</div></div>'
    )


def render_html(report: dict) -> str:
    parts: List[str] = []
    add = parts.append
    add("<!doctype html><html><head><meta charset='utf-8'>")
    add("<title>repro ops report</title>")
    add(f"<style>{_CSS}</style></head><body>")
    add("<h1>repro ops report</h1>")
    meta = ", ".join(
        f"{_esc(k)}=<code>{_esc(v)}</code>"
        for k, v in sorted(report["metadata"].items())
    )
    add(
        f'<p class="kv">trace <code>{_esc(report["trace_path"])}</code>'
        f' &middot; {report["event_count"]} events &middot;'
        f' {len(report["pids"])} process(es)'
        f' (pids {_esc(", ".join(map(str, report["pids"])))})'
        + (f" &middot; {meta}" if meta else "")
        + "</p>"
    )

    add("<h2>Trace correlation</h2>")
    if report["trace_ids"]:
        add("<table><tr><th>trace_id</th><th class='num'>linked spans</th>"
            "</tr>")
        for trace_id, count in report["trace_ids"]:
            add(f"<tr><td><code>{_esc(trace_id)}</code></td>"
                f"<td class='num'>{count}</td></tr>")
        add("</table>")
    else:
        add('<p class="empty">no context-linked spans recorded</p>')

    add("<h2>Phase waterfall</h2>")
    waterfall = report["waterfall"]
    if waterfall:
        peak = max(r["start_ms"] + r["dur_ms"] for r in waterfall) or 1.0
        for row in waterfall:
            add(_bar(
                f'{row["name"]} (pid {row["pid"]})',
                row["dur_ms"], peak,
                f'{row["dur_ms"]:.1f} ms',
                offset=row["start_ms"],
                warn=row["name"] == "checkpoint_io",
            ))
    else:
        add('<p class="empty">no phase spans recorded</p>')

    add("<h2>Cell latency</h2>")
    histogram = report["histogram"]
    if histogram["bins"]:
        add(
            f'<p class="kv">{histogram["count"]} cells &middot; p50 '
            f'{histogram["p50_ms"]:.1f} ms &middot; max '
            f'{histogram["max_ms"]:.1f} ms</p>'
        )
        peak = max(b["count"] for b in histogram["bins"]) or 1
        for b in histogram["bins"]:
            add(_bar(
                f'{b["lo_ms"]:.1f}-{b["hi_ms"]:.1f} ms',
                b["count"], peak, f'{b["count"]} cell(s)',
            ))
        add("<h3>Slowest cells</h3>")
        add("<table><tr><th>cell</th><th>technique</th><th>seed</th>"
            "<th>outcome</th><th class='num'>pid</th>"
            "<th class='num'>ms</th></tr>")
        for cell in report["slowest_cells"]:
            args = cell["args"]
            add(
                f"<tr><td>{_esc(cell['name'])}</td>"
                f"<td>{_esc(args.get('technique', '?'))}</td>"
                f"<td>{_esc(args.get('seed'))}</td>"
                f"<td>{_esc(args.get('outcome', '?'))}</td>"
                f"<td class='num'>{_esc(cell['pid'])}</td>"
                f"<td class='num'>{cell['dur_ms']:.1f}</td></tr>"
            )
        add("</table>")
    else:
        add('<p class="empty">no cell spans recorded</p>')

    add("<h2>Hot stacks (sampling profiler)</h2>")
    if report["stacks"]:
        peak = report["stacks"][0]["samples"] or 1
        for row in report["stacks"]:
            add(_bar(
                row["leaf"], row["samples"], peak,
                f'{row["samples"]} ({100 * row["share"]:.1f}%)',
            ))
        add("<details><summary>full stacks</summary><table>"
            "<tr><th>stack</th><th class='num'>samples</th></tr>")
        for row in report["stacks"]:
            add(f"<tr><td><code>{_esc(row['stack'])}</code></td>"
                f"<td class='num'>{row['samples']}</td></tr>")
        add("</table></details>")
    else:
        add('<p class="empty">no profile supplied (run with'
            ' --profile-out and pass --profile)</p>')

    add("<h2>Incident timeline</h2>")
    if report["timeline"]:
        add("<table><tr><th class='num'>t (ms)</th><th>event</th>"
            "<th>detail</th></tr>")
        for item in report["timeline"]:
            add(
                f"<tr><td class='num'>{item['t_ms']:.1f}</td>"
                f"<td>{_esc(item['kind'])}</td>"
                f"<td><code>{_esc(item['detail'])}</code></td></tr>"
            )
        add("</table>")
    else:
        add('<p class="empty">no supervision events (clean run)</p>')

    add("<h2>Trace-store hit rates</h2>")
    if report["store_rates"]:
        add("<table><tr><th>counter</th><th class='num'>value</th></tr>")
        for name, value in report["store_rates"]:
            shown = f"{100 * value:.1f}%" if name == "hit_rate" else f"{value:g}"
            add(f"<tr><td><code>{_esc(name)}</code></td>"
                f"<td class='num'>{shown}</td></tr>")
        add("</table>")
    else:
        add('<p class="empty">no trace-store activity recorded'
            ' (run with --trace-store and --metrics-out)</p>')

    add("</body></html>")
    return "".join(parts)


# ----------------------------------------------------------------------
# Entry point (repro obs report / tools/obs_report.py)
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro obs report",
        description="Render a self-contained HTML ops report from a"
                    " sweep's observability artifacts.",
    )
    parser.add_argument("--trace", required=True,
                        help="merged Chrome trace JSON (--trace-out)")
    parser.add_argument("--metrics", default=None,
                        help="metrics JSON (--metrics-out)")
    parser.add_argument("--profile", default=None,
                        help="speedscope profile JSON (--profile-out)")
    parser.add_argument("--out", default="obs_report.html",
                        help="output HTML path (default obs_report.html)")
    parser.add_argument("--top", type=int, default=10,
                        help="rows in the slowest-cell/stack tables")
    args = parser.parse_args(argv)
    try:
        report = build_report(
            args.trace, metrics_path=args.metrics,
            profile_path=args.profile, top=args.top,
        )
    except (OSError, ValueError) as error:
        print(f"cannot read artifacts: {error}", file=sys.stderr)
        return 2
    document = render_html(report)
    directory = os.path.dirname(args.out)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(args.out, "w") as handle:
        handle.write(document)
    print(
        f"wrote {args.out} ({report['event_count']} events,"
        f" {len(report['pids'])} process(es))"
    )
    return 0
