"""Stdlib-only sampling profiler with speedscope and collapsed output.

A timer thread wakes every ``interval_s`` and snapshots the Python stacks
of every other thread via ``sys._current_frames``, aggregating counts per
``(label, stack)`` pair.  The label is a per-thread attribution string —
the sweep runner labels each cell ``<benchmark>|<technique>|<seed>`` so
the profile answers "which cell burned the samples", rendered as a
synthetic ``[cell ...]`` root frame in the speedscope view.

Like the tracer and the metrics registry, the profiler is off by default:
``active_profiler()`` is a module global that stays ``None`` until
``repro.obs.configure(profile_out=...)`` installs one, so the disabled
path costs one attribute read at each seam.  Sampling only *reads*
frames, so profiled sweeps stay bit-identical to unprofiled ones — the
goldens and chaos convergence checks hold with ``--profile-out`` on.

Multi-process sweeps mirror the trace-shard design: each worker runs its
own profiler and rewrites a cumulative JSON shard under
``<profile_out>.shards/`` at every cell boundary (so a SIGKILLed worker
loses at most its in-flight cell), and the parent merges the shards into
one multi-profile speedscope file plus a collapsed-stack sibling at
finalize time.
"""

from __future__ import annotations

import contextlib
import json
import os
import sys
import threading
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "SamplingProfiler",
    "active_profiler",
    "set_active_profiler",
    "shard_dir_for",
    "merge_profiles",
    "write_speedscope",
    "write_collapsed",
]

_MAX_DEPTH = 64

#: (label, (frame, ...)) -> sample count; frames are "func (file:line)"
#: ordered root -> leaf.
Samples = Dict[Tuple[str, Tuple[str, ...]], int]


def shard_dir_for(profile_path: str) -> str:
    """Directory holding the per-process profile shards."""
    return profile_path + ".shards"


def _format_frame(frame) -> str:
    code = frame.f_code
    return f"{code.co_name} ({os.path.basename(code.co_filename)}:{frame.f_lineno})"


def _extract_stack(frame) -> Tuple[str, ...]:
    stack: List[str] = []
    while frame is not None and len(stack) < _MAX_DEPTH:
        stack.append(_format_frame(frame))
        frame = frame.f_back
    stack.reverse()
    return tuple(stack)


class SamplingProfiler:
    """Timer-driven stack sampler for every thread of this process."""

    def __init__(
        self,
        interval_s: float = 0.005,
        process_label: str = "sweep",
        shard_path: Optional[str] = None,
    ):
        self._interval_s = max(interval_s, 0.001)
        self.process_label = process_label
        self._shard_path = shard_path
        self._lock = threading.Lock()
        self._samples: Samples = {}
        self._labels: Dict[int, str] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._pid = os.getpid()

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, name="obs-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
        self._thread = None

    def _sample_loop(self) -> None:
        self_tid = threading.get_ident()
        while not self._stop.wait(self._interval_s):
            frames = sys._current_frames()
            with self._lock:
                for tid, frame in frames.items():
                    if tid == self_tid:
                        continue
                    key = (self._labels.get(tid, "-"), _extract_stack(frame))
                    self._samples[key] = self._samples.get(key, 0) + 1

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def attribute(self, label: str) -> Iterator[None]:
        """Attribute this thread's samples to ``label`` for the block."""
        tid = threading.get_ident()
        with self._lock:
            previous = self._labels.get(tid)
            self._labels[tid] = label
        try:
            yield
        finally:
            with self._lock:
                if previous is None:
                    self._labels.pop(tid, None)
                else:
                    self._labels[tid] = previous

    # ------------------------------------------------------------------
    def snapshot(self) -> Samples:
        with self._lock:
            return dict(self._samples)

    def sample_count(self) -> int:
        with self._lock:
            return sum(self._samples.values())

    def flush_shard(self) -> None:
        """Rewrite this process's cumulative shard (worker processes)."""
        if self._shard_path is None:
            return
        payload = {
            "pid": os.getpid(),
            "label": self.process_label,
            "samples": [
                [label, list(stack), count]
                for (label, stack), count in sorted(self.snapshot().items())
            ],
        }
        os.makedirs(os.path.dirname(self._shard_path), exist_ok=True)
        tmp = self._shard_path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        os.replace(tmp, self._shard_path)


#: Process-wide profiler; None until configure(profile_out=...) runs.
_ACTIVE: Optional[SamplingProfiler] = None


def active_profiler() -> Optional[SamplingProfiler]:
    return _ACTIVE


def set_active_profiler(profiler: Optional[SamplingProfiler]) -> None:
    global _ACTIVE
    _ACTIVE = profiler


# ----------------------------------------------------------------------
# Shard merge and output formats
# ----------------------------------------------------------------------

def _load_shard(path: str) -> Optional[dict]:
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None  # torn shard of a killed worker: drop, don't poison
    if not isinstance(data, dict) or "samples" not in data:
        return None
    return data


def merge_profiles(
    own: Optional[SamplingProfiler], shard_dir: str
) -> List[dict]:
    """Per-process sample sets: the local profiler plus worker shards."""
    processes: List[dict] = []
    if own is not None:
        processes.append({
            "pid": os.getpid(),
            "label": own.process_label,
            "samples": [
                [label, list(stack), count]
                for (label, stack), count in sorted(own.snapshot().items())
            ],
        })
    if os.path.isdir(shard_dir):
        for entry in sorted(os.listdir(shard_dir)):
            if not entry.endswith(".json"):
                continue
            shard = _load_shard(os.path.join(shard_dir, entry))
            if shard is not None:
                processes.append(shard)
    return processes


def _speedscope_payload(processes: List[dict]) -> dict:
    frame_index: Dict[Tuple[str, str, int], int] = {}
    frames: List[dict] = []

    def intern(name: str, file: str = "", line: int = 0) -> int:
        key = (name, file, line)
        if key not in frame_index:
            frame_index[key] = len(frames)
            entry: dict = {"name": name}
            if file:
                entry["file"] = file
            if line:
                entry["line"] = line
            frames.append(entry)
        return frame_index[key]

    profiles = []
    for proc in processes:
        samples: List[List[int]] = []
        weights: List[int] = []
        for label, stack, count in proc.get("samples", []):
            indices: List[int] = []
            if label and label != "-":
                indices.append(intern(f"[cell {label}]"))
            for frame in stack:
                indices.append(intern(str(frame)))
            samples.append(indices)
            weights.append(int(count))
        total = sum(weights)
        profiles.append({
            "type": "sampled",
            "name": f"{proc.get('label', 'proc')} [{proc.get('pid', '?')}]",
            "unit": "none",
            "startValue": 0,
            "endValue": total,
            "samples": samples,
            "weights": weights,
        })
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "exporter": "repro.obs.profile",
        "shared": {"frames": frames},
        "profiles": profiles,
    }


def speedscope_payload(processes: List[dict]) -> dict:
    """Public alias: the speedscope JSON document for ``processes``."""
    return _speedscope_payload(processes)


def write_speedscope(path: str, processes: List[dict]) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(_speedscope_payload(processes), handle,
                  separators=(",", ":"))
        handle.write("\n")


def write_collapsed(path: str, processes: List[dict]) -> None:
    """Brendan-Gregg collapsed stacks: ``frame;frame;... count`` lines."""
    merged: Dict[str, int] = {}
    for proc in processes:
        for label, stack, count in proc.get("samples", []):
            parts = list(stack)
            if label and label != "-":
                parts.insert(0, f"[cell {label}]")
            key = ";".join(parts)
            merged[key] = merged.get(key, 0) + int(count)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        for key in sorted(merged):
            handle.write(f"{key} {merged[key]}\n")


def cleanup_shards(shard_dir: str) -> None:
    if not os.path.isdir(shard_dir):
        return
    for entry in os.listdir(shard_dir):
        with contextlib.suppress(OSError):
            os.remove(os.path.join(shard_dir, entry))
    with contextlib.suppress(OSError):
        os.rmdir(shard_dir)
