"""Configuration objects shared across the repro package.

Defaults follow Table 1 of the paper: an aggressive future design point at
1.0 V / 10 GHz with a 105 W peak, a power-distribution network of
R = 375 micro-ohms, L = 1.69 pH, C = 1500 nF (resonant frequency 100 MHz,
resonance band 84-119 processor cycles), a resonant current variation
threshold of 32 A and a maximum repetition tolerance of 4 half-waves.

Two concrete power supplies from the paper are provided:

* :data:`TABLE1_SUPPLY` -- the design point used in all evaluation sections.
* :data:`SECTION2_SUPPLY` -- the illustrative example of Section 2 (C = 500 nF,
  L = 5 pH, 2 V, 5 GHz, resonance band 92-108 MHz, Q about 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError

__all__ = [
    "PowerSupplyConfig",
    "ProcessorConfig",
    "TuningConfig",
    "TABLE1_SUPPLY",
    "SECTION2_SUPPLY",
    "TABLE1_PROCESSOR",
    "TABLE1_TUNING",
]


@dataclass(frozen=True)
class PowerSupplyConfig:
    """Second-order RLC model of the power-distribution network (Figure 1).

    The circuit models the power-supply impedance (``resistance_ohms``), the
    inductance of the die-to-package connections (``inductance_henries``) and
    the on-die decoupling capacitance (``capacitance_farads``).  The CPU is a
    current source; the supply-voltage source is eliminated by superposition
    (Figure 1(b)), so all simulated voltages are deviations from Vdd.
    """

    resistance_ohms: float = 375e-6
    inductance_henries: float = 1.69e-12
    capacitance_farads: float = 1500e-9
    vdd_volts: float = 1.0
    clock_hz: float = 10e9
    noise_margin_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.resistance_ohms <= 0:
            raise ConfigurationError("resistance_ohms must be positive")
        if self.inductance_henries <= 0:
            raise ConfigurationError("inductance_henries must be positive")
        if self.capacitance_farads <= 0:
            raise ConfigurationError("capacitance_farads must be positive")
        if self.vdd_volts <= 0:
            raise ConfigurationError("vdd_volts must be positive")
        if self.clock_hz <= 0:
            raise ConfigurationError("clock_hz must be positive")
        if not 0 < self.noise_margin_fraction < 1:
            raise ConfigurationError("noise_margin_fraction must be in (0, 1)")

    @property
    def noise_margin_volts(self) -> float:
        """Absolute noise margin: deviations beyond this violate (e.g. 50 mV)."""
        return self.noise_margin_fraction * self.vdd_volts

    @property
    def cycle_seconds(self) -> float:
        """Duration of one processor clock cycle."""
        return 1.0 / self.clock_hz

    def with_clock(self, clock_hz: float) -> "PowerSupplyConfig":
        """Return a copy of this configuration with a different clock rate."""
        return replace(self, clock_hz=clock_hz)

    def scaled(
        self,
        resistance_factor: float = 1.0,
        inductance_factor: float = 1.0,
        capacitance_factor: float = 1.0,
    ) -> "PowerSupplyConfig":
        """Return a technology-scaled copy (used by the scaling study).

        Technology scaling shrinks R (more current at less droop), keeps L
        roughly constant (solder-bump characteristic) and grows C (more
        devices), which lowers the resonant frequency (Section 2.1).
        """
        return replace(
            self,
            resistance_ohms=self.resistance_ohms * resistance_factor,
            inductance_henries=self.inductance_henries * inductance_factor,
            capacitance_farads=self.capacitance_farads * capacitance_factor,
        )


@dataclass(frozen=True)
class ProcessorConfig:
    """Architectural parameters of the simulated processor (Table 1)."""

    issue_width: int = 8
    fetch_width: int = 8
    commit_width: int = 8
    rob_entries: int = 128
    lsq_entries: int = 128
    int_alus: int = 8
    int_muls: int = 2
    fp_alus: int = 4
    fp_muls: int = 2
    cache_ports: int = 2
    l1_hit_cycles: int = 2
    l2_hit_cycles: int = 12
    memory_cycles: int = 80
    branch_mispredict_penalty: int = 10
    #: outstanding L1-miss capacity; a missing load stalls at issue when all
    #: miss-status holding registers are busy
    mshr_entries: int = 8
    #: frontend stall after an instruction-cache miss (an L2 hit's latency)
    icache_miss_penalty: int = 12
    max_current_amps: float = 105.0
    min_current_amps: float = 35.0

    def __post_init__(self) -> None:
        positive_fields = (
            "issue_width",
            "fetch_width",
            "commit_width",
            "rob_entries",
            "lsq_entries",
            "int_alus",
            "fp_alus",
            "cache_ports",
            "l1_hit_cycles",
            "l2_hit_cycles",
            "memory_cycles",
        )
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.int_muls < 0 or self.fp_muls < 0:
            raise ConfigurationError("functional unit counts must be non-negative")
        if self.branch_mispredict_penalty < 0:
            raise ConfigurationError("branch_mispredict_penalty must be non-negative")
        if self.mshr_entries < 1:
            raise ConfigurationError("mshr_entries must be at least 1")
        if self.icache_miss_penalty < 0:
            raise ConfigurationError("icache_miss_penalty must be non-negative")
        if not self.max_current_amps > self.min_current_amps > 0:
            raise ConfigurationError(
                "current range requires max_current_amps > min_current_amps > 0"
            )

    @property
    def medium_current_amps(self) -> float:
        """Medium current level held by phantom operations (Section 3.2)."""
        return 0.5 * (self.max_current_amps + self.min_current_amps)

    @property
    def max_current_variation_amps(self) -> float:
        """The well-defined maximum peak-to-peak chip current variation."""
        return self.max_current_amps - self.min_current_amps


@dataclass(frozen=True)
class TuningConfig:
    """Resonance-tuning parameters (Sections 2.1.3, 3.2 and 5.2).

    ``resonant_current_threshold_amps`` is the resonant current variation
    threshold M: repeated peak-to-peak variations below M never violate the
    noise margin.  ``max_repetition_tolerance`` is the number of half-wave
    repetitions above M the supply tolerates before a violation.  The
    first-level response engages at ``initial_response_threshold`` and the
    second-level response at ``max_repetition_tolerance - 1``.

    The paper's Table 1 states M = 32 A for this circuit; our own Heun-based
    square-wave calibration (:func:`repro.power.calibration.calibrate`) puts
    the same circuit's threshold at 27 A, and the default here keeps one
    sensor quantum of safety below that (26 A).  Detection must use the
    *simulator's own* threshold to uphold the no-violation guarantee:
    repeated variations between the two values really do violate in this
    supply, and a detector tuned to 32 A would sleep through them.
    """

    resonant_current_threshold_amps: float = 26.0
    max_repetition_tolerance: int = 4
    initial_response_threshold: int = 2
    initial_response_time: int = 100
    second_level_response_time: int = 35
    reduced_issue_width: int = 4
    reduced_cache_ports: int = 1
    response_delay_cycles: int = 0
    #: watchdog bound on one second-level engagement: a stuck response (a
    #: faulted sensor that never reports quiet) is force-released after this
    #: many cycles; None derives 8x the second-level response time
    second_level_watchdog_cycles: Optional[int] = None

    def __post_init__(self) -> None:
        if self.resonant_current_threshold_amps <= 0:
            raise ConfigurationError("resonant_current_threshold_amps must be positive")
        if self.max_repetition_tolerance < 2:
            raise ConfigurationError("max_repetition_tolerance must be at least 2")
        if not 1 <= self.initial_response_threshold < self.max_repetition_tolerance:
            raise ConfigurationError(
                "initial_response_threshold must lie in"
                " [1, max_repetition_tolerance)"
            )
        if self.initial_response_time <= 0 or self.second_level_response_time <= 0:
            raise ConfigurationError("response times must be positive")
        if self.reduced_issue_width <= 0 or self.reduced_cache_ports <= 0:
            raise ConfigurationError("reduced widths must be positive")
        if self.response_delay_cycles < 0:
            raise ConfigurationError("response_delay_cycles must be non-negative")
        if self.second_level_watchdog_cycles is not None:
            if self.second_level_watchdog_cycles <= self.second_level_response_time:
                raise ConfigurationError(
                    "second_level_watchdog_cycles must exceed"
                    " second_level_response_time (the watchdog must not"
                    " pre-empt a healthy response)"
                )

    @property
    def second_level_threshold(self) -> int:
        """Event count at which the second-level response engages."""
        return self.max_repetition_tolerance - 1


def _section2_resistance() -> float:
    """Back out R for the Section 2 example from its quality factor.

    The example states a 92-108 MHz resonance band around 100 MHz and a 40 %
    per-period dissipation, both consistent with Q close to 2*pi/1 (about
    6.2): dissipation per period is ``1 - exp(-pi/Q)``.
    """
    q = 2.0 * math.pi  # gives exp(-pi/Q) = exp(-0.5) ~ 0.61, i.e. ~39 % loss
    inductance = 5e-12
    capacitance = 500e-9
    return math.sqrt(inductance / capacitance) / q


TABLE1_SUPPLY = PowerSupplyConfig()
"""The evaluation design point of Table 1 (100 MHz resonance, 84-119 cycles)."""

SECTION2_SUPPLY = PowerSupplyConfig(
    resistance_ohms=_section2_resistance(),
    inductance_henries=5e-12,
    capacitance_farads=500e-9,
    vdd_volts=2.0,
    clock_hz=5e9,
)
"""The illustrative example of Section 2 (2 V, 5 GHz, band roughly 92-108 MHz)."""

TABLE1_PROCESSOR = ProcessorConfig()
"""The 8-wide out-of-order processor of Table 1."""

TABLE1_TUNING = TuningConfig()
"""Resonance-tuning parameters as set in Section 5.2."""
