"""Top-level command-line interface: ``python -m repro <command>``.

Commands:

* ``analyze``   -- resonance characteristics of a power supply;
* ``calibrate`` -- the Section 2.1.3 calibration (threshold, tolerance);
* ``classify``  -- run benchmarks on the base processor and classify them;
* ``compare``   -- run one technique against the base on chosen benchmarks;
* ``experiment``-- regenerate a paper table/figure (see repro.experiments).

All circuit parameters default to the Table 1 design point and can be
overridden with flags, so the tool doubles as a quick design-space probe.
"""

from __future__ import annotations

import argparse
import functools
from dataclasses import replace
from typing import Optional, Sequence

from repro import obs
from repro.config import PowerSupplyConfig, TABLE1_SUPPLY, TuningConfig
from repro.errors import ReproError, SweepInterrupted

__all__ = ["main", "build_parser"]


def _supply_from_args(args) -> PowerSupplyConfig:
    return replace(
        TABLE1_SUPPLY,
        resistance_ohms=args.resistance_uohm * 1e-6,
        inductance_henries=args.inductance_ph * 1e-12,
        capacitance_farads=args.capacitance_nf * 1e-9,
        clock_hz=args.clock_ghz * 1e9,
    )


def _add_supply_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--resistance-uohm", type=float, default=375.0,
                        help="supply impedance R in micro-ohms")
    parser.add_argument("--inductance-ph", type=float, default=1.69,
                        help="die-to-package inductance L in picohenries")
    parser.add_argument("--capacitance-nf", type=float, default=1500.0,
                        help="on-die decoupling capacitance C in nanofarads")
    parser.add_argument("--clock-ghz", type=float, default=10.0,
                        help="processor clock in gigahertz")


def _cmd_analyze(args) -> int:
    from repro.power.rlc import RLCAnalysis

    analysis = RLCAnalysis(_supply_from_args(args))
    if not analysis.is_underdamped:
        print("circuit is not underdamped: no resonance problem")
        return 0
    band = analysis.band
    print(f"resonant frequency : {analysis.resonant_frequency_hz / 1e6:.2f} MHz"
          f" ({analysis.resonant_period_cycles} cycles)")
    print(f"quality factor Q   : {analysis.quality_factor:.3f}")
    print(f"resonance band     : {band.low_hz / 1e6:.2f}-"
          f"{band.high_hz / 1e6:.2f} MHz"
          f" ({band.min_period_cycles}-{band.max_period_cycles} cycles)")
    print(f"damping rate       : {analysis.damping_coefficient:.3e} nepers/s")
    print(f"dissipation/period : {analysis.dissipation_per_period:.1%}")
    return 0


def _cmd_calibrate(args) -> int:
    from repro.power.calibration import calibrate

    result = calibrate(_supply_from_args(args))
    print(f"resonant current variation threshold : {result.threshold_amps:.0f} A")
    print(f"band-edge tolerable variation        : "
          f"{result.band_edge_tolerable_amps:.0f} A")
    print(f"maximum repetition tolerance         : "
          f"{result.max_repetition_tolerance} half-waves")
    print(f"second-level quiet time              : "
          f"{result.second_level_response_cycles} cycles")
    return 0


def _cmd_classify(args) -> int:
    from repro.experiments import table2

    result = table2.run(n_cycles=args.cycles, benchmarks=args.benchmarks or None)
    print(result.render())
    return 0


# Module-level controller builders: ``functools.partial`` over these
# pickles by qualified name, so CLI-built factories survive the trip to
# the parallel sweep backend's worker processes.

def _build_tuning(supply, processor, tuning):
    from repro.core.tuning import ResonanceTuningController

    return ResonanceTuningController(supply, processor, tuning)


def _build_voltage_threshold(
    supply, processor, threshold_volts, noise_volts, delay_cycles
):
    from repro.baselines.voltage_threshold import VoltageThresholdController

    return VoltageThresholdController(
        supply,
        processor,
        target_threshold_volts=threshold_volts,
        sensor_noise_pp_volts=noise_volts,
        delay_cycles=delay_cycles,
    )


def _build_damping(supply, processor, delta_amps):
    from repro.baselines.damping import PipelineDampingController

    return PipelineDampingController(supply, processor, delta_amps)


def _build_convolution(supply, processor, estimate_gain):
    from repro.baselines.convolution import ConvolutionController

    return ConvolutionController(supply, processor, estimate_gain=estimate_gain)


def _technique_factory(args):
    name = args.technique
    if name == "tuning":
        return functools.partial(
            _build_tuning,
            tuning=TuningConfig(initial_response_time=args.response_time),
        )
    if name == "voltage-threshold":
        return functools.partial(
            _build_voltage_threshold,
            threshold_volts=args.threshold_mv * 1e-3,
            noise_volts=args.noise_mv * 1e-3,
            delay_cycles=args.delay,
        )
    if name == "damping":
        return functools.partial(_build_damping, delta_amps=args.delta_amps)
    if name == "convolution":
        return functools.partial(
            _build_convolution, estimate_gain=args.estimate_gain
        )
    raise ReproError(f"unknown technique {name}")  # pragma: no cover


def _cmd_compare(args) -> int:
    from repro.sim.runner import (
        BenchmarkRunner,
        ResilienceConfig,
        SweepConfig,
    )

    factory = _technique_factory(args)
    benchmarks = args.benchmarks or ["swim", "parser", "fma3d"]
    with BenchmarkRunner(SweepConfig(n_cycles=args.cycles)) as runner:
        summary = runner.sweep(
            factory,
            benchmarks=benchmarks,
            resilience=ResilienceConfig(
                workers=args.workers,
                checkpoint_path=args.checkpoint,
                backend=args.backend,
                # Override-only: absent flags keep the config defaults.
                **{
                    field: value
                    for field, value in (
                        ("lease_timeout_s", args.lease_timeout_s),
                        ("quarantine_failures", args.quarantine_failures),
                        ("connect_deadline_s", args.connect_deadline_s),
                        ("dist_transport", args.dist_transport),
                        ("trace_store_path", args.trace_store),
                    )
                    if value is not None
                },
                replay=not args.no_replay,
            ),
        )
    print(f"{'benchmark':10s} {'base viol':>10s} {'tech viol':>10s}"
          f" {'slowdown':>9s} {'E*D':>7s}")
    for metrics in summary.per_benchmark:
        print(f"{metrics.benchmark:10s} {metrics.base_violation_fraction:10.2e}"
              f" {metrics.violation_fraction:10.2e}"
              f" {metrics.slowdown:9.3f} {metrics.energy_delay:7.3f}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve import AdmissionPolicy, ServeConfig, SweepService

    config = ServeConfig(
        data_dir=args.data_dir,
        host=args.host,
        port=args.port,
        max_running=args.max_running,
        admission=AdmissionPolicy(
            max_queued=args.max_queued,
            tenant_max_active=args.tenant_max_active,
            tenant_max_cells=args.tenant_max_cells,
            retry_after_base_s=args.retry_after_s,
        ),
        request_timeout_s=args.request_timeout_s,
        drain_deadline_s=args.drain_deadline_s,
        ready_file=args.ready_file,
    )
    service = SweepService(config)
    return asyncio.run(service.run())


def _cmd_obs_report(args) -> int:
    from repro.obs import report as obs_report

    argv = ["--trace", args.trace, "--out", args.out, "--top", str(args.top)]
    if args.metrics:
        argv += ["--metrics", args.metrics]
    if args.profile:
        argv += ["--profile", args.profile]
    return obs_report.main(argv)


def _cmd_experiment(args) -> int:
    from repro.experiments.registry import resilience_from_args, run_experiment

    result = run_experiment(
        args.name, quick=args.quick, resilience=resilience_from_args(args)
    )
    print(result.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Resonance tuning for inductive noise (ISCA 2004 repro)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser("analyze", help="resonance characteristics")
    _add_supply_flags(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    calibrate = commands.add_parser("calibrate", help="Section 2.1.3 calibration")
    _add_supply_flags(calibrate)
    calibrate.set_defaults(func=_cmd_calibrate)

    classify = commands.add_parser("classify", help="Table 2 classification")
    classify.add_argument("benchmarks", nargs="*", help="subset (default all)")
    classify.add_argument("--cycles", type=int, default=60_000)
    classify.set_defaults(func=_cmd_classify)

    compare = commands.add_parser("compare", help="technique vs base processor")
    compare.add_argument(
        "technique",
        choices=["tuning", "voltage-threshold", "damping", "convolution"],
    )
    compare.add_argument("benchmarks", nargs="*", help="subset (default demo trio)")
    compare.add_argument("--cycles", type=int, default=40_000)
    compare.add_argument("--response-time", type=int, default=100,
                         help="tuning: initial response time")
    compare.add_argument("--threshold-mv", type=float, default=30.0,
                         help="voltage-threshold: target threshold (mV)")
    compare.add_argument("--noise-mv", type=float, default=0.0,
                         help="voltage-threshold: sensor noise p-p (mV)")
    compare.add_argument("--delay", type=int, default=0,
                         help="voltage-threshold: sensor delay (cycles)")
    compare.add_argument("--delta-amps", type=float, default=13.0,
                         help="damping: allowed window variation (A)")
    compare.add_argument("--estimate-gain", type=float, default=1.0,
                         help="convolution: systematic estimate gain")
    compare.add_argument("--workers", type=int, default=1,
                         help="worker processes for the comparison sweep")
    compare.add_argument("--backend",
                         choices=["auto", "sequential", "pool", "dist"],
                         default="auto",
                         help="sweep backend (dist leases cells to worker"
                              " subprocesses over a socket)")
    compare.add_argument("--lease-timeout-s", type=float, default=None,
                         metavar="S",
                         help="dist: requeue a cell whose lease has not been"
                              " renewed for S seconds (default 60)")
    compare.add_argument("--quarantine-failures", type=int, default=None,
                         metavar="N",
                         help="dist: stop leasing to a worker after N"
                              " attributed failures (default 3)")
    compare.add_argument("--connect-deadline-s", type=float, default=None,
                         metavar="S",
                         help="dist: fall back to a local backend if no"
                              " worker connects within S seconds (default 10)")
    compare.add_argument("--dist-transport", choices=["unix", "tcp"],
                         default=None,
                         help="dist: scheduler/worker socket transport"
                              " (default unix)")
    compare.add_argument("--checkpoint", metavar="PATH", default=None,
                         help="JSON checkpoint updated after every completed"
                              " cell (also written as PATH.summary.json)")
    compare.add_argument("--trace-store", metavar="PATH", default=None,
                         help="content-addressed trace record/replay store:"
                              " base cells record their current trace once"
                              " and replay it bit-exactly afterwards")
    compare.add_argument("--no-replay", action="store_true",
                         help="disable trace record/replay even when a"
                              " store path is configured")
    obs.add_observability_flags(compare)
    compare.set_defaults(func=_cmd_compare)

    serve = commands.add_parser(
        "serve",
        help="run the sweep-as-a-service HTTP API (see docs/operations.md)",
    )
    serve.add_argument("--data-dir", metavar="PATH", required=True,
                       help="durable job store root (job records under"
                            " jobs/, sweep checkpoints under work/)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="listen address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8537,
                       help="listen port; 0 binds an ephemeral port"
                            " (pair with --ready-file to discover it)")
    serve.add_argument("--max-running", type=int, default=2,
                       help="jobs executing concurrently; the rest queue")
    serve.add_argument("--max-queued", type=int, default=16,
                       help="queued-job bound; beyond it submissions are"
                            " shed with 429 + Retry-After")
    serve.add_argument("--tenant-max-active", type=int, default=4,
                       help="queued+running jobs one tenant may hold")
    serve.add_argument("--tenant-max-cells", type=int, default=512,
                       help="cells across one tenant's queued+running jobs")
    serve.add_argument("--retry-after-s", type=float, default=1.0,
                       help="base of the deterministic Retry-After hint")
    serve.add_argument("--request-timeout-s", type=float, default=5.0,
                       help="per-request head/body read deadline"
                            " (slow-loris guard; 408 past it)")
    serve.add_argument("--drain-deadline-s", type=float, default=30.0,
                       help="SIGTERM drain: seconds to wait for running"
                            " sweeps to checkpoint before exiting 75")
    serve.add_argument("--ready-file", metavar="PATH", default=None,
                       help="write {host, port, pid, url} JSON once the"
                            " listener is bound")
    obs.add_observability_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    obs_cmd = commands.add_parser(
        "obs", help="observability tooling (see docs/observability.md)"
    )
    obs_commands = obs_cmd.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_commands.add_parser(
        "report",
        help="render a self-contained HTML ops report from trace/metrics/"
             "profile artifacts",
    )
    obs_report.add_argument("--trace", required=True, metavar="PATH",
                            help="merged Chrome trace JSON (--trace-out)")
    obs_report.add_argument("--metrics", metavar="PATH", default=None,
                            help="metrics JSON (--metrics-out)")
    obs_report.add_argument("--profile", metavar="PATH", default=None,
                            help="speedscope profile JSON (--profile-out)")
    obs_report.add_argument("--out", metavar="PATH", default="obs_report.html",
                            help="output HTML path (default obs_report.html)")
    obs_report.add_argument("--top", type=int, default=10,
                            help="rows in the slowest-cell/stack tables")
    obs_report.set_defaults(func=_cmd_obs_report)

    experiment = commands.add_parser("experiment", help="regenerate a paper artifact")
    experiment.add_argument("name", help="e.g. table3, figure5")
    experiment.add_argument("--quick", action="store_true")
    from repro.experiments.registry import add_resilience_flags

    add_resilience_flags(experiment)
    obs.add_observability_flags(experiment)
    experiment.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    observing = obs.configure_from_args(args)
    logger = obs.get_logger("cli")
    try:
        return args.func(args)
    except SweepInterrupted as stop:
        # Graceful drain: completed cells are checkpointed; exit
        # EX_TEMPFAIL so callers know a --resume finishes the run.
        logger.warning("interrupted: %s", stop)
        return stop.exit_code
    except KeyboardInterrupt:
        # Ctrl-C outside a sweep (inside one, the drain turns it into
        # SweepInterrupted above): exit 128+SIGINT like a killed shell
        # command instead of spilling a traceback.
        logger.warning("interrupted by user")
        return 130
    finally:
        if observing:
            for path in obs.finalize(
                metadata={"command": getattr(args, "command", None)}
            ):
                logger.info("observability artifact written: %s", path)
