"""The cycle loop: processor -> power supply -> noise controller.

Each cycle the controller's directives (computed from everything observed
up to the previous cycle) steer the processor; the processor's current
drives the power supply; the resulting current and voltage are fed back to
the controller.  This ordering gives every technique an inherent one-cycle
sensing loop, on top of which techniques model their own sensor and
actuation delays.
"""

from __future__ import annotations

import contextlib
from typing import List, Optional, Sequence, Union

from repro.core import kernel as core_kernel
from repro.core.controller import NoiseController, NullController
from repro.errors import SimulationError
from repro.obs import context as obs_context
from repro.obs import metrics
from repro.obs import trace as obs_trace
from repro.power.supply import PowerSupply
from repro.sim.metrics import SimulationResult
from repro.uarch.processor import Processor

__all__ = ["Simulation", "run_batch"]


class Simulation:
    """Wires one processor, one power supply and one controller together."""

    def __init__(
        self,
        processor: Processor,
        supply: PowerSupply,
        controller: Optional[NoiseController] = None,
        record: bool = False,
        benchmark: str = "workload",
        warmup_cycles: int = 0,
    ):
        if warmup_cycles < 0:
            raise SimulationError("warmup_cycles must be non-negative")
        self.processor = processor
        self.supply = supply
        self.controller = controller or NullController()
        self.record = record
        self.benchmark = benchmark
        self.warmup_cycles = warmup_cycles
        self.currents: Optional[list] = [] if record else None
        self.voltages: Optional[list] = [] if record else None
        #: Optional repro.trace.TraceCapture recording the *full*
        #: (warmup + measured) current trace for the record/replay store.
        #: Unlike ``record``, which keeps measured cycles for diagnostics,
        #: a capture must cover warmup too -- replay re-rings the supply
        #: through it.  The sweep runner attaches one on a store miss.
        self.capture = None
        self._ran = False

    def run(self, n_cycles: int) -> SimulationResult:
        """Run ``n_cycles`` (after any warmup) and return the result record.

        Warmup cycles execute normally -- the controller runs, the supply
        rings -- but are excluded from every reported statistic, mirroring
        the paper's fast-forward past initialization (its violations are
        measured in steady state, not during the power-on ramp).
        """
        if n_cycles <= 0:
            raise SimulationError("n_cycles must be positive")
        if self._ran:
            raise SimulationError("a Simulation object runs exactly once")
        self._ran = True

        # Let the power model convert amps to joules.
        self.processor.power.attach_supply(
            self.supply.config.vdd_volts, self.supply.config.cycle_seconds
        )

        with contextlib.ExitStack() as stack:
            self._enter_run_span(stack, n_cycles)
            if self.kernel_eligible():
                stage = self._kernel_collect(n_cycles)
                snapshot = self._kernel_advance_supply(stage)
            else:
                snapshot = self._scalar_cycle_loop(n_cycles)

        return self._assemble_result(snapshot, n_cycles)

    def _enter_run_span(self, stack: contextlib.ExitStack, n_cycles: int) -> None:
        tracer = obs_trace.active_tracer()
        if tracer is not None:
            # The kernel span chains off the enclosing cell span's context
            # (when one is current) so a job's trace links down to the
            # simulation itself.
            parent_ctx = obs_context.current_context()
            ctx = None
            if parent_ctx is not None:
                ctx = parent_ctx.child(
                    f"run|{self.benchmark}|{self.controller.name}|{n_cycles}"
                )
            stack.enter_context(tracer.span(
                f"run {self.benchmark}",
                cat=obs_trace.CAT_SIM,
                args={
                    "benchmark": self.benchmark,
                    "technique": self.controller.name,
                    "n_cycles": n_cycles,
                    "warmup_cycles": self.warmup_cycles,
                },
                ctx=ctx,
            ))

    # ------------------------------------------------------------------
    # Scalar cycle loop (reference semantics; always available via
    # REPRO_KERNEL=0 and for every feedback controller)
    # ------------------------------------------------------------------
    def _scalar_cycle_loop(self, n_cycles: int) -> dict:
        processor = self.processor
        supply = self.supply
        controller = self.controller
        record = self.record
        capture = self.capture
        stage_capture = None if capture is None else capture.currents.append
        snapshot = self._snapshot()
        for cycle in range(self.warmup_cycles + n_cycles):
            if cycle == self.warmup_cycles:
                # Steady state starts here: warmup transients must
                # neither pin first_violation_cycle nor merge a
                # boundary-spanning violation into a warmup-started
                # event.
                reset_tracking = getattr(
                    supply, "reset_violation_tracking", None
                )
                if reset_tracking is not None:
                    reset_tracking()
                snapshot = self._snapshot()
            directives = controller.directives(cycle)
            stats = processor.step(directives)
            if stage_capture is not None:
                stage_capture(stats.current_amps)
            voltage = supply.step(stats.current_amps)
            controller.observe(cycle, stats.current_amps, voltage, stats)
            if record and cycle >= self.warmup_cycles:
                self.currents.append(stats.current_amps)
                self.voltages.append(voltage)
        return snapshot

    # ------------------------------------------------------------------
    # Kernel fast path (repro.core.kernel): run the processor trace
    # first, then advance the supply in bulk -- bit-identical to the
    # scalar loop for feedback-free controllers.
    # ------------------------------------------------------------------
    def kernel_eligible(self) -> bool:
        """Can this run take the vectorized kernel fast path?

        Requires the kernel to be enabled (``REPRO_KERNEL``), a
        controller that declares :attr:`NoiseController.feedback_free`,
        and a plain :class:`PowerSupply` (subclasses may override
        ``step`` and must get the scalar loop).
        """
        return (
            core_kernel.kernel_enabled()
            and getattr(self.controller, "feedback_free", False)
            and type(self.supply) is PowerSupply
        )

    def _kernel_collect(self, n_cycles: int):
        """Stage 1: run the processor trace and capture the currents.

        The processor is still stepped cycle by cycle (its pipeline is
        inherently serial), but the supply and controller are out of the
        loop entirely.  Returns the staged currents, the per-cycle stats
        (only when the controller wants ``observe`` calls) and the
        warmup-boundary snapshot with its supply fields still pending.
        """
        controller = self.controller
        warmup = self.warmup_cycles
        directives_of = controller.directives
        step = self.processor.step
        currents: list = []
        stage_current = currents.append
        # NullController.observe is a stateless no-op; skipping it (and
        # the per-cycle stats retention) is free.
        stats_log = None if type(controller) is NullController else []
        snapshot = self._snapshot()
        for cycle in range(warmup + n_cycles):
            if cycle == warmup:
                snapshot = self._snapshot()
            stats = step(directives_of(cycle))
            stage_current(stats.current_amps)
            if stats_log is not None:
                stats_log.append(stats)
        if self.capture is not None:
            self.capture.currents.extend(currents)
        return currents, stats_log, snapshot

    def _kernel_advance_supply(self, stage) -> dict:
        """Stage 2: bulk supply advance, split at the warmup boundary.

        Exactly mirrors the scalar loop: the warmup prefix rings the
        supply, the violation tracking resets at the boundary, the
        boundary snapshot picks up the supply counters as of that reset,
        and only then does the measured region run.
        """
        currents, _, _ = stage
        warm_volts = core_kernel.run_supply(
            self.supply, currents[:self.warmup_cycles]
        )
        snapshot = self._kernel_boundary(stage)
        measured_volts = core_kernel.run_supply(
            self.supply, currents[self.warmup_cycles:]
        )
        self._kernel_deliver(stage, warm_volts, measured_volts)
        return snapshot

    def _kernel_boundary(self, stage) -> dict:
        """Warmup-boundary bookkeeping once the warmup prefix has run."""
        _, _, snapshot = stage
        supply = self.supply
        supply.reset_violation_tracking()
        snapshot["violation_cycles"] = supply.violation_cycles
        snapshot["violation_events"] = supply.violation_events
        return snapshot

    def _kernel_deliver(self, stage, warm_volts, measured_volts) -> None:
        """Late ``observe`` delivery and trace recording for a kernel run."""
        currents, stats_log, _ = stage
        warmup = self.warmup_cycles
        if stats_log is not None:
            observe = self.controller.observe
            voltages = warm_volts.tolist() + measured_volts.tolist()
            for cycle, (amps, stats) in enumerate(zip(currents, stats_log)):
                observe(cycle, amps, voltages[cycle], stats)
        if self.record:
            self.currents.extend(currents[warmup:])
            self.voltages.extend(measured_volts.tolist())

    def _assemble_result(self, snapshot: dict, n_cycles: int) -> SimulationResult:
        end = self._snapshot()
        if self.capture is not None:
            # Replayability proof: the captured trace must re-derive this
            # run's energy ledger bit-for-bit (see TraceCapture.finish).
            # A failed proof leaves the capture incomplete -- it is simply
            # never persisted; the run's own result is untouched.
            config = self.supply.config
            self.capture.finish(
                snapshot, end, config.vdd_volts, config.cycle_seconds
            )
        # The technique's own hardware energy (Section 4.1 charges tuning's
        # detection hardware this way) counts against it.
        overhead = self.controller.overhead_energy_joules(n_cycles)
        result = SimulationResult(
            benchmark=self.benchmark,
            technique=self.controller.name,
            cycles=n_cycles,
            instructions=end["instructions"] - snapshot["instructions"],
            energy_joules=end["energy"] - snapshot["energy"] + overhead,
            phantom_energy_joules=end["phantom"] - snapshot["phantom"],
            violation_cycles=end["violation_cycles"] - snapshot["violation_cycles"],
            violation_events=end["violation_events"] - snapshot["violation_events"],
            first_level_cycles=end["first_level"] - snapshot["first_level"],
            second_level_cycles=end["second_level"] - snapshot["second_level"],
            currents=self.currents,
            voltages=self.voltages,
        )
        registry = metrics.active_registry()
        if registry is not None:
            self._harvest_metrics(registry, result)
        return result

    def _harvest_metrics(self, registry, result) -> None:
        """Fold this run's counters into the active metrics registry.

        Called once per run (never per cycle): everything here is read
        from counters the simulation, detector and supply already keep,
        so enabling metrics does not perturb the hot loop.
        """
        labels = {"technique": result.technique}
        registry.counter(
            "sim_runs_total", help="completed simulation runs"
        ).inc(labels=labels)
        registry.counter(
            "sim_cycles_total", help="measured (post-warmup) cycles simulated"
        ).inc(result.cycles)
        registry.counter(
            "sim_instructions_total", help="instructions committed"
        ).inc(result.instructions)
        registry.counter(
            "sim_violation_cycles_total",
            help="cycles beyond the noise margin",
        ).inc(result.violation_cycles)
        registry.counter(
            "sim_violation_events_total",
            help="distinct noise-margin violation events",
        ).inc(result.violation_events)
        registry.counter(
            "sim_first_level_cycles_total",
            help="cycles under the first-level (gentle) response",
        ).inc(result.first_level_cycles)
        registry.counter(
            "sim_second_level_cycles_total",
            help="cycles under the second-level (stall) response",
        ).inc(result.second_level_cycles)
        detector = getattr(self.controller, "detector", None)
        if detector is not None:
            events = registry.counter(
                "sim_resonant_events_total",
                help="resonant events detected, by transition polarity",
            )
            for polarity, count in detector.events_by_polarity.items():
                events.inc(count, labels={"polarity": polarity.name.lower()})
            registry.counter(
                "sim_detector_comparisons_total",
                help="quarter-period adder comparisons performed",
            ).inc(detector.comparisons)
        for attribute, name, help_text in (
            ("first_level_engagements", "sim_first_level_engagements_total",
             "first-level response activations"),
            ("second_level_engagements", "sim_second_level_engagements_total",
             "second-level response activations"),
            ("watchdog_releases", "sim_watchdog_releases_total",
             "second-level holds force-released by the watchdog"),
        ):
            value = getattr(self.controller, attribute, None)
            if value is not None:
                registry.counter(name, help=help_text).inc(value)

    def _snapshot(self) -> dict:
        fractions = self.controller.response_cycle_fractions
        return {
            "instructions": self.processor.committed_instructions,
            "energy": self.processor.total_energy_joules,
            "phantom": self.processor.phantom_energy_joules,
            "violation_cycles": self.supply.violation_cycles,
            "violation_events": self.supply.violation_events,
            "first_level": fractions.get("first_level_cycles", 0),
            "second_level": fractions.get("second_level_cycles", 0),
        }


# ----------------------------------------------------------------------
# Batched sweep entry point (ROADMAP item 1c): several independent
# simulations advanced with their supply lanes batched through
# repro.core.kernel.run_supply_batch.
# ----------------------------------------------------------------------
def run_batch(
    simulations: Sequence[Simulation],
    n_cycles: int,
    guard=None,
    should_stop=None,
) -> List[Union[SimulationResult, BaseException, None]]:
    """Run several simulations, batching the supply advance across lanes.

    Every result is bit-identical to what ``simulations[i].run(n_cycles)``
    would have produced: the per-lane processor traces still run
    serially (the pipeline is inherently sequential), but the Heun
    supply recurrences of all lanes advance together through NumPy
    elementwise ops, which are IEEE-identical per lane to the scalar
    recurrence.

    Per-lane outcomes, index-aligned with ``simulations``:

    * a :class:`SimulationResult` on success;
    * the raised exception if that lane failed (the other lanes keep
      going) -- the same exception ``run`` would have raised;
    * ``None`` if ``should_stop`` interrupted the batch before the lane
      started (such simulations remain fresh and runnable).

    ``guard`` optionally wraps each lane's trace-collection stage (the
    dominant cost) -- the sweep runner passes its per-cell timeout
    enforcement here.  Lanes whose controller closes a feedback loop (or
    with the kernel disabled) fall back to their own ``run``.
    """
    outcomes: List[Union[SimulationResult, BaseException, None]]
    outcomes = [None] * len(simulations)
    staged = []  # (lane, sim, stage)
    for lane, sim in enumerate(simulations):
        if should_stop is not None and should_stop():
            break
        try:
            if n_cycles <= 0:
                raise SimulationError("n_cycles must be positive")
            if sim._ran:
                raise SimulationError("a Simulation object runs exactly once")
            if not sim.kernel_eligible():
                outcomes[lane] = sim.run(n_cycles)
                continue
            sim._ran = True
            sim.processor.power.attach_supply(
                sim.supply.config.vdd_volts, sim.supply.config.cycle_seconds
            )
            with contextlib.ExitStack() as stack:
                sim._enter_run_span(stack, n_cycles)
                if guard is None:
                    stage = sim._kernel_collect(n_cycles)
                else:
                    stage = guard(lambda s=sim: s._kernel_collect(n_cycles))
            staged.append((lane, sim, stage))
        except Exception as exc:
            outcomes[lane] = exc

    # Lanes must share a trace length to stack; group by warmup split.
    by_warmup: dict = {}
    for item in staged:
        by_warmup.setdefault(item[1].warmup_cycles, []).append(item)

    for warmup, group in sorted(by_warmup.items()):
        warm_volts = core_kernel.run_supply_batch(
            [sim.supply for _, sim, _ in group],
            [stage[0][:warmup] for _, _, stage in group],
        )
        survivors = []
        for (lane, sim, stage), warm in zip(group, warm_volts):
            if isinstance(warm, BaseException):
                outcomes[lane] = warm
                continue
            snapshot = sim._kernel_boundary(stage)
            survivors.append((lane, sim, stage, warm, snapshot))
        measured_volts = core_kernel.run_supply_batch(
            [sim.supply for _, sim, _, _, _ in survivors],
            [stage[0][warmup:] for _, _, stage, _, _ in survivors],
        )
        for (lane, sim, stage, warm, snapshot), measured in zip(
            survivors, measured_volts
        ):
            if isinstance(measured, BaseException):
                outcomes[lane] = measured
                continue
            try:
                sim._kernel_deliver(stage, warm, measured)
                outcomes[lane] = sim._assemble_result(snapshot, n_cycles)
            except Exception as exc:  # pragma: no cover - defensive
                outcomes[lane] = exc
    return outcomes
