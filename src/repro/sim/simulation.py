"""The cycle loop: processor -> power supply -> noise controller.

Each cycle the controller's directives (computed from everything observed
up to the previous cycle) steer the processor; the processor's current
drives the power supply; the resulting current and voltage are fed back to
the controller.  This ordering gives every technique an inherent one-cycle
sensing loop, on top of which techniques model their own sensor and
actuation delays.
"""

from __future__ import annotations

import contextlib
from typing import Optional

from repro.core.controller import NoiseController, NullController
from repro.errors import SimulationError
from repro.obs import metrics
from repro.obs import trace as obs_trace
from repro.power.supply import PowerSupply
from repro.sim.metrics import SimulationResult
from repro.uarch.processor import Processor

__all__ = ["Simulation"]


class Simulation:
    """Wires one processor, one power supply and one controller together."""

    def __init__(
        self,
        processor: Processor,
        supply: PowerSupply,
        controller: Optional[NoiseController] = None,
        record: bool = False,
        benchmark: str = "workload",
        warmup_cycles: int = 0,
    ):
        if warmup_cycles < 0:
            raise SimulationError("warmup_cycles must be non-negative")
        self.processor = processor
        self.supply = supply
        self.controller = controller or NullController()
        self.record = record
        self.benchmark = benchmark
        self.warmup_cycles = warmup_cycles
        self.currents: Optional[list] = [] if record else None
        self.voltages: Optional[list] = [] if record else None
        self._ran = False

    def run(self, n_cycles: int) -> SimulationResult:
        """Run ``n_cycles`` (after any warmup) and return the result record.

        Warmup cycles execute normally -- the controller runs, the supply
        rings -- but are excluded from every reported statistic, mirroring
        the paper's fast-forward past initialization (its violations are
        measured in steady state, not during the power-on ramp).
        """
        if n_cycles <= 0:
            raise SimulationError("n_cycles must be positive")
        if self._ran:
            raise SimulationError("a Simulation object runs exactly once")
        self._ran = True

        processor = self.processor
        supply = self.supply
        controller = self.controller
        record = self.record
        # Let the power model convert amps to joules.
        processor.power.attach_supply(
            supply.config.vdd_volts, supply.config.cycle_seconds
        )

        tracer = obs_trace.active_tracer()
        with contextlib.ExitStack() as stack:
            if tracer is not None:
                stack.enter_context(tracer.span(
                    f"run {self.benchmark}",
                    cat=obs_trace.CAT_SIM,
                    args={
                        "benchmark": self.benchmark,
                        "technique": controller.name,
                        "n_cycles": n_cycles,
                        "warmup_cycles": self.warmup_cycles,
                    },
                ))
            snapshot = self._snapshot()
            for cycle in range(self.warmup_cycles + n_cycles):
                if cycle == self.warmup_cycles:
                    # Steady state starts here: warmup transients must
                    # neither pin first_violation_cycle nor merge a
                    # boundary-spanning violation into a warmup-started
                    # event.
                    reset_tracking = getattr(
                        supply, "reset_violation_tracking", None
                    )
                    if reset_tracking is not None:
                        reset_tracking()
                    snapshot = self._snapshot()
                directives = controller.directives(cycle)
                stats = processor.step(directives)
                voltage = supply.step(stats.current_amps)
                controller.observe(cycle, stats.current_amps, voltage, stats)
                if record and cycle >= self.warmup_cycles:
                    self.currents.append(stats.current_amps)
                    self.voltages.append(voltage)

        end = self._snapshot()
        # The technique's own hardware energy (Section 4.1 charges tuning's
        # detection hardware this way) counts against it.
        overhead = controller.overhead_energy_joules(n_cycles)
        result = SimulationResult(
            benchmark=self.benchmark,
            technique=controller.name,
            cycles=n_cycles,
            instructions=end["instructions"] - snapshot["instructions"],
            energy_joules=end["energy"] - snapshot["energy"] + overhead,
            phantom_energy_joules=end["phantom"] - snapshot["phantom"],
            violation_cycles=end["violation_cycles"] - snapshot["violation_cycles"],
            violation_events=end["violation_events"] - snapshot["violation_events"],
            first_level_cycles=end["first_level"] - snapshot["first_level"],
            second_level_cycles=end["second_level"] - snapshot["second_level"],
            currents=self.currents,
            voltages=self.voltages,
        )
        registry = metrics.active_registry()
        if registry is not None:
            self._harvest_metrics(registry, result)
        return result

    def _harvest_metrics(self, registry, result) -> None:
        """Fold this run's counters into the active metrics registry.

        Called once per run (never per cycle): everything here is read
        from counters the simulation, detector and supply already keep,
        so enabling metrics does not perturb the hot loop.
        """
        labels = {"technique": result.technique}
        registry.counter(
            "sim_runs_total", help="completed simulation runs"
        ).inc(labels=labels)
        registry.counter(
            "sim_cycles_total", help="measured (post-warmup) cycles simulated"
        ).inc(result.cycles)
        registry.counter(
            "sim_instructions_total", help="instructions committed"
        ).inc(result.instructions)
        registry.counter(
            "sim_violation_cycles_total",
            help="cycles beyond the noise margin",
        ).inc(result.violation_cycles)
        registry.counter(
            "sim_violation_events_total",
            help="distinct noise-margin violation events",
        ).inc(result.violation_events)
        registry.counter(
            "sim_first_level_cycles_total",
            help="cycles under the first-level (gentle) response",
        ).inc(result.first_level_cycles)
        registry.counter(
            "sim_second_level_cycles_total",
            help="cycles under the second-level (stall) response",
        ).inc(result.second_level_cycles)
        detector = getattr(self.controller, "detector", None)
        if detector is not None:
            events = registry.counter(
                "sim_resonant_events_total",
                help="resonant events detected, by transition polarity",
            )
            for polarity, count in detector.events_by_polarity.items():
                events.inc(count, labels={"polarity": polarity.name.lower()})
            registry.counter(
                "sim_detector_comparisons_total",
                help="quarter-period adder comparisons performed",
            ).inc(detector.comparisons)
        for attribute, name, help_text in (
            ("first_level_engagements", "sim_first_level_engagements_total",
             "first-level response activations"),
            ("second_level_engagements", "sim_second_level_engagements_total",
             "second-level response activations"),
            ("watchdog_releases", "sim_watchdog_releases_total",
             "second-level holds force-released by the watchdog"),
        ):
            value = getattr(self.controller, attribute, None)
            if value is not None:
                registry.counter(name, help=help_text).inc(value)

    def _snapshot(self) -> dict:
        fractions = self.controller.response_cycle_fractions
        return {
            "instructions": self.processor.committed_instructions,
            "energy": self.processor.total_energy_joules,
            "phantom": self.processor.phantom_energy_joules,
            "violation_cycles": self.supply.violation_cycles,
            "violation_events": self.supply.violation_events,
            "first_level": fractions.get("first_level_cycles", 0),
            "second_level": fractions.get("second_level_cycles", 0),
        }
