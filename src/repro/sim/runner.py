"""Batch running: benchmark x technique sweeps with Table 3/4/5 aggregation.

A *controller factory* is any callable ``(supply_config, processor_config)
-> NoiseController``; the runner builds a fresh processor and supply per
run (so runs are independent and deterministic), executes the base
configuration once per benchmark, and reports each technique's metrics
relative to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import (
    PowerSupplyConfig,
    ProcessorConfig,
    TABLE1_PROCESSOR,
    TABLE1_SUPPLY,
)
from repro.core.controller import NoiseController, NullController
from repro.power.supply import PowerSupply
from repro.sim.metrics import RelativeMetrics, SimulationResult
from repro.sim.simulation import Simulation
from repro.uarch.processor import Processor
from repro.uarch.workloads import SPEC2K

__all__ = [
    "SweepConfig",
    "TechniqueSummary",
    "SeedStatistics",
    "BenchmarkRunner",
    "summarize",
]

ControllerFactory = Callable[[PowerSupplyConfig, ProcessorConfig], NoiseController]


@dataclass(frozen=True)
class SweepConfig:
    """How long and on what hardware to run each benchmark."""

    n_cycles: int = 60_000
    warmup_cycles: int = 2_000
    supply: PowerSupplyConfig = TABLE1_SUPPLY
    processor: ProcessorConfig = TABLE1_PROCESSOR
    trace_instructions: Optional[int] = None

    def instructions(self) -> int:
        if self.trace_instructions is not None:
            return self.trace_instructions
        # Enough instructions that no workload wraps more than a few times.
        return max(50_000, int((self.n_cycles + self.warmup_cycles) * 4.5))


@dataclass(frozen=True)
class SeedStatistics:
    """Mean / spread of one technique on one benchmark across trace seeds.

    Seeds regenerate the synthetic trace from the same statistical profile,
    so the spread measures sensitivity to the particular random instruction
    stream rather than to the workload's character.
    """

    benchmark: str
    technique: str
    n_seeds: int
    mean_slowdown: float
    std_slowdown: float
    mean_energy_delay: float
    std_energy_delay: float
    max_violation_fraction: float
    runs: Tuple[RelativeMetrics, ...]


@dataclass(frozen=True)
class TechniqueSummary:
    """Aggregate of one technique over many benchmarks (a table row)."""

    technique: str
    avg_slowdown: float
    worst_slowdown: float
    worst_benchmark: str
    apps_over_15_percent: int
    avg_energy_delay: float
    avg_first_level_fraction: float
    avg_second_level_fraction: float
    total_violation_cycles: int
    per_benchmark: Tuple[RelativeMetrics, ...]


class BenchmarkRunner:
    """Runs benchmarks against controller factories, caching base runs."""

    def __init__(self, config: Optional[SweepConfig] = None):
        self.config = config or SweepConfig()
        self._base_cache: Dict[tuple, SimulationResult] = {}

    def _build_simulation(
        self,
        benchmark: str,
        controller: NoiseController,
        record: bool = False,
        seed: Optional[int] = None,
    ) -> Simulation:
        config = self.config
        processor = Processor.from_profile(
            SPEC2K[benchmark],
            n_instructions=config.instructions(),
            config=config.processor,
            supply_config=config.supply,
            seed=seed,
        )
        supply = PowerSupply(
            config.supply, initial_current=config.processor.min_current_amps
        )
        return Simulation(
            processor,
            supply,
            controller,
            record=record,
            benchmark=benchmark,
            warmup_cycles=config.warmup_cycles,
        )

    def run_base(
        self, benchmark: str, seed: Optional[int] = None
    ) -> SimulationResult:
        """Run (or fetch the cached) uncontrolled base configuration."""
        key = (benchmark, seed)
        if key not in self._base_cache:
            simulation = self._build_simulation(
                benchmark, NullController(), seed=seed
            )
            self._base_cache[key] = simulation.run(self.config.n_cycles)
        return self._base_cache[key]

    def run_technique(
        self,
        benchmark: str,
        factory: ControllerFactory,
        seed: Optional[int] = None,
    ) -> SimulationResult:
        controller = factory(self.config.supply, self.config.processor)
        simulation = self._build_simulation(benchmark, controller, seed=seed)
        return simulation.run(self.config.n_cycles)

    def compare(
        self,
        benchmark: str,
        factory: ControllerFactory,
        seed: Optional[int] = None,
    ) -> RelativeMetrics:
        base = self.run_base(benchmark, seed=seed)
        result = self.run_technique(benchmark, factory, seed=seed)
        return result.relative_to(base)

    def compare_seeds(
        self,
        benchmark: str,
        factory: ControllerFactory,
        n_seeds: int = 3,
    ) -> SeedStatistics:
        """Repeat the comparison over ``n_seeds`` regenerated traces."""
        if n_seeds < 1:
            raise ValueError("n_seeds must be at least 1")
        profile_seed = SPEC2K[benchmark].seed
        seeds: List[Optional[int]] = [None]
        seeds += [profile_seed + 1000 * k for k in range(1, n_seeds)]
        runs = tuple(
            self.compare(benchmark, factory, seed=seed) for seed in seeds
        )
        slowdowns = [run.slowdown for run in runs]
        energy_delays = [run.energy_delay for run in runs]

        def mean(values):
            return sum(values) / len(values)

        def std(values):
            centre = mean(values)
            return (sum((v - centre) ** 2 for v in values) / len(values)) ** 0.5

        return SeedStatistics(
            benchmark=benchmark,
            technique=runs[0].technique,
            n_seeds=n_seeds,
            mean_slowdown=mean(slowdowns),
            std_slowdown=std(slowdowns),
            mean_energy_delay=mean(energy_delays),
            std_energy_delay=std(energy_delays),
            max_violation_fraction=max(run.violation_fraction for run in runs),
            runs=runs,
        )

    def sweep(
        self,
        factory: ControllerFactory,
        benchmarks: Optional[Sequence[str]] = None,
        progress: Optional[Callable[[str, RelativeMetrics], None]] = None,
    ) -> TechniqueSummary:
        """Run one technique over a benchmark list and aggregate."""
        names = list(benchmarks) if benchmarks is not None else sorted(SPEC2K)
        rows: List[RelativeMetrics] = []
        violation_cycles = 0
        for name in names:
            metrics = self.compare(name, factory)
            rows.append(metrics)
            violation_cycles += round(
                metrics.violation_fraction * self.config.n_cycles
            )
            if progress is not None:
                progress(name, metrics)
        return summarize(rows, violation_cycles)


def summarize(
    rows: Iterable[RelativeMetrics], total_violation_cycles: int = 0
) -> TechniqueSummary:
    """Aggregate per-benchmark relative metrics into a table row."""
    rows = tuple(rows)
    if not rows:
        raise ValueError("summarize needs at least one row")
    worst = max(rows, key=lambda row: row.slowdown)
    return TechniqueSummary(
        technique=rows[0].technique,
        avg_slowdown=sum(row.slowdown for row in rows) / len(rows),
        worst_slowdown=worst.slowdown,
        worst_benchmark=worst.benchmark,
        apps_over_15_percent=sum(1 for row in rows if row.slowdown > 1.15),
        avg_energy_delay=sum(row.energy_delay for row in rows) / len(rows),
        avg_first_level_fraction=(
            sum(row.first_level_fraction for row in rows) / len(rows)
        ),
        avg_second_level_fraction=(
            sum(row.second_level_fraction for row in rows) / len(rows)
        ),
        total_violation_cycles=total_violation_cycles,
        per_benchmark=rows,
    )
